#![deny(missing_docs)]
//! # rtr-topk — online approximate top-K processing for RoundTripRank
//!
//! Implements **2SBound** (paper Sect. V): branch-and-bound neighborhood
//! expansion with the paper's two original ingredients,
//!
//! 1. **bounds decomposition** (Sect. V-A2) — RoundTripRank bounds derived
//!    from separate F-Rank and T-Rank neighborhoods:
//!    `r̬ = f̬·ť`, `r̂ = f̂·t̂` per seen node (Eq. 15), and the unseen bound
//!    `r̂(q) = max{f̂(q)t̂(q), max_{v∈Sf\S} f̂(q,v)t̂(q), max_{v∈St\S} f̂(q)t̂(q,v)}`
//!    (Eq. 16);
//! 2. a **two-stage bounds-updating framework** (Sect. V-A3) — Stage I
//!    expands a neighborhood and initializes bounds from per-node state
//!    (BCA residuals for F, border nodes for T); Stage II iteratively
//!    refines all bounds over the neighborhood to convergence using the
//!    monotone recurrences of Eq. 17–18.
//!
//! The top-K stopping conditions with slack ε (Eq. 13–14) give an
//! ε-approximate ranking: no node whose score exceeds the K-th by ≥ ε is
//! missed, and no two nodes whose scores differ by ≥ ε are swapped.
//!
//! The efficiency study's baseline schemes (Fig. 11a) are provided by
//! [`schemes`]: `Naive` (exact iteration), `G+S`, `Gupta` and `Sarkar`
//! (ablations replacing one or both stages with the prior state of the art).
//!
//! ```
//! use rtr_graph::toy::fig2_toy;
//! use rtr_core::prelude::*;
//! use rtr_topk::prelude::*;
//!
//! let (g, ids) = fig2_toy();
//! let config = TopKConfig { k: 3, epsilon: 0.0, ..TopKConfig::default() };
//! let result = TwoSBound::new(RankParams::default(), config)
//!     .run(&g, ids.t1)
//!     .unwrap();
//! // Exact top-1 is the query itself (self-proximity), as in the paper's toy.
//! assert_eq!(result.ranking[0], ids.t1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod active_set;
pub mod bounds;
pub mod config;
pub mod fbound;
pub mod plus;
pub mod schemes;
pub mod tbound;
pub mod two_sbound;
pub mod workspace;

pub use active_set::ActiveSetStats;
pub use config::{TopKCacheKey, TopKConfig};
pub use plus::TwoSBoundPlus;
pub use schemes::{NaiveTopK, Scheme};
pub use two_sbound::{TopKResult, TwoSBound};
pub use workspace::{FWorkspace, TWorkspace, TopKWorkspace};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::active_set::ActiveSetStats;
    pub use crate::config::{TopKCacheKey, TopKConfig};
    pub use crate::plus::TwoSBoundPlus;
    pub use crate::schemes::{NaiveTopK, Scheme};
    pub use crate::two_sbound::{TopKResult, TwoSBound};
    pub use crate::workspace::{FWorkspace, TWorkspace, TopKWorkspace};
}
