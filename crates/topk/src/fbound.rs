//! F-Rank realization of the two-stage bounds-updating framework
//! (paper Sect. V-A3, "Realization of F-Rank").
//!
//! Stage I rides on BCA: the f-neighborhood is
//! `S_f = {v : ρ(q,v) > 0}`; one expansion processes up to `m` nodes chosen
//! by benefit `µ(q,v)/|Out(v)|`, after which bounds are initialized from the
//! current BCA state via Prop. 4:
//!
//! ```text
//! f̂(q)     = α/(2-α)·max_u µ(q,u) + (1-α)/(2-α)·Σ_u µ(q,u)    (Eq. 19)
//! f̌⁰(q,v) = ρ(q,v)                                              (Eq. 20)
//! f̂⁰(q,v) = ρ(q,v) + f̂(q)                                      (Eq. 21)
//! ```
//!
//! Stage II sweeps the refinement recurrences (Eq. 17–18) over `S_f`,
//! gathering over **in**-neighbors, until the bounds stop moving.
//!
//! The *Gupta* variant (efficiency baseline, Fig. 11a) replaces Prop. 4 with
//! the weaker first-arrival bound `f̂(q) = Σ_u µ(q,u)` and skips Stage II.

use crate::bounds::Bounds;
use crate::workspace::FWorkspace;
use rtr_core::bca::Bca;
use rtr_core::{CoreError, RankParams};
use rtr_graph::{AdjacencyAccess, AdjacencyError, NodeId, SparseMap};

/// Which Stage-I/II realization the f-neighborhood uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FBoundMode {
    /// The paper's full realization: Prop. 4 bound + Stage II refinement.
    TwoStage,
    /// Gupta et al. \[16\] baseline: first-arrival bound, no Stage II.
    Gupta,
}

/// The f-neighborhood with its bounds.
///
/// Per-query state lives in an [`FWorkspace`]; [`FNeighborhood::new`]
/// allocates a fresh one, [`FNeighborhood::with_workspace`] reuses a
/// worker's buffers.
///
/// The graph is not captured: expansion and refinement take the
/// [`AdjacencyAccess`] they run against, so the same neighborhood drives
/// the in-memory graph and the distributed active graph alike.
pub struct FNeighborhood {
    q: NodeId,
    alpha: f64,
    mode: FBoundMode,
    bca: Bca,
    bounds: SparseMap<Bounds>,
    order: Vec<u32>,
    unseen_upper: f64,
}

impl FNeighborhood {
    /// Initialize for query `q` (empty neighborhood, one unit of residual
    /// at the query, unseen bound from the initial residual state).
    pub fn new<A: AdjacencyAccess>(
        a: &A,
        q: NodeId,
        params: &RankParams,
        mode: FBoundMode,
    ) -> Result<Self, CoreError> {
        Self::with_workspace(a, q, params, mode, FWorkspace::default())
    }

    /// Initialize like [`FNeighborhood::new`] but reusing `ws`'s buffers
    /// (cleared in O(previous query's touched entries)). Recover the
    /// workspace with [`FNeighborhood::into_workspace`]. Touches no
    /// adjacency — a paged source fetches nothing until the first
    /// expansion.
    pub fn with_workspace<A: AdjacencyAccess>(
        a: &A,
        q: NodeId,
        params: &RankParams,
        mode: FBoundMode,
        ws: FWorkspace,
    ) -> Result<Self, CoreError> {
        let FWorkspace {
            bca: bca_ws,
            mut bounds,
            mut order,
        } = ws;
        let bca = Bca::with_workspace(a, q, params, bca_ws)?;
        bounds.ensure_capacity(a.node_count());
        bounds.clear();
        order.clear();
        let mut nb = FNeighborhood {
            q,
            alpha: params.alpha,
            mode,
            bca,
            bounds,
            order,
            unseen_upper: 1.0,
        };
        nb.unseen_upper = nb.fresh_unseen_upper();
        Ok(nb)
    }

    /// Dissolve into the workspace so its buffers serve the next query.
    pub fn into_workspace(self) -> FWorkspace {
        FWorkspace {
            bca: self.bca.into_workspace(),
            bounds: self.bounds,
            order: self.order,
        }
    }

    fn fresh_unseen_upper(&self) -> f64 {
        match self.mode {
            FBoundMode::TwoStage => self.bca.unseen_upper_bound(),
            FBoundMode::Gupta => self.bca.gupta_upper_bound(),
        }
    }

    /// Stage I: expand by up to `m` nodes and (re)initialize bounds.
    /// Returns the number of nodes processed.
    pub fn expand<A: AdjacencyAccess>(
        &mut self,
        a: &mut A,
        m: usize,
    ) -> Result<usize, AdjacencyError> {
        let picked = self.bca.process_batch_count(a, m)?;
        self.unseen_upper = self.fresh_unseen_upper();
        // (Re)initialize: ρ is a valid lower bound, ρ + f̂(q) an upper bound.
        // Previous expansions' refined bounds are kept when tighter
        // (monotone tightening only).
        let unseen = self.unseen_upper;
        let bounds = &mut self.bounds;
        for (v, rho) in self.bca.seen() {
            let entry = bounds.get_or_insert(v.0, Bounds::unseen(1.0));
            entry.tighten_lower(rho);
            entry.tighten_upper(rho + unseen);
        }
        Ok(picked)
    }

    /// Stage II: iteratively refine all seen bounds over `S_f` using the
    /// in-neighbor recurrence, until convergence (no-op in Gupta mode).
    /// Returns the number of sweeps performed. Touches only members'
    /// adjacency, which [`FNeighborhood::expand`] already made resident.
    pub fn refine<A: AdjacencyAccess>(
        &mut self,
        a: &A,
        tolerance: f64,
        max_sweeps: usize,
    ) -> usize {
        if self.mode == FBoundMode::Gupta {
            return 0;
        }
        self.order.clear();
        self.order.extend(self.bounds.keys());
        self.order.sort_unstable(); // deterministic Gauss-Seidel sweep order
        for sweep in 1..=max_sweeps {
            let mut max_change = 0.0f64;
            for i in 0..self.order.len() {
                let vid = self.order[i];
                let v = NodeId(vid);
                let indicator = if v == self.q { self.alpha } else { 0.0 };
                let mut lo_acc = 0.0;
                let mut hi_acc = 0.0;
                for (src, prob) in a.in_edges(v) {
                    match self.bounds.get(src.0) {
                        Some(b) => {
                            lo_acc += prob * b.lower;
                            hi_acc += prob * b.upper;
                        }
                        None => {
                            // Unseen neighbor: lower 0, upper = unseen bound.
                            hi_acc += prob * self.unseen_upper;
                        }
                    }
                }
                let cand_lo = indicator + (1.0 - self.alpha) * lo_acc;
                let cand_hi = indicator + (1.0 - self.alpha) * hi_acc;
                let b = self.bounds.get_mut(vid).expect("member");
                max_change = max_change.max(b.tighten_lower(cand_lo));
                max_change = max_change.max(b.tighten_upper(cand_hi));
            }
            if max_change < tolerance {
                return sweep;
            }
        }
        max_sweeps
    }

    /// The current unseen upper bound `f̂(q)`.
    pub fn unseen_upper(&self) -> f64 {
        self.unseen_upper
    }

    /// Bounds of a seen node, if seen.
    pub fn bounds(&self, v: NodeId) -> Option<Bounds> {
        self.bounds.get(v.0)
    }

    /// Effective bounds of *any* node (unseen ⇒ `[0, f̂(q)]`).
    pub fn effective_bounds(&self, v: NodeId) -> Bounds {
        self.bounds(v)
            .unwrap_or_else(|| Bounds::unseen(self.unseen_upper))
    }

    /// Whether `v` is in `S_f`.
    pub fn contains(&self, v: NodeId) -> bool {
        self.bounds.contains(v.0)
    }

    /// Iterate over seen nodes and their bounds.
    pub fn seen(&self) -> impl Iterator<Item = (NodeId, Bounds)> + '_ {
        self.bounds.iter().map(|(v, b)| (NodeId(v), b))
    }

    /// `|S_f|`.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether the neighborhood is still empty.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Remaining BCA residual (0 ⇒ bounds can no longer improve via Stage I).
    pub fn residual(&self) -> f64 {
        self.bca.total_residual()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::prelude::*;
    use rtr_graph::toy::fig2_toy;
    use rtr_graph::Graph;

    fn exact_frank(g: &Graph, q: NodeId) -> ScoreVec {
        FRank::new(RankParams::default())
            .compute(g, &Query::single(q))
            .unwrap()
    }

    #[test]
    fn bounds_always_sandwich_exact() {
        let (g, ids) = fig2_toy();
        let exact = exact_frank(&g, ids.t1);
        let mut nb =
            FNeighborhood::new(&g, ids.t1, &RankParams::default(), FBoundMode::TwoStage).unwrap();
        for round in 0..12 {
            nb.expand(&mut &g, 3).unwrap();
            nb.refine(&g, 1e-12, 50);
            for v in g.nodes() {
                let b = nb.effective_bounds(v);
                assert!(
                    b.contains(exact.score(v), 1e-9),
                    "round {round}, {v:?}: exact {} outside [{}, {}]",
                    exact.score(v),
                    b.lower,
                    b.upper
                );
            }
        }
    }

    #[test]
    fn refinement_tightens_bounds() {
        let (g, ids) = fig2_toy();
        let mut nb =
            FNeighborhood::new(&g, ids.t1, &RankParams::default(), FBoundMode::TwoStage).unwrap();
        nb.expand(&mut &g, 4).unwrap();
        let before: f64 = nb.seen().map(|(_, b)| b.width()).sum();
        nb.refine(&g, 1e-12, 50);
        let after: f64 = nb.seen().map(|(_, b)| b.width()).sum();
        assert!(after <= before + 1e-12, "refinement widened bounds");
    }

    #[test]
    fn two_stage_tighter_than_gupta() {
        let (g, ids) = fig2_toy();
        let p = RankParams::default();
        let mut ours = FNeighborhood::new(&g, ids.t1, &p, FBoundMode::TwoStage).unwrap();
        let mut gupta = FNeighborhood::new(&g, ids.t1, &p, FBoundMode::Gupta).unwrap();
        for _ in 0..5 {
            ours.expand(&mut &g, 3).unwrap();
            ours.refine(&g, 1e-12, 50);
            gupta.expand(&mut &g, 3).unwrap();
            gupta.refine(&g, 1e-12, 50);
        }
        assert!(
            ours.unseen_upper() < gupta.unseen_upper(),
            "Prop.4 {} not tighter than Gupta {}",
            ours.unseen_upper(),
            gupta.unseen_upper()
        );
        // Same seen set (same BCA schedule), tighter average width.
        let ours_width: f64 = ours.seen().map(|(_, b)| b.width()).sum();
        let gupta_width: f64 = gupta.seen().map(|(_, b)| b.width()).sum();
        assert!(ours_width < gupta_width);
    }

    #[test]
    fn gupta_bounds_still_valid() {
        let (g, ids) = fig2_toy();
        let exact = exact_frank(&g, ids.t1);
        let mut nb =
            FNeighborhood::new(&g, ids.t1, &RankParams::default(), FBoundMode::Gupta).unwrap();
        for _ in 0..10 {
            nb.expand(&mut &g, 3).unwrap();
            for v in g.nodes() {
                let b = nb.effective_bounds(v);
                assert!(b.contains(exact.score(v), 1e-9));
            }
        }
    }

    #[test]
    fn unseen_upper_shrinks_with_expansion() {
        let (g, ids) = fig2_toy();
        let mut nb =
            FNeighborhood::new(&g, ids.t1, &RankParams::default(), FBoundMode::TwoStage).unwrap();
        let mut prev = nb.unseen_upper();
        for _ in 0..8 {
            nb.expand(&mut &g, 5).unwrap();
            let cur = nb.unseen_upper();
            assert!(cur <= prev + 1e-12);
            prev = cur;
        }
        assert!(prev < 0.1, "unseen bound should collapse, got {prev}");
    }

    #[test]
    fn bounds_converge_to_exact() {
        let (g, ids) = fig2_toy();
        let exact = exact_frank(&g, ids.t1);
        let mut nb =
            FNeighborhood::new(&g, ids.t1, &RankParams::default(), FBoundMode::TwoStage).unwrap();
        for _ in 0..60 {
            nb.expand(&mut &g, 10).unwrap();
            nb.refine(&g, 1e-14, 100);
            if nb.residual() < 1e-10 {
                break;
            }
        }
        for v in g.nodes() {
            let b = nb.effective_bounds(v);
            assert!(
                b.width() < 1e-6,
                "{v:?} width {} too wide after convergence",
                b.width()
            );
            assert!(b.contains(exact.score(v), 1e-6));
        }
    }

    #[test]
    fn first_expansion_brings_query() {
        let (g, ids) = fig2_toy();
        let mut nb =
            FNeighborhood::new(&g, ids.t1, &RankParams::default(), FBoundMode::TwoStage).unwrap();
        assert!(nb.is_empty());
        nb.expand(&mut &g, 100).unwrap();
        assert_eq!(nb.len(), 1);
        assert!(nb.contains(ids.t1));
    }
}
