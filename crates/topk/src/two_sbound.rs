//! The 2SBound algorithm (paper Algorithm 1).
//!
//! ```text
//! S ← ∅
//! repeat
//!     Stage I:  expand S and initialize bounds Δ
//!     Stage II: iteratively refine Δ over S
//!     TK ← current top-K by lower bounds
//! until TK satisfies the top-K conditions (Eq. 13–14)
//! ```
//!
//! The r-neighborhood is `S = S_f ∩ S_t` (bounds decomposition, Sect. V-A2):
//! nodes must be seen by *both* neighborhoods before their RoundTripRank can
//! be bounded away from the unseen mass.

use crate::active_set::ActiveSetStats;
use crate::bounds::Bounds;
use crate::config::TopKConfig;
use crate::fbound::FNeighborhood;
use crate::schemes::Scheme;
use crate::tbound::TNeighborhood;
use crate::workspace::TopKWorkspace;
use rtr_core::{CoreError, RankParams};
use rtr_graph::{AdjacencyAccess, AdjacencyError, Graph, NodeId};

/// Tolerance used to break *exact* score ties once bounds have converged:
/// the paper's strict inequalities (Eq. 13–14) can never separate two nodes
/// with identical RoundTripRank, so we accept candidates whose bounds agree
/// to within this hair.
const TIE_EPS: f64 = 1e-12;

/// Result of a top-K run.
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// The (approximate) top-K nodes, best first.
    pub ranking: Vec<NodeId>,
    /// `[lower, upper]` RoundTripRank bounds aligned with `ranking`.
    pub bounds: Vec<(f64, f64)>,
    /// Expansion rounds performed.
    pub expansions: usize,
    /// `true` if the top-K conditions were met (vs. hitting the expansion
    /// cap and returning the best effort).
    pub converged: bool,
    /// Active-set statistics at termination (paper Fig. 12).
    pub active: ActiveSetStats,
}

/// Two-Stage Bounding top-K processor.
#[derive(Clone, Copy, Debug)]
pub struct TwoSBound {
    params: RankParams,
    config: TopKConfig,
    scheme: Scheme,
}

impl TwoSBound {
    /// The paper's full scheme (Prop. 4 bound + two-stage refinement on both
    /// neighborhoods).
    pub fn new(params: RankParams, config: TopKConfig) -> Self {
        TwoSBound {
            params,
            config,
            scheme: Scheme::TwoSBound,
        }
    }

    /// A weakened scheme for the efficiency ablations of Fig. 11a.
    pub fn with_scheme(params: RankParams, config: TopKConfig, scheme: Scheme) -> Self {
        TwoSBound {
            params,
            config,
            scheme,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TopKConfig {
        &self.config
    }

    /// Run the top-K search for query node `q`, allocating fresh per-query
    /// state. Serving paths use [`TwoSBound::run_with`] instead.
    pub fn run(&self, g: &Graph, q: NodeId) -> Result<TopKResult, CoreError> {
        self.run_with(g, q, &mut TopKWorkspace::default())
    }

    /// Run the top-K search for query node `q` reusing `ws`'s buffers.
    ///
    /// Results are bit-identical to [`TwoSBound::run`] (the determinism
    /// suite in `tests/` enforces this); the difference is purely that the
    /// sparse maps, sweep orders, and selection scratch survive between
    /// queries, so a long-lived worker allocates nothing on the hot path.
    pub fn run_with(
        &self,
        g: &Graph,
        q: NodeId,
        ws: &mut TopKWorkspace,
    ) -> Result<TopKResult, CoreError> {
        let mut a = g;
        self.run_on(&mut a, q, ws)
    }

    /// Run the top-K search over any [`AdjacencyAccess`] source.
    ///
    /// This is the *one* implementation of Algorithm 1: [`TwoSBound::run`] /
    /// [`TwoSBound::run_with`] call it with the in-memory graph, the
    /// distributed executor calls it with a paged active graph, and the two
    /// produce bit-identical results because they are the same code path.
    /// A mid-run adjacency failure (e.g. a dead graph processor) restores
    /// `ws`'s buffers before returning the error, so the worker survives.
    pub fn run_on<A: AdjacencyAccess>(
        &self,
        a: &mut A,
        q: NodeId,
        ws: &mut TopKWorkspace,
    ) -> Result<TopKResult, CoreError> {
        let cfg = &self.config;
        // Validate before borrowing any workspace buffer: a rejected query
        // (bad α, out-of-range node) must not cost the worker its buffers.
        self.params.validate()?;
        if q.index() >= a.node_count() {
            return Err(CoreError::NodeOutOfRange {
                node: q,
                node_count: a.node_count(),
            });
        }
        let f_ws = std::mem::take(&mut ws.f);
        let mut f =
            FNeighborhood::with_workspace(&*a, q, &self.params, self.scheme.f_mode(), f_ws)?;
        let t_ws = std::mem::take(&mut ws.t);
        let mut t =
            match TNeighborhood::with_workspace(&*a, q, &self.params, self.scheme.t_mode(), t_ws) {
                Ok(t) => t,
                Err(e) => {
                    ws.f = f.into_workspace();
                    return Err(e);
                }
            };
        let k = cfg.k.min(a.node_count());
        if k == 0 {
            // K = 0 (or an empty graph) has a trivial answer; the stopping
            // conditions below index members[k-1] and must not see it.
            ws.f = f.into_workspace();
            ws.t = t.into_workspace();
            return Ok(TopKResult {
                ranking: Vec::new(),
                bounds: Vec::new(),
                expansions: 0,
                converged: true,
                active: ActiveSetStats::default(),
            });
        }
        // Stage II only needs bounds tight relative to the slack: refining
        // far past ε wastes sweeps without changing the stopping decision.
        let refine_tol = cfg.refine_tolerance.max(cfg.epsilon * 1e-2);
        let result = self.search(a, &mut f, &mut t, ws, k, refine_tol);
        ws.f = f.into_workspace();
        ws.t = t.into_workspace();
        result.map_err(CoreError::from)
    }

    /// The expansion / refinement / stopping loop of Algorithm 1, factored
    /// out so [`TwoSBound::run_on`] has a single workspace-restore point
    /// covering both the success and the error path.
    fn search<A: AdjacencyAccess>(
        &self,
        a: &mut A,
        f: &mut FNeighborhood,
        t: &mut TNeighborhood,
        ws: &mut TopKWorkspace,
        k: usize,
        refine_tol: f64,
    ) -> Result<TopKResult, AdjacencyError> {
        let cfg = &self.config;
        let members = &mut ws.members;
        let mut expansions = 0usize;
        loop {
            expansions += 1;
            // Two-stage bounds updating (Stage I + Stage II), per neighborhood.
            f.expand(&mut *a, cfg.m_f)?;
            f.refine(&*a, refine_tol, cfg.refine_max_sweeps);
            t.expand(&mut *a, cfg.m_t)?;
            t.refine(&*a, refine_tol, cfg.refine_max_sweeps);

            // r-neighborhood S = S_f ∩ S_t with product bounds (Eq. 15).
            members.clear();
            members.extend(
                f.seen()
                    .filter_map(|(v, fb)| t.bounds(v).map(|tb| (v, fb.product(&tb)))),
            );
            members.sort_by(|a, b| {
                b.1.lower
                    .partial_cmp(&a.1.lower)
                    .expect("NaN bound")
                    .then(a.0.cmp(&b.0))
            });

            // Unseen upper bound (Eq. 16).
            let r_unseen = self.unseen_upper(f, t);

            let done =
                members.len() >= k && Self::conditions_hold(members, k, cfg.epsilon, r_unseen);
            // Bounds can no longer improve once the residual is exhausted
            // and the border has emptied; return whatever we have.
            let exhausted = f.residual() < 1e-15 && t.unseen_upper() == 0.0;
            if done || exhausted || expansions >= cfg.max_expansions {
                let active = ActiveSetStats::measure_in_access(
                    &mut ws.active,
                    &*a,
                    f.seen().map(|(v, _)| v),
                    t.seen().map(|(v, _)| v),
                );
                members.truncate(k);
                return Ok(TopKResult {
                    ranking: members.iter().map(|&(v, _)| v).collect(),
                    bounds: members.iter().map(|&(_, b)| (b.lower, b.upper)).collect(),
                    expansions,
                    converged: done,
                    active,
                });
            }
        }
    }

    /// Eq. 16: `r̂(q) = max{f̂(q)·t̂(q), max_{v∈Sf\S} f̂(q,v)·t̂(q),
    /// max_{v∈St\S} f̂(q)·t̂(q,v)}`.
    fn unseen_upper(&self, f: &FNeighborhood, t: &TNeighborhood) -> f64 {
        let f_unseen = f.unseen_upper();
        let t_unseen = t.unseen_upper();
        let mut r_unseen = f_unseen * t_unseen;
        for (v, fb) in f.seen() {
            if !t.contains(v) {
                r_unseen = r_unseen.max(fb.upper * t_unseen);
            }
        }
        for (v, tb) in t.seen() {
            if !f.contains(v) {
                r_unseen = r_unseen.max(f_unseen * tb.upper);
            }
        }
        r_unseen
    }

    /// The top-K conditions (Eq. 13–14) with slack ε.
    fn conditions_hold(
        members: &[(NodeId, Bounds)],
        k: usize,
        epsilon: f64,
        r_unseen: f64,
    ) -> bool {
        // Eq. 13: the K-th lower bound beats every other upper bound.
        let mut max_other_upper = r_unseen;
        for &(_, b) in &members[k..] {
            max_other_upper = max_other_upper.max(b.upper);
        }
        if members[k - 1].1.lower <= max_other_upper - epsilon - TIE_EPS {
            return false;
        }
        // Eq. 14: consecutive order within the top K is certain.
        for i in 0..k - 1 {
            if members[i].1.lower <= members[i + 1].1.upper - epsilon - TIE_EPS {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::prelude::*;
    use rtr_graph::toy::fig2_toy;

    fn exact_rtr(g: &Graph, q: NodeId) -> ScoreVec {
        RoundTripRank::new(RankParams::default())
            .compute(g, &Query::single(q))
            .unwrap()
    }

    #[test]
    fn exact_topk_at_zero_slack() {
        let (g, ids) = fig2_toy();
        let exact = exact_rtr(&g, ids.t1);
        let cfg = TopKConfig {
            k: 4,
            epsilon: 0.0,
            ..TopKConfig::toy()
        };
        let result = TwoSBound::new(RankParams::default(), cfg)
            .run(&g, ids.t1)
            .unwrap();
        assert!(result.converged, "should meet top-K conditions");
        let expected = exact.top_k(4);
        // Scores, not identities, must match (exact ties are interchangeable).
        for (got, want) in result.ranking.iter().zip(&expected) {
            assert!(
                (exact.score(*got) - exact.score(*want)).abs() < 1e-9,
                "rank mismatch: got {got:?} ({}) want {want:?} ({})",
                exact.score(*got),
                exact.score(*want)
            );
        }
    }

    #[test]
    fn bounds_contain_exact_scores() {
        let (g, ids) = fig2_toy();
        let exact = exact_rtr(&g, ids.t1);
        let result = TwoSBound::new(RankParams::default(), TopKConfig::toy())
            .run(&g, ids.t1)
            .unwrap();
        for (v, &(lo, hi)) in result.ranking.iter().zip(&result.bounds) {
            let score = exact.score(*v);
            assert!(
                score >= lo - 1e-9 && score <= hi + 1e-9,
                "{v:?}: {score} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn query_node_ranks_first() {
        let (g, ids) = fig2_toy();
        let result = TwoSBound::new(RankParams::default(), TopKConfig::toy())
            .run(&g, ids.t1)
            .unwrap();
        assert_eq!(result.ranking[0], ids.t1);
    }

    #[test]
    fn larger_slack_terminates_no_later() {
        let (g, ids) = fig2_toy();
        let tight = TwoSBound::new(
            RankParams::default(),
            TopKConfig {
                epsilon: 0.0,
                ..TopKConfig::toy()
            },
        )
        .run(&g, ids.t1)
        .unwrap();
        let loose = TwoSBound::new(
            RankParams::default(),
            TopKConfig {
                epsilon: 0.05,
                ..TopKConfig::toy()
            },
        )
        .run(&g, ids.t1)
        .unwrap();
        assert!(loose.expansions <= tight.expansions);
    }

    #[test]
    fn epsilon_guarantee_holds() {
        // ε-approximation: no returned node's score may fall more than ε
        // below any excluded node's score.
        let (g, ids) = fig2_toy();
        let exact = exact_rtr(&g, ids.t1);
        let eps = 0.02;
        let cfg = TopKConfig {
            k: 4,
            epsilon: eps,
            ..TopKConfig::toy()
        };
        let result = TwoSBound::new(RankParams::default(), cfg)
            .run(&g, ids.t1)
            .unwrap();
        let kth_score = exact.score(*result.ranking.last().unwrap());
        for v in g.nodes() {
            if !result.ranking.contains(&v) {
                assert!(
                    exact.score(v) <= kth_score + eps + 1e-9,
                    "{v:?} ({}) exceeds K-th ({kth_score}) by more than ε",
                    exact.score(v)
                );
            }
        }
    }

    #[test]
    fn k_larger_than_graph_returns_everything_seen() {
        let (g, ids) = fig2_toy();
        let cfg = TopKConfig {
            k: 100,
            epsilon: 0.0,
            ..TopKConfig::toy()
        };
        let result = TwoSBound::new(RankParams::default(), cfg)
            .run(&g, ids.t1)
            .unwrap();
        assert!(result.ranking.len() <= g.node_count());
        assert!(!result.ranking.is_empty());
    }

    #[test]
    fn active_set_reported() {
        let (g, ids) = fig2_toy();
        let result = TwoSBound::new(RankParams::default(), TopKConfig::toy())
            .run(&g, ids.t1)
            .unwrap();
        assert!(result.active.active_nodes > 0);
        assert!(result.active.bytes > 0);
        assert!(result.active.f_nodes > 0);
        assert!(result.active.t_nodes > 0);
    }

    #[test]
    fn all_schemes_agree_on_topk_scores() {
        let (g, ids) = fig2_toy();
        let exact = exact_rtr(&g, ids.t1);
        let expected: Vec<f64> = exact.top_k(3).iter().map(|&v| exact.score(v)).collect();
        for scheme in [
            Scheme::TwoSBound,
            Scheme::GPlusS,
            Scheme::Gupta,
            Scheme::Sarkar,
        ] {
            let cfg = TopKConfig {
                k: 3,
                epsilon: 0.0,
                ..TopKConfig::toy()
            };
            let result = TwoSBound::with_scheme(RankParams::default(), cfg, scheme)
                .run(&g, ids.t1)
                .unwrap();
            let got: Vec<f64> = result.ranking.iter().map(|&v| exact.score(v)).collect();
            for (a, b) in got.iter().zip(&expected) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{scheme:?}: scores {got:?} != {expected:?}"
                );
            }
        }
    }

    #[test]
    fn self_loop_graph_stays_sound() {
        // Regression: Prop. 4's unseen bound assumes a returning walk takes
        // ≥ 2 steps; a heavy self-loop violates that and once produced
        // bounds that excluded the exact score. The BCA now falls back to
        // the first-arrival bound on self-loop graphs.
        let mut b = rtr_graph::GraphBuilder::new();
        let ty = b.register_type("n");
        let nodes: Vec<_> = (0..9).map(|_| b.add_node(ty)).collect();
        for i in 0..9 {
            b.add_edge(nodes[i], nodes[(i + 1) % 9], 1.0);
        }
        b.add_edge(nodes[1], nodes[1], 5.0); // heavy self-loop
        let g = b.build();
        assert!(g.has_self_loops());
        let exact = exact_rtr(&g, nodes[0]);
        let cfg = TopKConfig {
            k: 5,
            epsilon: 0.0,
            m_f: 8,
            m_t: 3,
            max_expansions: 20_000,
            ..TopKConfig::default()
        };
        let result = TwoSBound::new(RankParams::default(), cfg)
            .run(&g, nodes[0])
            .unwrap();
        for (v, &(lo, hi)) in result.ranking.iter().zip(&result.bounds) {
            let s = exact.score(*v);
            assert!(
                s >= lo - 1e-9 && s <= hi + 1e-9,
                "{v:?}: {s} outside [{lo}, {hi}]"
            );
        }
        let want = exact.top_k(result.ranking.len());
        for (got, want) in result.ranking.iter().zip(&want) {
            assert!((exact.score(*got) - exact.score(*want)).abs() < 1e-9);
        }
    }

    #[test]
    fn weaker_schemes_need_at_least_as_many_expansions() {
        let (g, ids) = fig2_toy();
        let cfg = TopKConfig {
            k: 3,
            epsilon: 0.0,
            ..TopKConfig::toy()
        };
        let full = TwoSBound::with_scheme(RankParams::default(), cfg, Scheme::TwoSBound)
            .run(&g, ids.t1)
            .unwrap();
        let gs = TwoSBound::with_scheme(RankParams::default(), cfg, Scheme::GPlusS)
            .run(&g, ids.t1)
            .unwrap();
        assert!(
            full.expansions <= gs.expansions,
            "2SBound {} > G+S {}",
            full.expansions,
            gs.expansions
        );
    }
}
