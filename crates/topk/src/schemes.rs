//! The computational schemes compared in the efficiency study (Fig. 11a).
//!
//! * **Naive** — the exact iterative method (paper Eq. 5 + 8), multiple full
//!   passes over the graph per query; no ε.
//! * **G+S** — Gupta et al.'s bounds for F-Rank + Sarkar et al.'s method for
//!   T-Rank ("their respective state-of-the-art algorithms").
//! * **Gupta** — G+S but with the paper's two-stage framework for T-Rank.
//! * **Sarkar** — G+S but with the paper's two-stage framework for F-Rank.
//! * **2SBound** — the paper's full scheme on both neighborhoods.

use crate::active_set::ActiveSetStats;
use crate::fbound::FBoundMode;
use crate::tbound::TBoundMode;
use crate::two_sbound::TopKResult;
use rtr_core::prelude::*;
use rtr_graph::{Graph, NodeId};

/// Which bound realizations a run uses (the Fig. 11a ablation grid).
///
/// `Hash` so the scheme can participate directly in result-cache keys:
/// different schemes may return different (still ε-valid) rankings, so
/// cached results must never be shared across schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Full 2SBound: Prop. 4 + Stage II for F, border + Stage II for T.
    TwoSBound,
    /// Gupta bounds for F (no Stage II), Sarkar single-sweep for T.
    GPlusS,
    /// Gupta bounds for F (no Stage II), our two-stage for T.
    Gupta,
    /// Our two-stage for F, Sarkar single-sweep for T.
    Sarkar,
}

impl Scheme {
    /// The F-Rank realization this scheme uses.
    pub fn f_mode(&self) -> FBoundMode {
        match self {
            Scheme::TwoSBound | Scheme::Sarkar => FBoundMode::TwoStage,
            Scheme::GPlusS | Scheme::Gupta => FBoundMode::Gupta,
        }
    }

    /// The T-Rank realization this scheme uses.
    pub fn t_mode(&self) -> TBoundMode {
        match self {
            Scheme::TwoSBound | Scheme::Gupta => TBoundMode::TwoStage,
            Scheme::GPlusS | Scheme::Sarkar => TBoundMode::Sarkar,
        }
    }

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::TwoSBound => "2SBound",
            Scheme::GPlusS => "G+S",
            Scheme::Gupta => "Gupta",
            Scheme::Sarkar => "Sarkar",
        }
    }

    /// All schemes in the paper's Fig. 11a order (weakest first).
    pub fn all() -> [Scheme; 4] {
        [
            Scheme::GPlusS,
            Scheme::Gupta,
            Scheme::Sarkar,
            Scheme::TwoSBound,
        ]
    }
}

/// The Naive baseline: exact RoundTripRank by full iterative computation,
/// then take the top K.
#[derive(Clone, Copy, Debug)]
pub struct NaiveTopK {
    params: RankParams,
    k: usize,
}

impl NaiveTopK {
    /// Create for the given parameters and K.
    pub fn new(params: RankParams, k: usize) -> Self {
        NaiveTopK { params, k }
    }

    /// Compute the exact top-K (bounds collapse to the exact scores; the
    /// "active set" is the entire graph, which is precisely the baseline's
    /// weakness).
    pub fn run(&self, g: &Graph, q: NodeId) -> Result<TopKResult, CoreError> {
        let scores = RoundTripRank::new(self.params).compute(g, &Query::single(q))?;
        let ranking = scores.top_k(self.k.min(g.node_count()));
        let bounds = ranking
            .iter()
            .map(|&v| (scores.score(v), scores.score(v)))
            .collect();
        let active = ActiveSetStats::measure(g, g.nodes(), g.nodes());
        Ok(TopKResult {
            ranking,
            bounds,
            expansions: 0,
            converged: true,
            active,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn scheme_modes() {
        assert_eq!(Scheme::TwoSBound.f_mode(), FBoundMode::TwoStage);
        assert_eq!(Scheme::TwoSBound.t_mode(), TBoundMode::TwoStage);
        assert_eq!(Scheme::GPlusS.f_mode(), FBoundMode::Gupta);
        assert_eq!(Scheme::GPlusS.t_mode(), TBoundMode::Sarkar);
        assert_eq!(Scheme::Gupta.f_mode(), FBoundMode::Gupta);
        assert_eq!(Scheme::Gupta.t_mode(), TBoundMode::TwoStage);
        assert_eq!(Scheme::Sarkar.f_mode(), FBoundMode::TwoStage);
        assert_eq!(Scheme::Sarkar.t_mode(), TBoundMode::Sarkar);
    }

    #[test]
    fn names_match_paper_legend() {
        let names: Vec<&str> = Scheme::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["G+S", "Gupta", "Sarkar", "2SBound"]);
    }

    #[test]
    fn naive_returns_exact_ranking() {
        let (g, ids) = fig2_toy();
        let result = NaiveTopK::new(RankParams::default(), 5)
            .run(&g, ids.t1)
            .unwrap();
        assert_eq!(result.ranking.len(), 5);
        assert_eq!(result.ranking[0], ids.t1);
        // Exact bounds: zero width.
        for &(lo, hi) in &result.bounds {
            assert_eq!(lo, hi);
        }
        // Naive touches everything: active set is the whole graph.
        assert_eq!(result.active.active_nodes, g.node_count());
    }
}
