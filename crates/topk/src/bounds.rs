//! Bound pairs and monotone tightening.
//!
//! Every seen node carries `[lower, upper]` sandwiching its true score
//! (paper Sect. V-A). All updates go through [`Bounds::tighten_lower`] /
//! [`Bounds::tighten_upper`], which enforce the paper's monotonicity rule:
//! "To tighten the bounds, we only decrease an upper bound or increase a
//! lower bound in any update" — this is what guarantees Stage II converges
//! (bounded monotone sequences).

/// A `[lower, upper]` interval around a true score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bounds {
    /// Lower bound (monotonically non-decreasing over a run).
    pub lower: f64,
    /// Upper bound (monotonically non-increasing over a run).
    pub upper: f64,
}

impl Bounds {
    /// A fresh `[0, upper]` interval (how newly-seen nodes start).
    pub fn unseen(upper: f64) -> Self {
        Bounds { lower: 0.0, upper }
    }

    /// An exact value (`lower == upper`).
    pub fn exact(value: f64) -> Self {
        Bounds {
            lower: value,
            upper: value,
        }
    }

    /// Raise the lower bound if `candidate` improves it. Returns the change.
    #[inline]
    pub fn tighten_lower(&mut self, candidate: f64) -> f64 {
        if candidate > self.lower {
            let delta = candidate - self.lower;
            self.lower = candidate;
            delta
        } else {
            0.0
        }
    }

    /// Lower the upper bound if `candidate` improves it. Returns the change.
    #[inline]
    pub fn tighten_upper(&mut self, candidate: f64) -> f64 {
        if candidate < self.upper {
            let delta = self.upper - candidate;
            self.upper = candidate;
            delta
        } else {
            0.0
        }
    }

    /// Interval width `upper - lower`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// `true` if `value` lies inside the interval (with tolerance).
    pub fn contains(&self, value: f64, tol: f64) -> bool {
        value >= self.lower - tol && value <= self.upper + tol
    }

    /// Product interval: `[a.lower·b.lower, a.upper·b.upper]` — valid for
    /// non-negative scores, which all our probabilities are (Eq. 15).
    pub fn product(&self, other: &Bounds) -> Bounds {
        debug_assert!(self.lower >= 0.0 && other.lower >= 0.0);
        Bounds {
            lower: self.lower * other.lower,
            upper: self.upper * other.upper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighten_lower_only_raises() {
        let mut b = Bounds::unseen(1.0);
        assert!(b.tighten_lower(0.3) > 0.0);
        assert_eq!(b.lower, 0.3);
        assert_eq!(b.tighten_lower(0.2), 0.0); // worse candidate ignored
        assert_eq!(b.lower, 0.3);
    }

    #[test]
    fn tighten_upper_only_lowers() {
        let mut b = Bounds::unseen(1.0);
        assert!(b.tighten_upper(0.6) > 0.0);
        assert_eq!(b.upper, 0.6);
        assert_eq!(b.tighten_upper(0.9), 0.0);
        assert_eq!(b.upper, 0.6);
    }

    #[test]
    fn width_and_contains() {
        let b = Bounds {
            lower: 0.2,
            upper: 0.5,
        };
        assert!((b.width() - 0.3).abs() < 1e-15);
        assert!(b.contains(0.3, 0.0));
        assert!(!b.contains(0.6, 0.0));
        assert!(b.contains(0.5 + 1e-12, 1e-9));
    }

    #[test]
    fn product_interval() {
        let a = Bounds {
            lower: 0.2,
            upper: 0.4,
        };
        let b = Bounds {
            lower: 0.5,
            upper: 1.0,
        };
        let p = a.product(&b);
        assert!((p.lower - 0.1).abs() < 1e-15);
        assert!((p.upper - 0.4).abs() < 1e-15);
    }

    #[test]
    fn exact_has_zero_width() {
        let b = Bounds::exact(0.7);
        assert_eq!(b.width(), 0.0);
        assert!(b.contains(0.7, 0.0));
    }
}
