//! T-Rank realization of the two-stage bounds-updating framework
//! (paper Sect. V-A3, "Realization of T-Rank").
//!
//! The t-neighborhood `S_t` grows backward from the query along in-edges.
//! Its Stage I hinges on **border nodes** (after Sarkar et al. [14, 20]):
//! a border node of `S_t` has at least one in-neighbor outside `S_t`, so any
//! walk from an unseen node must enter `S_t` through a border node, and
//! because the geometric walk is memoryless,
//!
//! ```text
//! t̂(q) = (1-α) · max_{u ∈ ∂(S_t)} t̂(q,u)        (Eq. 22)
//! ```
//!
//! (the `1-α` factor: reaching the border costs at least one surviving
//! step). One expansion picks the `m` border nodes with the largest upper
//! bounds and absorbs all their in-neighbors, deleting them from the border
//! and thus driving the unseen bound down.
//!
//! Stage II sweeps Eq. 17–18 over `S_t`, gathering over **out**-neighbors,
//! to convergence, refreshing the unseen bound each sweep. The *Sarkar*
//! variant (efficiency baseline) performs a single sweep per expansion
//! instead of iterating to convergence.

use crate::bounds::Bounds;
use crate::workspace::TWorkspace;
use rtr_core::{CoreError, RankParams};
use rtr_graph::{AdjacencyAccess, AdjacencyError, FetchHint, NodeId, SparseMap};

/// Which Stage-II realization the t-neighborhood uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TBoundMode {
    /// The paper's full realization: refine to convergence.
    TwoStage,
    /// Sarkar et al. baseline: one refinement sweep per expansion.
    Sarkar,
}

/// The t-neighborhood with its bounds.
///
/// Per-query state lives in a [`TWorkspace`]; [`TNeighborhood::new`]
/// allocates a fresh one, [`TNeighborhood::with_workspace`] reuses a
/// worker's buffers.
///
/// The graph is not captured: expansion and refinement take the
/// [`AdjacencyAccess`] they run against, so the same neighborhood drives
/// the in-memory graph and the distributed active graph alike.
pub struct TNeighborhood {
    q: NodeId,
    alpha: f64,
    mode: TBoundMode,
    bounds: SparseMap<Bounds>,
    order: Vec<u32>,
    border_scratch: Vec<(u32, f64)>,
    unseen_upper: f64,
}

impl TNeighborhood {
    /// Initialize with the paper's first expansion: `S_t = {q}`,
    /// `ť(q,q) = α`, `t̂(q,q) = 1`, `t̂(q) = 1-α`.
    pub fn new<A: AdjacencyAccess>(
        a: &A,
        q: NodeId,
        params: &RankParams,
        mode: TBoundMode,
    ) -> Result<Self, CoreError> {
        Self::with_workspace(a, q, params, mode, TWorkspace::default())
    }

    /// Initialize like [`TNeighborhood::new`] but reusing `ws`'s buffers
    /// (cleared in O(previous query's touched entries)). Recover the
    /// workspace with [`TNeighborhood::into_workspace`]. Touches no
    /// adjacency — a paged source fetches nothing until the first
    /// expansion.
    pub fn with_workspace<A: AdjacencyAccess>(
        a: &A,
        q: NodeId,
        params: &RankParams,
        mode: TBoundMode,
        ws: TWorkspace,
    ) -> Result<Self, CoreError> {
        params.validate()?;
        if q.index() >= a.node_count() {
            return Err(CoreError::NodeOutOfRange {
                node: q,
                node_count: a.node_count(),
            });
        }
        let TWorkspace {
            mut bounds,
            mut order,
            mut border,
        } = ws;
        bounds.ensure_capacity(a.node_count());
        bounds.clear();
        order.clear();
        border.clear();
        bounds.insert(
            q.0,
            Bounds {
                lower: params.alpha,
                upper: 1.0,
            },
        );
        Ok(TNeighborhood {
            q,
            alpha: params.alpha,
            mode,
            bounds,
            order,
            border_scratch: border,
            unseen_upper: 1.0 - params.alpha,
        })
    }

    /// Dissolve into the workspace so its buffers serve the next query.
    pub fn into_workspace(self) -> TWorkspace {
        TWorkspace {
            bounds: self.bounds,
            order: self.order,
            border: self.border_scratch,
        }
    }

    /// Whether `v` is a border node of the member set: in `S_t` with an
    /// in-neighbor outside. `v`'s adjacency must be resident.
    fn is_border_of<A: AdjacencyAccess>(a: &A, bounds: &SparseMap<Bounds>, v: NodeId) -> bool {
        a.in_edges(v).any(|(n, _)| !bounds.contains(n.0))
    }

    /// Current border nodes `∂(S_t)`.
    pub fn border<A: AdjacencyAccess>(&self, a: &A) -> Vec<NodeId> {
        self.bounds
            .keys()
            .map(NodeId)
            .filter(|&v| Self::is_border_of(a, &self.bounds, v))
            .collect()
    }

    fn recompute_unseen_upper<A: AdjacencyAccess>(&mut self, a: &A) {
        let max_border = self
            .bounds
            .iter()
            .filter(|&(v, _)| Self::is_border_of(a, &self.bounds, NodeId(v)))
            .map(|(_, b)| b.upper)
            .fold(f64::NEG_INFINITY, f64::max);
        let fresh = if max_border.is_finite() {
            (1.0 - self.alpha) * max_border
        } else {
            0.0 // no border: every remaining node is unreachable-to-q
        };
        // Monotone: the unseen bound never loosens.
        if fresh < self.unseen_upper {
            self.unseen_upper = fresh;
        }
    }

    /// Stage I: absorb the in-neighbors of up to `m` highest-upper border
    /// nodes; initialize newcomers to `[0, previous unseen bound]`; refresh
    /// the unseen bound. Returns the number of newly added nodes.
    pub fn expand<A: AdjacencyAccess>(
        &mut self,
        a: &mut A,
        m: usize,
    ) -> Result<usize, AdjacencyError> {
        // Announce the member set before the border scan reads its in-edges.
        // Round 1 this fetches {q}; afterwards every member is already
        // resident and this is a no-op — but the `InFrontier` hint lets a
        // paged source prefetch the members' missing in-neighbors, which
        // are exactly the nodes the coming absorptions will demand.
        self.order.clear();
        self.order.extend(self.bounds.keys());
        self.order.sort_unstable();
        a.ensure(&self.order, FetchHint::InFrontier)?;
        let border = &mut self.border_scratch;
        border.clear();
        for (v, b) in self.bounds.iter() {
            if Self::is_border_of(a, &self.bounds, NodeId(v)) {
                border.push((v, b.upper));
            }
        }
        if border.is_empty() {
            self.recompute_unseen_upper(a);
            return Ok(0);
        }
        let take = m.min(border.len()).max(1);
        // Ties break by node id for run-to-run reproducibility.
        border.select_nth_unstable_by(take - 1, |a, b| {
            b.1.partial_cmp(&a.1)
                .expect("NaN upper bound")
                .then(a.0.cmp(&b.0))
        });
        border.truncate(take);

        let prev_unseen = self.unseen_upper;
        let mut added = 0usize;
        // `order` doubles as the newcomer list: the refresh below needs the
        // newcomers' in-edges resident (and refine rebuilds `order` anyway).
        self.order.clear();
        for i in 0..take {
            let u = NodeId(self.border_scratch[i].0);
            for (src, _) in a.in_edges(u) {
                if self
                    .bounds
                    .insert_if_vacant(src.0, Bounds::unseen(prev_unseen))
                {
                    added += 1;
                    self.order.push(src.0);
                }
            }
        }
        self.order.sort_unstable();
        a.ensure(&self.order, FetchHint::Demand)?;
        self.recompute_unseen_upper(a);
        Ok(added)
    }

    /// Stage II: refine all bounds over `S_t` (out-neighbor recurrence),
    /// refreshing the unseen bound each sweep. In Sarkar mode only one sweep
    /// is performed. Returns the number of sweeps. Touches only members'
    /// adjacency, which [`TNeighborhood::expand`] already made resident.
    pub fn refine<A: AdjacencyAccess>(
        &mut self,
        a: &A,
        tolerance: f64,
        max_sweeps: usize,
    ) -> usize {
        let sweeps_cap = match self.mode {
            TBoundMode::TwoStage => max_sweeps,
            TBoundMode::Sarkar => 1,
        };
        self.order.clear();
        self.order.extend(self.bounds.keys());
        self.order.sort_unstable(); // deterministic Gauss-Seidel sweep order
        for sweep in 1..=sweeps_cap {
            let mut max_change = 0.0f64;
            for i in 0..self.order.len() {
                let vid = self.order[i];
                let v = NodeId(vid);
                let indicator = if v == self.q { self.alpha } else { 0.0 };
                let mut lo_acc = 0.0;
                let mut hi_acc = 0.0;
                for (dst, prob) in a.out_edges(v) {
                    match self.bounds.get(dst.0) {
                        Some(b) => {
                            lo_acc += prob * b.lower;
                            hi_acc += prob * b.upper;
                        }
                        None => {
                            hi_acc += prob * self.unseen_upper;
                        }
                    }
                }
                let cand_lo = indicator + (1.0 - self.alpha) * lo_acc;
                let cand_hi = indicator + (1.0 - self.alpha) * hi_acc;
                let b = self.bounds.get_mut(vid).expect("member");
                max_change = max_change.max(b.tighten_lower(cand_lo));
                max_change = max_change.max(b.tighten_upper(cand_hi));
            }
            self.recompute_unseen_upper(a);
            if max_change < tolerance {
                return sweep;
            }
        }
        sweeps_cap
    }

    /// The current unseen upper bound `t̂(q)`.
    pub fn unseen_upper(&self) -> f64 {
        self.unseen_upper
    }

    /// Bounds of a seen node, if seen.
    pub fn bounds(&self, v: NodeId) -> Option<Bounds> {
        self.bounds.get(v.0)
    }

    /// Effective bounds of *any* node (unseen ⇒ `[0, t̂(q)]`).
    pub fn effective_bounds(&self, v: NodeId) -> Bounds {
        self.bounds(v)
            .unwrap_or_else(|| Bounds::unseen(self.unseen_upper))
    }

    /// Whether `v` is in `S_t`.
    pub fn contains(&self, v: NodeId) -> bool {
        self.bounds.contains(v.0)
    }

    /// Iterate over seen nodes and their bounds.
    pub fn seen(&self) -> impl Iterator<Item = (NodeId, Bounds)> + '_ {
        self.bounds.iter().map(|(v, b)| (NodeId(v), b))
    }

    /// `|S_t|`.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether no node (not even the query) has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Whether only the query is in the neighborhood so far.
    pub fn is_query_only(&self) -> bool {
        self.bounds.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::prelude::*;
    use rtr_graph::toy::fig2_toy;
    use rtr_graph::Graph;

    fn exact_trank(g: &Graph, q: NodeId) -> ScoreVec {
        TRank::new(RankParams::default())
            .compute(g, &Query::single(q))
            .unwrap()
    }

    #[test]
    fn initial_state_matches_paper() {
        let (g, ids) = fig2_toy();
        let nb =
            TNeighborhood::new(&g, ids.t1, &RankParams::default(), TBoundMode::TwoStage).unwrap();
        assert!(nb.is_query_only());
        let b = nb.bounds(ids.t1).unwrap();
        assert_eq!(b.lower, 0.25);
        assert_eq!(b.upper, 1.0);
        assert!((nb.unseen_upper() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bounds_always_sandwich_exact() {
        let (g, ids) = fig2_toy();
        let exact = exact_trank(&g, ids.t1);
        let mut nb =
            TNeighborhood::new(&g, ids.t1, &RankParams::default(), TBoundMode::TwoStage).unwrap();
        for round in 0..10 {
            nb.expand(&mut &g, 2).unwrap();
            nb.refine(&g, 1e-12, 50);
            for v in g.nodes() {
                let b = nb.effective_bounds(v);
                assert!(
                    b.contains(exact.score(v), 1e-9),
                    "round {round}, {v:?}: exact {} outside [{}, {}]",
                    exact.score(v),
                    b.lower,
                    b.upper
                );
            }
        }
    }

    #[test]
    fn expansion_absorbs_in_neighbors() {
        let (g, ids) = fig2_toy();
        let mut nb =
            TNeighborhood::new(&g, ids.t1, &RankParams::default(), TBoundMode::TwoStage).unwrap();
        let added = nb.expand(&mut &g, 1).unwrap();
        // t1's in-neighbors are its 5 papers.
        assert_eq!(added, 5);
        for p in ids.p.iter().take(5) {
            assert!(nb.contains(*p));
        }
    }

    #[test]
    fn unseen_upper_never_increases() {
        let (g, ids) = fig2_toy();
        let mut nb =
            TNeighborhood::new(&g, ids.t1, &RankParams::default(), TBoundMode::TwoStage).unwrap();
        let mut prev = nb.unseen_upper();
        for _ in 0..10 {
            nb.expand(&mut &g, 2).unwrap();
            nb.refine(&g, 1e-12, 50);
            let cur = nb.unseen_upper();
            assert!(cur <= prev + 1e-12, "unseen bound rose {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn full_absorption_zeroes_unseen_bound_monotonically() {
        // Once St covers the whole (strongly connected) toy graph there is
        // no border, so the unseen bound collapses to 0.
        let (g, ids) = fig2_toy();
        let mut nb =
            TNeighborhood::new(&g, ids.t1, &RankParams::default(), TBoundMode::TwoStage).unwrap();
        for _ in 0..30 {
            nb.expand(&mut &g, 10).unwrap();
            nb.refine(&g, 1e-12, 50);
        }
        assert_eq!(nb.len(), g.node_count());
        assert_eq!(nb.unseen_upper(), 0.0);
    }

    #[test]
    fn two_stage_tighter_than_sarkar() {
        let (g, ids) = fig2_toy();
        let p = RankParams::default();
        let mut ours = TNeighborhood::new(&g, ids.t1, &p, TBoundMode::TwoStage).unwrap();
        let mut sarkar = TNeighborhood::new(&g, ids.t1, &p, TBoundMode::Sarkar).unwrap();
        for _ in 0..4 {
            ours.expand(&mut &g, 2).unwrap();
            ours.refine(&g, 1e-12, 50);
            sarkar.expand(&mut &g, 2).unwrap();
            sarkar.refine(&g, 1e-12, 50);
        }
        let ours_width: f64 = ours.seen().map(|(_, b)| b.width()).sum();
        let sarkar_width: f64 = sarkar.seen().map(|(_, b)| b.width()).sum();
        assert!(
            ours_width < sarkar_width,
            "two-stage {ours_width} not tighter than sarkar {sarkar_width}"
        );
    }

    #[test]
    fn sarkar_bounds_still_valid() {
        let (g, ids) = fig2_toy();
        let exact = exact_trank(&g, ids.t1);
        let mut nb =
            TNeighborhood::new(&g, ids.t1, &RankParams::default(), TBoundMode::Sarkar).unwrap();
        for _ in 0..10 {
            nb.expand(&mut &g, 2).unwrap();
            nb.refine(&g, 1e-12, 50);
            for v in g.nodes() {
                assert!(nb.effective_bounds(v).contains(exact.score(v), 1e-9));
            }
        }
    }

    #[test]
    fn bounds_converge_to_exact() {
        let (g, ids) = fig2_toy();
        let exact = exact_trank(&g, ids.t1);
        let mut nb =
            TNeighborhood::new(&g, ids.t1, &RankParams::default(), TBoundMode::TwoStage).unwrap();
        for _ in 0..40 {
            nb.expand(&mut &g, 10).unwrap();
            nb.refine(&g, 1e-14, 200);
        }
        for v in g.nodes() {
            let b = nb.effective_bounds(v);
            assert!(
                b.width() < 1e-6,
                "{v:?} width {} too wide after convergence",
                b.width()
            );
            assert!(b.contains(exact.score(v), 1e-6));
        }
    }

    #[test]
    fn unreachable_region_gets_zero_bound() {
        // x -> q but nothing leads from y-to-q: once the border empties,
        // unseen nodes (y) are correctly bounded by 0.
        let mut b = rtr_graph::GraphBuilder::new();
        let ty = b.register_type("n");
        let q = b.add_node(ty);
        let x = b.add_node(ty);
        let y = b.add_node(ty);
        b.add_edge(x, q, 1.0);
        b.add_edge(q, x, 1.0);
        b.add_edge(q, y, 1.0); // y has no out-edges back
        let g = b.build();
        let mut nb =
            TNeighborhood::new(&g, q, &RankParams::default(), TBoundMode::TwoStage).unwrap();
        for _ in 0..5 {
            nb.expand(&mut &g, 5).unwrap();
            nb.refine(&g, 1e-12, 50);
        }
        assert_eq!(nb.unseen_upper(), 0.0);
        assert_eq!(nb.effective_bounds(y).upper, 0.0);
    }

    #[test]
    fn out_of_range_query_rejected() {
        let (g, _) = fig2_toy();
        assert!(TNeighborhood::new(
            &g,
            NodeId(999),
            &RankParams::default(),
            TBoundMode::TwoStage
        )
        .is_err());
    }
}
