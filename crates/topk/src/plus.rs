//! 2SBound for RoundTripRank+ — the extension the paper declares
//! straightforward (Sect. V: "Our discussion only covers RoundTripRank, but
//! extending to RoundTripRank+ is straightforward") and leaves to the
//! reader; here it is.
//!
//! The only change from the base algorithm is the combination of the f- and
//! t-bounds. Since `x ↦ x^c` is monotone for `c ≥ 0` and all scores are
//! non-negative, the product bounds of Eq. 15 generalize to
//!
//! ```text
//! ř_β(q,v) = f̌(q,v)^(1-β) · ť(q,v)^β
//! r̂_β(q,v) = f̂(q,v)^(1-β) · t̂(q,v)^β
//! ```
//!
//! and the unseen bound of Eq. 16 generalizes the same way. At β = 0.5 the
//! ranking (and the stopping behaviour up to the monotone square root)
//! coincides with the base 2SBound.

use crate::active_set::ActiveSetStats;
use crate::bounds::Bounds;
use crate::config::TopKConfig;
use crate::fbound::FNeighborhood;
use crate::schemes::Scheme;
use crate::tbound::TNeighborhood;
use crate::two_sbound::TopKResult;
use crate::workspace::TopKWorkspace;
use rtr_core::{CoreError, RankParams};
use rtr_graph::{AdjacencyAccess, AdjacencyError, Graph, NodeId};

const TIE_EPS: f64 = 1e-12;

/// Online top-K for RoundTripRank+ with specificity bias β.
#[derive(Clone, Copy, Debug)]
pub struct TwoSBoundPlus {
    params: RankParams,
    config: TopKConfig,
    scheme: Scheme,
    beta: f64,
}

impl TwoSBoundPlus {
    /// Create for a given β ∈ [0, 1] (the paper's full scheme).
    pub fn new(params: RankParams, config: TopKConfig, beta: f64) -> Result<Self, CoreError> {
        Self::with_scheme(params, config, Scheme::TwoSBound, beta)
    }

    /// Create with an explicit computational scheme (the Fig. 11a
    /// ablations, generalized to β exponents exactly like the bounds).
    pub fn with_scheme(
        params: RankParams,
        config: TopKConfig,
        scheme: Scheme,
        beta: f64,
    ) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
            return Err(CoreError::InvalidBeta(beta));
        }
        Ok(TwoSBoundPlus {
            params,
            config,
            scheme,
            beta,
        })
    }

    /// The specificity bias in use.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The configuration in use.
    pub fn config(&self) -> &TopKConfig {
        &self.config
    }

    #[inline]
    fn blend(&self, f: &Bounds, t: &Bounds) -> Bounds {
        let (a, b) = (1.0 - self.beta, self.beta);
        Bounds {
            lower: f.lower.powf(a) * t.lower.powf(b),
            upper: f.upper.powf(a) * t.upper.powf(b),
        }
    }

    /// Run the β-weighted top-K search for query node `q`, allocating
    /// fresh per-query state. Serving paths use
    /// [`TwoSBoundPlus::run_with`] instead.
    pub fn run(&self, g: &Graph, q: NodeId) -> Result<TopKResult, CoreError> {
        self.run_with(g, q, &mut TopKWorkspace::default())
    }

    /// Run the β-weighted top-K search for query node `q` reusing `ws`'s
    /// buffers. Results are bit-identical to [`TwoSBoundPlus::run`]; the
    /// sparse maps and scratch vectors survive between queries, mirroring
    /// [`crate::TwoSBound::run_with`].
    pub fn run_with(
        &self,
        g: &Graph,
        q: NodeId,
        ws: &mut TopKWorkspace,
    ) -> Result<TopKResult, CoreError> {
        let mut a = g;
        self.run_on(&mut a, q, ws)
    }

    /// Run the β-weighted top-K search over any [`AdjacencyAccess`] source —
    /// the single implementation behind both the local and the distributed
    /// executors, mirroring [`crate::TwoSBound::run_on`]. A mid-run
    /// adjacency failure restores `ws`'s buffers before returning the error.
    pub fn run_on<A: AdjacencyAccess>(
        &self,
        a: &mut A,
        q: NodeId,
        ws: &mut TopKWorkspace,
    ) -> Result<TopKResult, CoreError> {
        let cfg = &self.config;
        // Validate before borrowing any workspace buffer: a rejected query
        // must not cost the worker its buffers.
        self.params.validate()?;
        if q.index() >= a.node_count() {
            return Err(CoreError::NodeOutOfRange {
                node: q,
                node_count: a.node_count(),
            });
        }
        let f_ws = std::mem::take(&mut ws.f);
        let mut f =
            FNeighborhood::with_workspace(&*a, q, &self.params, self.scheme.f_mode(), f_ws)?;
        let t_ws = std::mem::take(&mut ws.t);
        let mut t =
            match TNeighborhood::with_workspace(&*a, q, &self.params, self.scheme.t_mode(), t_ws) {
                Ok(t) => t,
                Err(e) => {
                    ws.f = f.into_workspace();
                    return Err(e);
                }
            };
        let k = cfg.k.min(a.node_count());
        if k == 0 {
            // K = 0 (or an empty graph): trivial answer; `conditions_hold`
            // indexes members[k-1] and must not see it.
            ws.f = f.into_workspace();
            ws.t = t.into_workspace();
            return Ok(TopKResult {
                ranking: Vec::new(),
                bounds: Vec::new(),
                expansions: 0,
                converged: true,
                active: ActiveSetStats::default(),
            });
        }
        let refine_tol = cfg.refine_tolerance.max(cfg.epsilon * 1e-2);
        let result = self.search(a, &mut f, &mut t, ws, k, refine_tol);
        ws.f = f.into_workspace();
        ws.t = t.into_workspace();
        result.map_err(CoreError::from)
    }

    /// The expansion / refinement / stopping loop, factored out so
    /// [`TwoSBoundPlus::run_on`] has a single workspace-restore point
    /// covering both the success and the error path.
    fn search<A: AdjacencyAccess>(
        &self,
        a: &mut A,
        f: &mut FNeighborhood,
        t: &mut TNeighborhood,
        ws: &mut TopKWorkspace,
        k: usize,
        refine_tol: f64,
    ) -> Result<TopKResult, AdjacencyError> {
        let cfg = &self.config;
        let (wa, wb) = (1.0 - self.beta, self.beta);
        let members = &mut ws.members;
        let mut expansions = 0usize;
        loop {
            expansions += 1;
            f.expand(&mut *a, cfg.m_f)?;
            f.refine(&*a, refine_tol, cfg.refine_max_sweeps);
            t.expand(&mut *a, cfg.m_t)?;
            t.refine(&*a, refine_tol, cfg.refine_max_sweeps);

            members.clear();
            members.extend(
                f.seen()
                    .filter_map(|(v, fb)| t.bounds(v).map(|tb| (v, self.blend(&fb, &tb)))),
            );
            members.sort_by(|a, b| {
                b.1.lower
                    .partial_cmp(&a.1.lower)
                    .expect("NaN bound")
                    .then(a.0.cmp(&b.0))
            });

            // Eq. 16 with β exponents.
            let f_unseen = f.unseen_upper();
            let t_unseen = t.unseen_upper();
            let mut r_unseen = f_unseen.powf(wa) * t_unseen.powf(wb);
            for (v, fb) in f.seen() {
                if !t.contains(v) {
                    r_unseen = r_unseen.max(fb.upper.powf(wa) * t_unseen.powf(wb));
                }
            }
            for (v, tb) in t.seen() {
                if !f.contains(v) {
                    r_unseen = r_unseen.max(f_unseen.powf(wa) * tb.upper.powf(wb));
                }
            }

            let done = members.len() >= k && conditions_hold(members, k, cfg.epsilon, r_unseen);
            let exhausted = f.residual() < 1e-15 && t.unseen_upper() == 0.0;
            if done || exhausted || expansions >= cfg.max_expansions {
                let active = ActiveSetStats::measure_in_access(
                    &mut ws.active,
                    &*a,
                    f.seen().map(|(v, _)| v),
                    t.seen().map(|(v, _)| v),
                );
                members.truncate(k);
                return Ok(TopKResult {
                    ranking: members.iter().map(|&(v, _)| v).collect(),
                    bounds: members.iter().map(|&(_, b)| (b.lower, b.upper)).collect(),
                    expansions,
                    converged: done,
                    active,
                });
            }
        }
    }
}

fn conditions_hold(members: &[(NodeId, Bounds)], k: usize, epsilon: f64, r_unseen: f64) -> bool {
    let mut max_other_upper = r_unseen;
    for &(_, b) in &members[k..] {
        max_other_upper = max_other_upper.max(b.upper);
    }
    if members[k - 1].1.lower <= max_other_upper - epsilon - TIE_EPS {
        return false;
    }
    for i in 0..k - 1 {
        if members[i].1.lower <= members[i + 1].1.upper - epsilon - TIE_EPS {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::prelude::*;
    use rtr_graph::toy::fig2_toy;

    fn exact_plus(g: &Graph, q: NodeId, beta: f64) -> ScoreVec {
        RoundTripRankPlus::new(RankParams::default(), beta)
            .unwrap()
            .compute(g, &Query::single(q))
            .unwrap()
    }

    fn toy_cfg(k: usize) -> TopKConfig {
        TopKConfig {
            k,
            epsilon: 0.0,
            m_f: 4,
            m_t: 2,
            max_expansions: 2_000,
            ..TopKConfig::default()
        }
    }

    #[test]
    fn rejects_invalid_beta() {
        let p = RankParams::default();
        assert!(TwoSBoundPlus::new(p, toy_cfg(3), -0.1).is_err());
        assert!(TwoSBoundPlus::new(p, toy_cfg(3), 1.5).is_err());
        assert!(TwoSBoundPlus::new(p, toy_cfg(3), f64::NAN).is_err());
    }

    #[test]
    fn matches_exact_rtr_plus_across_betas() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        for beta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let exact = exact_plus(&g, ids.t1, beta);
            let result = TwoSBoundPlus::new(params, toy_cfg(4), beta)
                .unwrap()
                .run(&g, ids.t1)
                .unwrap();
            let want = exact.top_k(result.ranking.len());
            for (got, want) in result.ranking.iter().zip(&want) {
                assert!(
                    (exact.score(*got) - exact.score(*want)).abs() < 1e-9,
                    "β={beta}: got {got:?} ({}) want {want:?} ({})",
                    exact.score(*got),
                    exact.score(*want)
                );
            }
        }
    }

    #[test]
    fn bounds_sandwich_exact_scores() {
        let (g, ids) = fig2_toy();
        let beta = 0.3;
        let exact = exact_plus(&g, ids.t1, beta);
        let result = TwoSBoundPlus::new(RankParams::default(), toy_cfg(5), beta)
            .unwrap()
            .run(&g, ids.t1)
            .unwrap();
        for (v, &(lo, hi)) in result.ranking.iter().zip(&result.bounds) {
            let s = exact.score(*v);
            assert!(
                s >= lo - 1e-9 && s <= hi + 1e-9,
                "{v:?}: {s} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn beta_extremes_change_the_winner_set() {
        // β = 1 (specificity): v3 must appear among venues before v1.
        let (g, ids) = fig2_toy();
        let result = TwoSBoundPlus::new(RankParams::default(), toy_cfg(12), 1.0)
            .unwrap()
            .run(&g, ids.t1)
            .unwrap();
        let pos = |v: NodeId| result.ranking.iter().position(|&x| x == v);
        let (p_v3, p_v1) = (pos(ids.v3), pos(ids.v1));
        if let (Some(a), Some(b)) = (p_v3, p_v1) {
            assert!(a < b, "specificity should favor v3 over v1");
        }
    }

    #[test]
    fn run_with_is_bit_identical_to_run_across_betas() {
        // Workspace reuse must leave no residue: a long-lived workspace fed
        // a β sweep must reproduce the allocating path exactly.
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let mut ws = crate::workspace::TopKWorkspace::default();
        for beta in [0.0, 0.3, 0.5, 0.8, 1.0] {
            for q in [ids.t1, ids.v1, ids.p[0]] {
                let engine = TwoSBoundPlus::new(params, toy_cfg(4), beta).unwrap();
                let fresh = engine.run(&g, q).unwrap();
                let reused = engine.run_with(&g, q, &mut ws).unwrap();
                assert_eq!(fresh.ranking, reused.ranking, "β={beta} {q:?}");
                assert_eq!(fresh.bounds, reused.bounds, "β={beta} {q:?}");
                assert_eq!(fresh.expansions, reused.expansions);
                assert_eq!(fresh.active, reused.active);
            }
        }
    }

    #[test]
    fn ablation_schemes_agree_on_plus_scores() {
        let (g, ids) = fig2_toy();
        let beta = 0.3;
        let exact = exact_plus(&g, ids.t1, beta);
        let expected: Vec<f64> = exact.top_k(3).iter().map(|&v| exact.score(v)).collect();
        for scheme in Scheme::all() {
            let result =
                TwoSBoundPlus::with_scheme(RankParams::default(), toy_cfg(3), scheme, beta)
                    .unwrap()
                    .run(&g, ids.t1)
                    .unwrap();
            let got: Vec<f64> = result.ranking.iter().map(|&v| exact.score(v)).collect();
            for (a, b) in got.iter().zip(&expected) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{scheme:?}: scores {got:?} != {expected:?}"
                );
            }
        }
    }

    #[test]
    fn rejected_query_keeps_workspace_usable() {
        let (g, ids) = fig2_toy();
        let engine = TwoSBoundPlus::new(RankParams::default(), toy_cfg(4), 0.4).unwrap();
        let mut ws = crate::workspace::TopKWorkspace::default();
        let clean = engine.run_with(&g, ids.t1, &mut ws).unwrap();
        assert!(engine.run_with(&g, NodeId(9999), &mut ws).is_err());
        let after = engine.run_with(&g, ids.t1, &mut ws).unwrap();
        assert_eq!(clean.bounds, after.bounds);
    }

    #[test]
    fn half_beta_rank_matches_base_two_sbound() {
        use crate::two_sbound::TwoSBound;
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let base = TwoSBound::new(params, toy_cfg(4)).run(&g, ids.t1).unwrap();
        let plus = TwoSBoundPlus::new(params, toy_cfg(4), 0.5)
            .unwrap()
            .run(&g, ids.t1)
            .unwrap();
        // r_0.5 = sqrt(r): same ranking.
        let exact = exact_plus(&g, ids.t1, 0.5);
        for (a, b) in base.ranking.iter().zip(&plus.ranking) {
            assert!((exact.score(*a) - exact.score(*b)).abs() < 1e-9);
        }
    }
}
