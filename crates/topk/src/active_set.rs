//! Active-set accounting.
//!
//! The paper's distributed analysis (Sect. V-B1) measures the *active set* —
//! "the minimum working set that must reside in the main memory": the nodes
//! of the f- and t-neighborhoods plus their adjacency. Fig. 12 reports its
//! byte size against graph snapshots; this module computes the same
//! quantity.

use rtr_graph::{AdjacencyAccess, Graph, NodeId, NodeSet};

/// Size statistics of one query's active set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActiveSetStats {
    /// Nodes in the f-neighborhood `S_f`.
    pub f_nodes: usize,
    /// Nodes in the t-neighborhood `S_t`.
    pub t_nodes: usize,
    /// Distinct active nodes (`S_f ∪ S_t`).
    pub active_nodes: usize,
    /// Directed edges incident to active nodes (each counted once per
    /// direction stored, matching the dual-CSR footprint).
    pub active_edges: usize,
    /// Estimated resident bytes of the active set.
    pub bytes: usize,
}

impl ActiveSetStats {
    /// Measure the active set induced by the two neighborhoods.
    pub fn measure<I, J>(g: &Graph, f_nodes: I, t_nodes: J) -> Self
    where
        I: IntoIterator<Item = NodeId>,
        J: IntoIterator<Item = NodeId>,
    {
        Self::measure_in(&mut NodeSet::new(), g, f_nodes, t_nodes)
    }

    /// [`ActiveSetStats::measure`] reusing `union` as the scratch set (it is
    /// cleared first and sized to the graph), so per-query serving performs
    /// no allocation here.
    pub fn measure_in<I, J>(union: &mut NodeSet, g: &Graph, f_nodes: I, t_nodes: J) -> Self
    where
        I: IntoIterator<Item = NodeId>,
        J: IntoIterator<Item = NodeId>,
    {
        Self::measure_in_access(union, g, f_nodes, t_nodes)
    }

    /// [`ActiveSetStats::measure_in`] over any [`AdjacencyAccess`] source:
    /// the generic engines measure through the same trait they ran on, so a
    /// paged source reports the same numbers as the in-memory graph. Every
    /// measured node must be resident.
    pub fn measure_in_access<A, I, J>(union: &mut NodeSet, a: &A, f_nodes: I, t_nodes: J) -> Self
    where
        A: AdjacencyAccess,
        I: IntoIterator<Item = NodeId>,
        J: IntoIterator<Item = NodeId>,
    {
        union.ensure_capacity(a.node_count());
        union.clear();
        let mut f_count = 0usize;
        let mut t_count = 0usize;
        for v in f_nodes {
            f_count += 1;
            union.insert(v.0);
        }
        for v in t_nodes {
            t_count += 1;
            union.insert(v.0);
        }
        let mut edges = 0usize;
        let mut bytes = 0usize;
        for v in union.iter() {
            let v = NodeId(v);
            edges += a.out_degree(v) + a.in_degree(v);
            bytes += a.node_footprint_bytes(v);
        }
        ActiveSetStats {
            f_nodes: f_count,
            t_nodes: t_count,
            active_nodes: union.len(),
            active_edges: edges,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn union_deduplicates() {
        let (g, ids) = fig2_toy();
        let stats = ActiveSetStats::measure(&g, vec![ids.t1, ids.v1], vec![ids.t1, ids.v2]);
        assert_eq!(stats.f_nodes, 2);
        assert_eq!(stats.t_nodes, 2);
        assert_eq!(stats.active_nodes, 3); // t1 shared
        assert!(stats.bytes > 0);
    }

    #[test]
    fn active_set_smaller_than_graph() {
        let (g, ids) = fig2_toy();
        let stats = ActiveSetStats::measure(&g, vec![ids.t1], vec![ids.t1]);
        assert!(stats.bytes < g.memory_bytes());
    }

    #[test]
    fn empty_sets() {
        let (g, _) = fig2_toy();
        let stats = ActiveSetStats::measure(&g, vec![], vec![]);
        assert_eq!(stats, ActiveSetStats::default());
    }
}
