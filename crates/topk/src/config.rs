//! Configuration of the top-K search.

use serde::{Deserialize, Serialize};

/// Parameters of a 2SBound run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopKConfig {
    /// Number of desired results K (the paper's efficiency study uses 10).
    pub k: usize,
    /// Slack ε of the approximate top-K conditions (Eq. 13–14). ε = 0
    /// demands the exact top-K; the paper sweeps ε ∈ {0.01, 0.02, 0.03}.
    pub epsilon: f64,
    /// Expansion granularity for the f-neighborhood (paper: m = 100,
    /// "the performance is not sensitive to small changes in m").
    pub m_f: usize,
    /// Expansion granularity for the t-neighborhood (paper: m = 5 border
    /// nodes per expansion).
    pub m_t: usize,
    /// Stage II refinement: stop when the largest bound change in a sweep
    /// falls below this.
    pub refine_tolerance: f64,
    /// Stage II refinement: hard cap on sweeps per expansion.
    pub refine_max_sweeps: usize,
    /// Safety cap on expansion rounds (the loop normally exits via the
    /// top-K conditions; ties at ε = 0 would otherwise never separate).
    pub max_expansions: usize,
}

impl Default for TopKConfig {
    fn default() -> Self {
        Self {
            k: 10,
            epsilon: 0.01,
            m_f: 100,
            m_t: 5,
            refine_tolerance: 1e-12,
            refine_max_sweeps: 50,
            max_expansions: 10_000,
        }
    }
}

impl TopKConfig {
    /// A small-neighborhood configuration for toy graphs in tests.
    pub fn toy() -> Self {
        Self {
            k: 5,
            epsilon: 0.0,
            m_f: 4,
            m_t: 2,
            max_expansions: 500,
            ..Self::default()
        }
    }

    /// A stable, hashable view of this configuration for result-cache keys.
    ///
    /// Every field that can change a [`crate::TwoSBound`] run's output is
    /// folded in — not just `k` and `ε` but also the expansion
    /// granularities and refinement knobs, since those shift where the
    /// search stops and therefore which ε-valid ranking it returns. Floats
    /// are keyed by their IEEE-754 bits, so two configs compare equal
    /// exactly when a run under one is bit-identical to a run under the
    /// other (`-0.0` vs `0.0` hash differently, which is merely a missed
    /// dedup, never a wrong answer).
    pub fn cache_key(&self) -> TopKCacheKey {
        TopKCacheKey {
            k: self.k,
            epsilon_bits: self.epsilon.to_bits(),
            m_f: self.m_f,
            m_t: self.m_t,
            refine_tolerance_bits: self.refine_tolerance.to_bits(),
            refine_max_sweeps: self.refine_max_sweeps,
            max_expansions: self.max_expansions,
        }
    }
}

/// Hashable identity of a [`TopKConfig`] (see [`TopKConfig::cache_key`]).
/// Deliberately opaque: consumers treat it as a key component only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TopKCacheKey {
    k: usize,
    epsilon_bits: u64,
    m_f: usize,
    m_t: usize,
    refine_tolerance_bits: u64,
    refine_max_sweeps: usize,
    max_expansions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TopKConfig::default();
        assert_eq!(c.k, 10);
        assert_eq!(c.m_f, 100);
        assert_eq!(c.m_t, 5);
        assert!((c.epsilon - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cache_key_distinguishes_every_output_relevant_field() {
        let base = TopKConfig::default();
        assert_eq!(base.cache_key(), base.cache_key());
        let variants = [
            TopKConfig { k: 11, ..base },
            TopKConfig {
                epsilon: 0.02,
                ..base
            },
            TopKConfig { m_f: 99, ..base },
            TopKConfig { m_t: 6, ..base },
            TopKConfig {
                refine_tolerance: 1e-11,
                ..base
            },
            TopKConfig {
                refine_max_sweeps: 49,
                ..base
            },
            TopKConfig {
                max_expansions: 9_999,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(v.cache_key(), base.cache_key(), "{v:?} collided");
        }
    }
}
