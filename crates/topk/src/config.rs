//! Configuration of the top-K search.

use serde::{Deserialize, Serialize};

/// Parameters of a 2SBound run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopKConfig {
    /// Number of desired results K (the paper's efficiency study uses 10).
    pub k: usize,
    /// Slack ε of the approximate top-K conditions (Eq. 13–14). ε = 0
    /// demands the exact top-K; the paper sweeps ε ∈ {0.01, 0.02, 0.03}.
    pub epsilon: f64,
    /// Expansion granularity for the f-neighborhood (paper: m = 100,
    /// "the performance is not sensitive to small changes in m").
    pub m_f: usize,
    /// Expansion granularity for the t-neighborhood (paper: m = 5 border
    /// nodes per expansion).
    pub m_t: usize,
    /// Stage II refinement: stop when the largest bound change in a sweep
    /// falls below this.
    pub refine_tolerance: f64,
    /// Stage II refinement: hard cap on sweeps per expansion.
    pub refine_max_sweeps: usize,
    /// Safety cap on expansion rounds (the loop normally exits via the
    /// top-K conditions; ties at ε = 0 would otherwise never separate).
    pub max_expansions: usize,
}

impl Default for TopKConfig {
    fn default() -> Self {
        Self {
            k: 10,
            epsilon: 0.01,
            m_f: 100,
            m_t: 5,
            refine_tolerance: 1e-12,
            refine_max_sweeps: 50,
            max_expansions: 10_000,
        }
    }
}

impl TopKConfig {
    /// A small-neighborhood configuration for toy graphs in tests.
    pub fn toy() -> Self {
        Self {
            k: 5,
            epsilon: 0.0,
            m_f: 4,
            m_t: 2,
            max_expansions: 500,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TopKConfig::default();
        assert_eq!(c.k, 10);
        assert_eq!(c.m_f, 100);
        assert_eq!(c.m_t, 5);
        assert!((c.epsilon - 0.01).abs() < 1e-12);
    }
}
