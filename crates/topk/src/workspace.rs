//! Reusable per-query workspaces for the top-K machinery.
//!
//! One 2SBound query touches four sparse structures — BCA's `ρ`/`µ` maps,
//! the f- and t-neighborhood bounds maps — plus a handful of scratch
//! vectors (sweep orders, border selection, the r-neighborhood member
//! list, the active-set union). [`TopKWorkspace`] owns all of them so a
//! serving worker can run query after query against a shared graph with
//! zero steady-state allocation: every buffer is cleared in O(touched)
//! and re-used.
//!
//! The workspace is deliberately *not* tied to a graph: capacities grow on
//! first use (and when a larger graph appears) and are retained after.

use crate::bounds::Bounds;
use rtr_core::BcaWorkspace;
use rtr_graph::{NodeSet, SparseMap};

/// Reusable state for one [`crate::fbound::FNeighborhood`]: the underlying
/// BCA workspace, the bounds map over `S_f`, and the Stage-II sweep order.
#[derive(Clone, Debug, Default)]
pub struct FWorkspace {
    pub(crate) bca: BcaWorkspace,
    pub(crate) bounds: SparseMap<Bounds>,
    pub(crate) order: Vec<u32>,
}

impl FWorkspace {
    pub(crate) fn with_capacity(n: usize) -> Self {
        FWorkspace {
            bca: BcaWorkspace::with_capacity(n),
            bounds: SparseMap::with_capacity(n),
            order: Vec::new(),
        }
    }
}

/// Reusable state for one [`crate::tbound::TNeighborhood`]: the bounds map
/// over `S_t`, the Stage-II sweep order, and the border-selection scratch.
#[derive(Clone, Debug, Default)]
pub struct TWorkspace {
    pub(crate) bounds: SparseMap<Bounds>,
    pub(crate) order: Vec<u32>,
    pub(crate) border: Vec<(u32, f64)>,
}

/// Everything one [`crate::two_sbound::TwoSBound`] query needs, bundled for
/// per-worker reuse; pass to [`crate::two_sbound::TwoSBound::run_with`].
///
/// ```
/// use rtr_graph::toy::fig2_toy;
/// use rtr_core::prelude::*;
/// use rtr_topk::prelude::*;
///
/// let (g, ids) = fig2_toy();
/// let engine = TwoSBound::new(RankParams::default(), TopKConfig::toy());
/// let mut ws = TopKWorkspace::default();
/// for q in [ids.t1, ids.t2] {
///     // Bit-identical to `engine.run(&g, q)`, without its allocations.
///     let result = engine.run_with(&g, q, &mut ws).unwrap();
///     assert_eq!(result.ranking[0], q);
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct TopKWorkspace {
    pub(crate) f: FWorkspace,
    pub(crate) t: TWorkspace,
    pub(crate) members: Vec<(rtr_graph::NodeId, Bounds)>,
    pub(crate) active: NodeSet,
}

impl TWorkspace {
    pub(crate) fn with_capacity(n: usize) -> Self {
        TWorkspace {
            bounds: SparseMap::with_capacity(n),
            order: Vec::new(),
            border: Vec::new(),
        }
    }
}

impl TopKWorkspace {
    /// A workspace (all buffers empty) ready for any graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace with its sparse-set index arrays pre-sized for a graph
    /// of `n` nodes, so a serving worker's *first* query does not pay the
    /// O(n) dense-array allocations that [`TopKWorkspace::new`] defers to
    /// first use. Capacities still grow on demand if a larger graph
    /// appears; results are identical either way.
    pub fn with_capacity(n: usize) -> Self {
        TopKWorkspace {
            f: FWorkspace::with_capacity(n),
            t: TWorkspace::with_capacity(n),
            members: Vec::new(),
            active: NodeSet::with_capacity(n),
        }
    }
}
