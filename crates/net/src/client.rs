//! Blocking wire-protocol client.
//!
//! [`NetClient`] is the reference implementation of the client side of
//! `docs/PROTOCOL.md`, used by the e2e tests, the example, and the
//! `rtr-bench --wire` load generator. One TCP connection, synchronous
//! [`NetClient::call`] for the common case, and a split
//! [`NetClient::send`] / [`NetClient::recv`] pair so the load generator
//! can pipeline an open-loop arrival schedule without one thread per
//! in-flight request.
//!
//! Responses arrive in request order (the server's per-connection write
//! queue is FIFO), so `send`/`recv` pairing is positional: the `k`-th
//! `recv` returns the `k`-th successfully sent request's outcome, with
//! the echoed request id to prove it.

use crate::codec::{decode_reject, decode_response, encode_request, Reject};
use crate::frame::{Frame, FrameType, WireError, MAX_PAYLOAD};
use crate::json;
use bytes::{Bytes, BytesMut};
use rtr_serve::{QueryRequest, QueryResponse};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};

/// Client-side failure: transport, wire, or protocol trouble. Tenant
/// rejections are *not* errors — they are the `Err(Reject)` arm of a
/// successful [`NetClient::call`].
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that don't decode.
    Wire(WireError),
    /// The server said `Goodbye` (graceful shutdown) or closed the
    /// stream.
    ServerClosed,
    /// The server broke the protocol (unexpected frame type or id).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::ServerClosed => write!(f, "server closed the connection"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<NetError> for std::io::Error {
    fn from(e: NetError) -> Self {
        match e {
            NetError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// A blocking connection to a [`crate::NetServer`].
pub struct NetClient {
    stream: TcpStream,
    buffered: Vec<u8>,
    tenant: u32,
    json: bool,
    next_request_id: u64,
}

impl NetClient {
    /// Connect to a server (e.g. `server.local_addr()`); tenant 0,
    /// binary payloads.
    pub fn connect(addr: SocketAddr) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            buffered: Vec::new(),
            tenant: 0,
            json: false,
            next_request_id: 0,
        })
    }

    /// Stamp subsequent frames with this tenant id (admission-control
    /// identity).
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Switch request/response payloads to JSON mode (the debug
    /// encoding).
    pub fn with_json(mut self, json: bool) -> Self {
        self.json = json;
        self
    }

    /// Send a request and wait for its outcome: `Ok(response)` if
    /// admitted and executed, `Err(reject)` if the server refused it
    /// (rate limit, backpressure, draining, malformed).
    pub fn call(
        &mut self,
        request: &QueryRequest,
    ) -> Result<Result<QueryResponse, Reject>, NetError> {
        let sent_id = self.send(request)?;
        let (id, outcome) = self.recv()?;
        if id != sent_id {
            return Err(NetError::Protocol(format!(
                "response id {id} for request id {sent_id}"
            )));
        }
        Ok(outcome)
    }

    /// Pipelined send: write the request frame and return its request
    /// id without waiting. Pair each send with one [`NetClient::recv`].
    pub fn send(&mut self, request: &QueryRequest) -> Result<u64, NetError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        send_request(
            &mut self.stream,
            self.tenant,
            self.json,
            request_id,
            request,
        )?;
        Ok(request_id)
    }

    /// Pipelined receive: block for the next request outcome, returning
    /// the echoed request id alongside it.
    pub fn recv(&mut self) -> Result<(u64, Result<QueryResponse, Reject>), NetError> {
        decode_outcome(self.read_frame()?)
    }

    /// Split into independently owned send and receive halves, so a load
    /// generator can pace sends on one thread while another thread drains
    /// responses concurrently — pipelining bounded only by the server's
    /// write queue, with no lock between the two directions. Positional
    /// pairing still holds per connection: the k-th receive is the k-th
    /// send (including sends made before the split).
    pub fn split(self) -> std::io::Result<(WireSender, WireReceiver)> {
        let read_half = self.stream.try_clone()?;
        Ok((
            WireSender {
                stream: self.stream,
                tenant: self.tenant,
                json: self.json,
                next_request_id: self.next_request_id,
            },
            WireReceiver {
                stream: read_half,
                buffered: self.buffered,
            },
        ))
    }

    /// Liveness probe: round-trip a `Ping`. Don't interleave with
    /// outstanding pipelined sends (the reply would be mis-paired).
    pub fn ping(&mut self) -> Result<(), NetError> {
        let frame = Frame::control(FrameType::Ping, self.tenant, self.next_request_id);
        self.next_request_id += 1;
        self.stream.write_all(frame.to_bytes().as_slice())?;
        match self.read_frame()?.frame_type {
            FrameType::Pong => Ok(()),
            FrameType::Goodbye => Err(NetError::ServerClosed),
            other => Err(NetError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Fetch the server's Prometheus metrics text (the `/metrics`
    /// equivalent). Same interleaving caveat as [`NetClient::ping`].
    pub fn metrics(&mut self) -> Result<String, NetError> {
        let frame = Frame::control(FrameType::MetricsRequest, self.tenant, self.next_request_id);
        self.next_request_id += 1;
        self.stream.write_all(frame.to_bytes().as_slice())?;
        let reply = self.read_frame()?;
        match reply.frame_type {
            FrameType::MetricsResponse => String::from_utf8(reply.payload.as_slice().to_vec())
                .map_err(|_| NetError::Protocol("metrics text is not UTF-8".into())),
            FrameType::Goodbye => Err(NetError::ServerClosed),
            other => Err(NetError::Protocol(format!(
                "expected MetricsResponse, got {other:?}"
            ))),
        }
    }

    /// Announce departure and close the socket. Dropping without this is
    /// fine — the server treats EOF the same way, just without the
    /// pleasantries.
    pub fn goodbye(mut self) -> Result<(), NetError> {
        let frame = Frame::control(FrameType::Goodbye, self.tenant, self.next_request_id);
        self.stream.write_all(frame.to_bytes().as_slice())?;
        let _ = self.stream.shutdown(Shutdown::Both);
        Ok(())
    }

    /// Read exactly one frame, buffering partial reads.
    fn read_frame(&mut self) -> Result<Frame, NetError> {
        read_frame_from(&mut self.stream, &mut self.buffered)
    }
}

/// The sending half of a split [`NetClient`] (see [`NetClient::split`]).
pub struct WireSender {
    stream: TcpStream,
    tenant: u32,
    json: bool,
    next_request_id: u64,
}

impl WireSender {
    /// [`NetClient::send`] on the sending half.
    pub fn send(&mut self, request: &QueryRequest) -> Result<u64, NetError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        send_request(
            &mut self.stream,
            self.tenant,
            self.json,
            request_id,
            request,
        )?;
        Ok(request_id)
    }
}

/// The receiving half of a split [`NetClient`] (see [`NetClient::split`]).
pub struct WireReceiver {
    stream: TcpStream,
    buffered: Vec<u8>,
}

impl WireReceiver {
    /// [`NetClient::recv`] on the receiving half.
    pub fn recv(&mut self) -> Result<(u64, Result<QueryResponse, Reject>), NetError> {
        decode_outcome(read_frame_from(&mut self.stream, &mut self.buffered)?)
    }
}

/// Encode and write one request frame.
fn send_request(
    stream: &mut TcpStream,
    tenant: u32,
    json: bool,
    request_id: u64,
    request: &QueryRequest,
) -> Result<(), NetError> {
    let payload = if json {
        Bytes::from(crate::json::request_to_json(request).into_bytes())
    } else {
        let mut buf = BytesMut::new();
        encode_request(request, &mut buf);
        buf.freeze()
    };
    let frame = Frame {
        frame_type: FrameType::Request,
        json,
        tenant,
        request_id,
        payload,
    };
    stream.write_all(frame.to_bytes().as_slice())?;
    Ok(())
}

/// Interpret a server frame as a request outcome.
fn decode_outcome(frame: Frame) -> Result<(u64, Result<QueryResponse, Reject>), NetError> {
    match frame.frame_type {
        FrameType::Response => {
            let response = if frame.json {
                let text = std::str::from_utf8(frame.payload.as_slice())
                    .map_err(|_| NetError::Protocol("response is not UTF-8".into()))?;
                json::response_from_json(text)?
            } else {
                decode_response(frame.payload.as_slice())?
            };
            Ok((frame.request_id, Ok(response)))
        }
        FrameType::Error => {
            let reject = if frame.json {
                let text = std::str::from_utf8(frame.payload.as_slice())
                    .map_err(|_| NetError::Protocol("rejection is not UTF-8".into()))?;
                json::reject_from_json(text)?
            } else {
                decode_reject(frame.payload.as_slice())?
            };
            Ok((frame.request_id, Err(reject)))
        }
        FrameType::Goodbye => Err(NetError::ServerClosed),
        other => Err(NetError::Protocol(format!(
            "unexpected frame type {other:?} while awaiting a response"
        ))),
    }
}

/// Read exactly one frame from `stream`, buffering partial reads.
fn read_frame_from(stream: &mut TcpStream, buffered: &mut Vec<u8>) -> Result<Frame, NetError> {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match Frame::parse(buffered, MAX_PAYLOAD) {
            Ok((frame, consumed)) => {
                buffered.drain(..consumed);
                return Ok(frame);
            }
            Err(WireError::Truncated { .. }) => {}
            Err(fatal) => return Err(NetError::Wire(fatal)),
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(NetError::ServerClosed);
        }
        buffered.extend_from_slice(&chunk[..n]);
    }
}
