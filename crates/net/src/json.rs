//! JSON payload mode — the debuggability fallback of the wire protocol.
//!
//! Setting [`crate::frame::FLAG_JSON`] in a frame header switches that
//! frame's payload from the binary codec to UTF-8 JSON with the shapes
//! below; the server answers JSON-mode requests with JSON-mode responses.
//! This exists so a human with a scripting language (or `xxd` and
//! patience) can talk to the server without implementing the binary
//! codec; the binary mode is the production path.
//!
//! The workspace's vendored `serde` shim carries no JSON format, so this
//! module hand-rolls a small total JSON reader/writer. Numbers keep
//! full fidelity across a round trip: integers ride as u64, and floats
//! are printed with Rust's shortest-round-trip formatting — so even the
//! f64 query weights survive JSON bit for bit.
//!
//! Request shape (only `query` and `measure` are required):
//!
//! ```json
//! {"query": [[3, 1.0]], "measure": "rtr", "k": 5,
//!  "params": {"alpha": 0.25, "tolerance": 1e-6, "max_iterations": 100},
//!  "topk": {"k": 10, "epsilon": 0.01, "m_f": 40, "m_t": 40,
//!            "refine_tolerance": 1e-6, "refine_max_sweeps": 30,
//!            "max_expansions": 100000},
//!  "scheme": "two_sbound", "backend": "local"}
//! ```
//!
//! `measure` is `"f"`, `"t"`, `"rtr"`, or `{"rtr_plus": {"beta": 0.7}}`;
//! `scheme` is `"two_sbound"`, `"gplus_s"`, `"gupta"`, or `"sarkar"`.
//! Response and rejection shapes mirror the binary codec field for field
//! (see [`response_to_json`] / [`reject_to_json`]).

use crate::codec::{ErrorCode, Reject};
use crate::frame::WireError;
use rtr_core::{CoreError, Measure, Query, RankParams};
use rtr_distributed::DistributedStats;
use rtr_graph::NodeId;
use rtr_serve::{BackendKind, QueryRequest, QueryResponse, ResolvedRequest, ServeError};
use rtr_topk::{ActiveSetStats, Scheme, TopKConfig, TopKResult};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// A parsed JSON value. Object members keep insertion order (encode
/// output is deterministic).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no `.`/exponent) — kept exact.
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

fn bad(msg: impl Into<String>) -> WireError {
    WireError::BadJson(msg.into())
}

impl Json {
    /// Parse a complete JSON document (rejects trailing input).
    pub fn parse(text: &str) -> Result<Json, WireError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(bad(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(members) => members
                .iter()
                .find_map(|(k, v)| (k == key && *v != Json::Null).then_some(v)),
            _ => None,
        }
    }

    fn require<'a>(&'a self, key: &str) -> Result<&'a Json, WireError> {
        self.get(key)
            .ok_or_else(|| bad(format!("missing field '{key}'")))
    }

    fn as_u64(&self) -> Result<u64, WireError> {
        match self {
            Json::Int(v) => Ok(*v),
            _ => Err(bad("expected a non-negative integer")),
        }
    }

    fn as_usize(&self) -> Result<usize, WireError> {
        usize::try_from(self.as_u64()?).map_err(|_| bad("integer exceeds usize"))
    }

    fn as_f64(&self) -> Result<f64, WireError> {
        match self {
            Json::Int(v) => Ok(*v as f64),
            Json::Num(v) => Ok(*v),
            _ => Err(bad("expected a number")),
        }
    }

    fn as_bool(&self) -> Result<bool, WireError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(bad("expected a boolean")),
        }
    }

    fn as_str(&self) -> Result<&str, WireError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(bad("expected a string")),
        }
    }

    fn as_arr(&self) -> Result<&[Json], WireError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(bad("expected an array")),
        }
    }
}

/// Shortest-round-trip float formatting: Rust's `{}` for f64 prints the
/// shortest decimal that parses back to the same bits, which is exactly
/// the fidelity the codec contract needs. (Non-finite values can't occur:
/// scores, weights, and parameters are finite by construction.)
fn write_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "non-finite f64 in JSON output");
    let _ = write!(out, "{v}");
    // "1" would re-parse as Int; that's fine — Int-vs-Num is a parsing
    // distinction, both re-read to the same f64 bits via as_f64().
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(bad(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, WireError> {
        if self.depth >= MAX_DEPTH {
            return Err(bad("nesting deeper than 64 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(bad(format!("unexpected byte {b:#04x} at {}", self.pos))),
            None => Err(bad("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(bad(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Json, WireError> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(bad(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
        self.depth -= 1;
        Ok(Json::Obj(members))
    }

    fn array(&mut self) -> Result<Json, WireError> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(bad(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
        self.depth -= 1;
        Ok(Json::Arr(items))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(bad("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| bad("bad \\u escape"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| bad("bad \\u escape"))?;
                            // Surrogates are not assembled — control
                            // characters are all this writer emits.
                            out.push(char::from_u32(code).ok_or_else(|| bad("bad \\u escape"))?);
                            self.pos += 4;
                        }
                        _ => return Err(bad(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input arrived as &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| bad("invalid UTF-8"))?;
                    // invariant: peek() returned Some, so rest is non-empty.
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(bad("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| bad("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| bad(format!("invalid number '{text}'")))
    }
}

// ---------------------------------------------------------------------------
// Domain encoding
// ---------------------------------------------------------------------------

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn query_to_json(q: &Query) -> Json {
    Json::Arr(
        q.iter()
            .map(|(n, w)| Json::Arr(vec![Json::Int(n.0 as u64), Json::Num(w)]))
            .collect(),
    )
}

fn query_from_json(v: &Json) -> Result<Query, WireError> {
    let mut pairs = Vec::new();
    for item in v.as_arr()? {
        let pair = item.as_arr()?;
        if pair.len() != 2 {
            return Err(bad("query pairs are [node, weight]"));
        }
        let node = u32::try_from(pair[0].as_u64()?).map_err(|_| bad("node id exceeds u32"))?;
        pairs.push((NodeId(node), pair[1].as_f64()?));
    }
    Query::from_normalized(&pairs).map_err(|e| bad(format!("invalid query: {e}")))
}

fn measure_to_json(m: Measure) -> Json {
    match m {
        Measure::F => Json::Str("f".into()),
        Measure::T => Json::Str("t".into()),
        Measure::Rtr => Json::Str("rtr".into()),
        Measure::RtrPlus { beta } => obj(vec![("rtr_plus", obj(vec![("beta", Json::Num(beta))]))]),
    }
}

fn measure_from_json(v: &Json) -> Result<Measure, WireError> {
    match v {
        Json::Str(s) => match s.as_str() {
            "f" => Ok(Measure::F),
            "t" => Ok(Measure::T),
            "rtr" => Ok(Measure::Rtr),
            other => Err(bad(format!("unknown measure '{other}'"))),
        },
        Json::Obj(_) => {
            let inner = v.require("rtr_plus")?;
            Ok(Measure::RtrPlus {
                beta: inner.require("beta")?.as_f64()?,
            })
        }
        _ => Err(bad("measure is a string or {\"rtr_plus\": {...}}")),
    }
}

fn params_to_json(p: &RankParams) -> Json {
    obj(vec![
        ("alpha", Json::Num(p.alpha)),
        ("tolerance", Json::Num(p.tolerance)),
        ("max_iterations", Json::Int(p.max_iterations as u64)),
    ])
}

fn params_from_json(v: &Json) -> Result<RankParams, WireError> {
    Ok(RankParams {
        alpha: v.require("alpha")?.as_f64()?,
        tolerance: v.require("tolerance")?.as_f64()?,
        max_iterations: v.require("max_iterations")?.as_usize()?,
    })
}

fn topk_to_json(t: &TopKConfig) -> Json {
    obj(vec![
        ("k", Json::Int(t.k as u64)),
        ("epsilon", Json::Num(t.epsilon)),
        ("m_f", Json::Int(t.m_f as u64)),
        ("m_t", Json::Int(t.m_t as u64)),
        ("refine_tolerance", Json::Num(t.refine_tolerance)),
        ("refine_max_sweeps", Json::Int(t.refine_max_sweeps as u64)),
        ("max_expansions", Json::Int(t.max_expansions as u64)),
    ])
}

fn topk_from_json(v: &Json) -> Result<TopKConfig, WireError> {
    Ok(TopKConfig {
        k: v.require("k")?.as_usize()?,
        epsilon: v.require("epsilon")?.as_f64()?,
        m_f: v.require("m_f")?.as_usize()?,
        m_t: v.require("m_t")?.as_usize()?,
        refine_tolerance: v.require("refine_tolerance")?.as_f64()?,
        refine_max_sweeps: v.require("refine_max_sweeps")?.as_usize()?,
        max_expansions: v.require("max_expansions")?.as_usize()?,
    })
}

fn scheme_slug(s: Scheme) -> &'static str {
    match s {
        Scheme::TwoSBound => "two_sbound",
        Scheme::GPlusS => "gplus_s",
        Scheme::Gupta => "gupta",
        Scheme::Sarkar => "sarkar",
    }
}

fn scheme_from_json(v: &Json) -> Result<Scheme, WireError> {
    match v.as_str()? {
        "two_sbound" => Ok(Scheme::TwoSBound),
        "gplus_s" => Ok(Scheme::GPlusS),
        "gupta" => Ok(Scheme::Gupta),
        "sarkar" => Ok(Scheme::Sarkar),
        other => Err(bad(format!("unknown scheme '{other}'"))),
    }
}

fn backend_slug(b: BackendKind) -> &'static str {
    match b {
        BackendKind::Local => "local",
        BackendKind::Distributed => "distributed",
    }
}

fn backend_from_json(v: &Json) -> Result<BackendKind, WireError> {
    match v.as_str()? {
        "local" => Ok(BackendKind::Local),
        "distributed" => Ok(BackendKind::Distributed),
        other => Err(bad(format!("unknown backend '{other}'"))),
    }
}

/// Render a request as the JSON payload shape (see the [module docs](self)).
pub fn request_to_json(request: &QueryRequest) -> String {
    let mut members = vec![
        ("query", query_to_json(request.query())),
        ("measure", measure_to_json(request.measure())),
    ];
    if let Some(k) = request.k() {
        members.push(("k", Json::Int(k as u64)));
    }
    if let Some(p) = request.params() {
        members.push(("params", params_to_json(&p)));
    }
    if let Some(t) = request.topk() {
        members.push(("topk", topk_to_json(&t)));
    }
    if let Some(s) = request.scheme() {
        members.push(("scheme", Json::Str(scheme_slug(s).into())));
    }
    if let Some(b) = request.backend() {
        members.push(("backend", Json::Str(backend_slug(b).into())));
    }
    obj(members).render()
}

/// Parse the JSON request shape.
pub fn request_from_json(text: &str) -> Result<QueryRequest, WireError> {
    let v = Json::parse(text)?;
    let mut request = QueryRequest::new(query_from_json(v.require("query")?)?)
        .with_measure(measure_from_json(v.require("measure")?)?);
    if let Some(k) = v.get("k") {
        request = request.with_k(k.as_usize()?);
    }
    if let Some(p) = v.get("params") {
        request = request.with_params(params_from_json(p)?);
    }
    if let Some(t) = v.get("topk") {
        request = request.with_topk(topk_from_json(t)?);
    }
    if let Some(s) = v.get("scheme") {
        request = request.with_scheme(scheme_from_json(s)?);
    }
    if let Some(b) = v.get("backend") {
        request = request.with_backend(backend_from_json(b)?);
    }
    Ok(request)
}

fn resolved_to_json(r: &ResolvedRequest) -> Json {
    obj(vec![
        ("query", query_to_json(&r.query)),
        ("measure", measure_to_json(r.measure)),
        ("params", params_to_json(&r.params)),
        ("topk", topk_to_json(&r.topk)),
        ("scheme", Json::Str(scheme_slug(r.scheme).into())),
        (
            "route",
            match r.route {
                None => Json::Null,
                Some(b) => Json::Str(backend_slug(b).into()),
            },
        ),
    ])
}

fn resolved_from_json(v: &Json) -> Result<ResolvedRequest, WireError> {
    Ok(ResolvedRequest {
        query: query_from_json(v.require("query")?)?,
        measure: measure_from_json(v.require("measure")?)?,
        params: params_from_json(v.require("params")?)?,
        topk: topk_from_json(v.require("topk")?)?,
        scheme: scheme_from_json(v.require("scheme")?)?,
        route: match v.get("route") {
            None => None,
            Some(b) => Some(backend_from_json(b)?),
        },
    })
}

fn result_to_json(t: &TopKResult) -> Json {
    obj(vec![
        (
            "ranking",
            Json::Arr(t.ranking.iter().map(|v| Json::Int(v.0 as u64)).collect()),
        ),
        (
            "bounds",
            Json::Arr(
                t.bounds
                    .iter()
                    .map(|&(lo, hi)| Json::Arr(vec![Json::Num(lo), Json::Num(hi)]))
                    .collect(),
            ),
        ),
        ("expansions", Json::Int(t.expansions as u64)),
        ("converged", Json::Bool(t.converged)),
        (
            "active",
            obj(vec![
                ("f_nodes", Json::Int(t.active.f_nodes as u64)),
                ("t_nodes", Json::Int(t.active.t_nodes as u64)),
                ("active_nodes", Json::Int(t.active.active_nodes as u64)),
                ("active_edges", Json::Int(t.active.active_edges as u64)),
                ("bytes", Json::Int(t.active.bytes as u64)),
            ]),
        ),
    ])
}

fn result_from_json(v: &Json) -> Result<TopKResult, WireError> {
    let ranking = v
        .require("ranking")?
        .as_arr()?
        .iter()
        .map(|n| {
            u32::try_from(n.as_u64()?)
                .map(NodeId)
                .map_err(|_| bad("node id exceeds u32"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let bounds = v
        .require("bounds")?
        .as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return Err(bad("bounds are [lower, upper] pairs"));
            }
            Ok((pair[0].as_f64()?, pair[1].as_f64()?))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let active = v.require("active")?;
    Ok(TopKResult {
        ranking,
        bounds,
        expansions: v.require("expansions")?.as_usize()?,
        converged: v.require("converged")?.as_bool()?,
        active: ActiveSetStats {
            f_nodes: active.require("f_nodes")?.as_usize()?,
            t_nodes: active.require("t_nodes")?.as_usize()?,
            active_nodes: active.require("active_nodes")?.as_usize()?,
            active_edges: active.require("active_edges")?.as_usize()?,
            bytes: active.require("bytes")?.as_usize()?,
        },
    })
}

fn serve_error_to_json(e: &ServeError) -> Json {
    match e {
        ServeError::Query(core) => {
            let mut members = vec![("kind", Json::Str("query".into()))];
            match core {
                CoreError::Adjacency(a) => {
                    // Folded like the binary codec: adjacency failures are
                    // backend-shaped.
                    return obj(vec![
                        ("kind", Json::Str("backend".into())),
                        ("message", Json::Str(a.to_string())),
                    ]);
                }
                CoreError::NodeOutOfRange { node, node_count } => {
                    members.push(("code", Json::Str("node_out_of_range".into())));
                    members.push(("node", Json::Int(node.0 as u64)));
                    members.push(("node_count", Json::Int(*node_count as u64)));
                }
                CoreError::EmptyQuery => members.push(("code", Json::Str("empty_query".into()))),
                CoreError::BadQueryWeights(msg) => {
                    members.push(("code", Json::Str("bad_query_weights".into())));
                    members.push(("message", Json::Str(msg.clone())));
                }
                CoreError::InvalidAlpha(a) => {
                    members.push(("code", Json::Str("invalid_alpha".into())));
                    members.push(("alpha", Json::Num(*a)));
                }
                CoreError::InvalidBeta(b) => {
                    members.push(("code", Json::Str("invalid_beta".into())));
                    members.push(("beta", Json::Num(*b)));
                }
                CoreError::NoConvergence {
                    iterations,
                    residual,
                } => {
                    members.push(("code", Json::Str("no_convergence".into())));
                    members.push(("iterations", Json::Int(*iterations as u64)));
                    members.push(("residual", Json::Num(*residual)));
                }
            }
            obj(members)
        }
        ServeError::Backend(msg) => obj(vec![
            ("kind", Json::Str("backend".into())),
            ("message", Json::Str(msg.clone())),
        ]),
        ServeError::Panicked(msg) => obj(vec![
            ("kind", Json::Str("panicked".into())),
            ("message", Json::Str(msg.clone())),
        ]),
    }
}

fn serve_error_from_json(v: &Json) -> Result<ServeError, WireError> {
    match v.require("kind")?.as_str()? {
        "backend" => Ok(ServeError::Backend(
            v.require("message")?.as_str()?.to_string(),
        )),
        "panicked" => Ok(ServeError::Panicked(
            v.require("message")?.as_str()?.to_string(),
        )),
        "query" => Ok(ServeError::Query(match v.require("code")?.as_str()? {
            "node_out_of_range" => CoreError::NodeOutOfRange {
                node: NodeId(
                    u32::try_from(v.require("node")?.as_u64()?)
                        .map_err(|_| bad("node id exceeds u32"))?,
                ),
                node_count: v.require("node_count")?.as_usize()?,
            },
            "empty_query" => CoreError::EmptyQuery,
            "bad_query_weights" => {
                CoreError::BadQueryWeights(v.require("message")?.as_str()?.to_string())
            }
            "invalid_alpha" => CoreError::InvalidAlpha(v.require("alpha")?.as_f64()?),
            "invalid_beta" => CoreError::InvalidBeta(v.require("beta")?.as_f64()?),
            "no_convergence" => CoreError::NoConvergence {
                iterations: v.require("iterations")?.as_usize()?,
                residual: v.require("residual")?.as_f64()?,
            },
            other => return Err(bad(format!("unknown query-error code '{other}'"))),
        })),
        other => Err(bad(format!("unknown error kind '{other}'"))),
    }
}

/// Render a response as the JSON payload shape: the binary codec's
/// fields, field for field (`trace` stays server-side, as in binary
/// mode).
pub fn response_to_json(response: &QueryResponse) -> String {
    obj(vec![
        ("id", Json::Int(response.id as u64)),
        ("request", resolved_to_json(&response.request)),
        (
            "result",
            match &response.result {
                Ok(r) => result_to_json(r),
                Err(e) => obj(vec![("error", serve_error_to_json(e))]),
            },
        ),
        ("backend", Json::Str(backend_slug(response.backend).into())),
        ("routed_fallback", Json::Bool(response.routed_fallback)),
        (
            "distributed",
            match &response.distributed {
                None => Json::Null,
                Some(d) => obj(vec![
                    ("fetch_requests", Json::Int(d.fetch_requests as u64)),
                    ("blocks_fetched", Json::Int(d.blocks_fetched as u64)),
                    ("blocks_prefetched", Json::Int(d.blocks_prefetched as u64)),
                    ("blocks_from_cache", Json::Int(d.blocks_from_cache as u64)),
                    ("bytes_transferred", Json::Int(d.bytes_transferred as u64)),
                    ("active_nodes", Json::Int(d.active_nodes as u64)),
                    ("active_edges", Json::Int(d.active_edges as u64)),
                    ("active_bytes", Json::Int(d.active_bytes as u64)),
                ]),
            },
        ),
        ("from_cache", Json::Bool(response.from_cache)),
        (
            "worker",
            match response.worker {
                None => Json::Null,
                Some(w) => Json::Int(w as u64),
            },
        ),
        (
            "queue_wait_ns",
            Json::Int(response.queue_wait.as_nanos() as u64),
        ),
        ("compute_ns", Json::Int(response.compute.as_nanos() as u64)),
    ])
    .render()
}

/// Parse the JSON response shape (the client side of JSON mode).
pub fn response_from_json(text: &str) -> Result<QueryResponse, WireError> {
    let v = Json::parse(text)?;
    let result_v = v.require("result")?;
    let result = match result_v.get("error") {
        Some(e) => Err(serve_error_from_json(e)?),
        None => Ok(Arc::new(result_from_json(result_v)?)),
    };
    Ok(QueryResponse {
        id: v.require("id")?.as_usize()?,
        request: resolved_from_json(v.require("request")?)?,
        result,
        backend: backend_from_json(v.require("backend")?)?,
        routed_fallback: v.require("routed_fallback")?.as_bool()?,
        distributed: match v.get("distributed") {
            None => None,
            Some(d) => Some(DistributedStats {
                fetch_requests: d.require("fetch_requests")?.as_usize()?,
                blocks_fetched: d.require("blocks_fetched")?.as_usize()?,
                blocks_prefetched: d.require("blocks_prefetched")?.as_usize()?,
                blocks_from_cache: d.require("blocks_from_cache")?.as_usize()?,
                bytes_transferred: d.require("bytes_transferred")?.as_usize()?,
                active_nodes: d.require("active_nodes")?.as_usize()?,
                active_edges: d.require("active_edges")?.as_usize()?,
                active_bytes: d.require("active_bytes")?.as_usize()?,
            }),
        },
        from_cache: v.require("from_cache")?.as_bool()?,
        worker: match v.get("worker") {
            None => None,
            Some(w) => Some(w.as_usize()?),
        },
        queue_wait: Duration::from_nanos(v.require("queue_wait_ns")?.as_u64()?),
        compute: Duration::from_nanos(v.require("compute_ns")?.as_u64()?),
        trace: None,
    })
}

/// Render a rejection as the JSON payload of an `Error` frame.
pub fn reject_to_json(reject: &Reject) -> String {
    let code = match reject.code {
        ErrorCode::Overloaded => "overloaded",
        ErrorCode::Malformed => "malformed",
        ErrorCode::UnsupportedVersion => "unsupported_version",
        ErrorCode::ShuttingDown => "shutting_down",
        ErrorCode::Internal => "internal",
    };
    obj(vec![
        ("code", Json::Str(code.into())),
        ("message", Json::Str(reject.message.clone())),
        ("retry_after_ms", Json::Int(reject.retry_after_ms)),
    ])
    .render()
}

/// Parse the JSON rejection shape.
pub fn reject_from_json(text: &str) -> Result<Reject, WireError> {
    let v = Json::parse(text)?;
    let code = match v.require("code")?.as_str()? {
        "overloaded" => ErrorCode::Overloaded,
        "malformed" => ErrorCode::Malformed,
        "unsupported_version" => ErrorCode::UnsupportedVersion,
        "shutting_down" => ErrorCode::ShuttingDown,
        "internal" => ErrorCode::Internal,
        other => return Err(bad(format!("unknown error code '{other}'"))),
    };
    Ok(Reject {
        code,
        message: v.require("message")?.as_str()?.to_string(),
        retry_after_ms: v.require("retry_after_ms")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_serve::{run_serial_requests, ServeConfig};

    #[test]
    fn json_value_round_trip() {
        let text = r#"{"a":[1,2.5,-3.25,"x\n\"y\"",true,null],"b":{"c":[]},"d":1e-3}"#;
        let v = Json::parse(text).unwrap();
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn parser_rejects_garbage_without_panicking() {
        for bad_text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"\\q\"",
            "{\"a\":1}x",
            "01a",
            "--5",
            "\u{7f}",
            "[\"\\u00\"]",
        ] {
            assert!(Json::parse(bad_text).is_err(), "{bad_text:?} parsed");
        }
        // Nesting bomb: rejected at MAX_DEPTH, not a stack overflow.
        let deep = "[".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn request_json_round_trip_is_exact() {
        for request in crate::codec::tests_support::sample_requests() {
            let text = request_to_json(&request);
            let back = request_from_json(&text).unwrap();
            assert_eq!(back, request, "JSON drift for {text}");
        }
    }

    #[test]
    fn response_json_round_trip_is_exact() {
        let (g, _) = rtr_graph::toy::fig2_toy();
        let cfg = ServeConfig::default().with_topk(TopKConfig::toy());
        let requests = crate::codec::tests_support::sample_requests();
        for response in run_serial_requests(&g, &cfg, &requests) {
            let text = response_to_json(&response);
            let back = response_from_json(&text).unwrap();
            assert_eq!(back.request, response.request);
            let (b, r) = (back.result.unwrap(), response.result.unwrap());
            assert_eq!(b.ranking, r.ranking);
            assert_eq!(b.bounds, r.bounds, "f64 bounds survive JSON bit for bit");
            assert_eq!(back.queue_wait, response.queue_wait);
        }
    }

    #[test]
    fn reject_json_round_trip() {
        let reject = Reject {
            code: ErrorCode::ShuttingDown,
            message: "draining".into(),
            retry_after_ms: 0,
        };
        assert_eq!(reject_from_json(&reject_to_json(&reject)).unwrap(), reject);
    }

    #[test]
    fn weights_survive_json_exactly() {
        // 1/3 has no finite decimal expansion; shortest-round-trip
        // printing must still reproduce the bits.
        let q = Query::uniform(&[NodeId(0), NodeId(1), NodeId(2)]);
        let request = QueryRequest::new(q);
        let back = request_from_json(&request_to_json(&request)).unwrap();
        assert_eq!(back.query().weights(), request.query().weights());
    }
}
