//! The network front door: a threaded TCP server over [`ServeEngine`].
//!
//! There is no async runtime in this workspace (the build is offline and
//! vendored — no tokio), and none is needed: the engine already has a
//! non-blocking submission API. Each connection gets two cheap threads —
//!
//! * a **reader** that decodes frames, runs admission control, and calls
//!   [`ServeEngine::submit`] — which returns a ticket immediately, so the
//!   reader keeps decoding while the engine's worker pool computes;
//! * a **writer** that pops the connection's bounded `WriteQueue` in
//!   request order, waits each ticket, and writes response frames.
//!
//! The split is what keeps a slow client harmless: engine workers never
//! write to sockets, the writer is the only thread that can stall on a
//! dead peer, and when its queue fills, new requests get typed
//! `Overloaded` rejections *before* touching the engine.
//!
//! The acceptor thread polls a non-blocking listener so shutdown never
//! hangs in `accept()`. [`NetServer::shutdown`] flips one flag; readers
//! notice within one read-timeout tick, stop accepting work, queue a
//! `Goodbye`, and close their queues; writers drain every accepted
//! ticket before exiting; the acceptor joins everything. No accepted
//! request is dropped — `tests/tests/net_e2e.rs` asserts exactly that.

use crate::admission::{Admission, AdmissionConfig, AdmissionDecision};
use crate::codec::{encode_reject, encode_response, ErrorCode, Reject};
use crate::frame::{Frame, FrameType, WireError, MAX_PAYLOAD};
use crate::json;
use crate::{PopOutcome, PushOutcome, WriteQueue};
use bytes::{Bytes, BytesMut};
use rtr_obs::{Counter, Gauge};
use rtr_serve::{QueryTicket, ServeEngine};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`NetServer`]. `Default` binds an ephemeral loopback
/// port with admission disabled — the configuration the tests and the
/// load generator start from.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Address to bind. Port 0 picks an ephemeral port (read it back
    /// with [`NetServer::local_addr`]).
    pub addr: SocketAddr,
    /// Concurrent-connection cap; connections beyond it are greeted with
    /// an `Overloaded` error frame and closed.
    pub max_connections: usize,
    /// Per-connection write-queue depth (responses in flight to one
    /// client). The backpressure bound.
    pub write_queue_depth: usize,
    /// Reserved write-queue slots for rejections/control frames. A
    /// client that overruns even this lane (it keeps flooding after
    /// `write_queue_depth + control_queue_depth` unanswered frames) is
    /// disconnected: the server never drops a reply silently and never
    /// buffers without bound.
    pub control_queue_depth: usize,
    /// Per-tenant token-bucket admission policy.
    pub admission: AdmissionConfig,
    /// Largest accepted request payload in bytes (clamped to
    /// [`MAX_PAYLOAD`]).
    pub max_payload: usize,
    /// Reader poll interval: how long a blocked `read` waits before
    /// re-checking the shutdown flag. Bounds shutdown latency.
    pub read_poll: Duration,
    /// Socket write timeout; a peer that stays unwritable this long is
    /// treated as dead.
    pub write_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            // invariant: a literal loopback address always parses.
            addr: "127.0.0.1:0".parse().expect("loopback literal"),
            max_connections: 64,
            write_queue_depth: 128,
            control_queue_depth: 16,
            admission: AdmissionConfig::unlimited(),
            max_payload: MAX_PAYLOAD,
            read_poll: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
        }
    }
}

impl NetServerConfig {
    /// Set the bind address.
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Set the concurrent-connection cap.
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Set the write-queue depths (data lane, reserved control lane).
    pub fn with_queue_depths(mut self, data: usize, control: usize) -> Self {
        self.write_queue_depth = data;
        self.control_queue_depth = control;
        self
    }

    /// Set the admission policy.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }
}

/// Connection/frame/rejection counters, registered in the engine's
/// metrics [`rtr_obs::Registry`] so the net layer shows up in the same
/// Prometheus text as everything else.
struct NetMetrics {
    connections_opened: Arc<Counter>,
    connections_open: Arc<Gauge>,
    frames_received: Arc<Counter>,
    frames_sent: Arc<Counter>,
    requests_admitted: Arc<Counter>,
    reject_rate_limit: Arc<Counter>,
    reject_backpressure: Arc<Counter>,
    reject_malformed: Arc<Counter>,
    reject_shutdown: Arc<Counter>,
    reject_capacity: Arc<Counter>,
}

impl NetMetrics {
    fn register(engine: &ServeEngine) -> NetMetrics {
        let reg = engine.metrics_registry();
        let reject = |reason: &str| {
            reg.counter_with(
                "rtr_net_rejects_total",
                &[("reason", reason)],
                "Requests rejected by the network front door, by reason.",
            )
        };
        NetMetrics {
            connections_opened: reg.counter(
                "rtr_net_connections_opened_total",
                "TCP connections accepted by the net server.",
            ),
            connections_open: reg.gauge(
                "rtr_net_connections_open",
                "TCP connections currently being served.",
            ),
            frames_received: reg.counter(
                "rtr_net_frames_received_total",
                "Frames decoded from clients.",
            ),
            frames_sent: reg.counter("rtr_net_frames_sent_total", "Frames written to clients."),
            requests_admitted: reg.counter(
                "rtr_net_requests_admitted_total",
                "Requests admitted past rate limiting and backpressure.",
            ),
            reject_rate_limit: reject("rate_limit"),
            reject_backpressure: reject("backpressure"),
            reject_malformed: reject("malformed"),
            reject_shutdown: reject("shutting_down"),
            reject_capacity: reject("capacity"),
        }
    }
}

/// State shared by the acceptor and every connection thread.
struct Shared {
    engine: Arc<ServeEngine>,
    config: NetServerConfig,
    admission: Admission,
    shutdown: AtomicBool,
    started: Instant,
    metrics: NetMetrics,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn shutting_down(&self) -> bool {
        // ordering: Relaxed suffices — the flag is a latch polled in a
        // loop; no data is published under it.
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// What a connection's reader hands its writer. Tickets carry the
/// engine's promise of a response; everything else is pre-rendered.
enum WriteItem {
    /// An admitted request: wait the ticket, encode, send `Response`.
    Ticket {
        ticket: QueryTicket,
        tenant: u32,
        request_id: u64,
        json: bool,
    },
    /// A typed rejection (`Error` frame).
    Reject {
        reject: Reject,
        tenant: u32,
        request_id: u64,
        json: bool,
    },
    /// Reply to a `Ping`.
    Pong { tenant: u32, request_id: u64 },
    /// Prometheus text for a `MetricsRequest`.
    Metrics {
        text: String,
        tenant: u32,
        request_id: u64,
    },
    /// Farewell before the server closes the connection.
    Goodbye,
}

/// A running network front door. Dropping it shuts it down; prefer the
/// explicit [`NetServer::shutdown`] in non-test code.
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `config.addr` and start serving `engine`. The engine stays
    /// caller-owned: shutting the server down does not shut the engine
    /// down.
    pub fn start(engine: Arc<ServeEngine>, config: NetServerConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = NetMetrics::register(&engine);
        let shared = Arc::new(Shared {
            admission: Admission::new(config.admission.clone()),
            engine,
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            metrics,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rtr-net-acceptor".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        Ok(NetServer {
            local_addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (the real port when `addr` used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting connections and new requests,
    /// drain every already-accepted request through its write queue,
    /// send each connection a `Goodbye`, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // ordering: Relaxed — latch only; readers/acceptor poll it.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            // invariant: the acceptor never panics (all I/O errors are
            // handled); a join failure would be a server bug.
            acceptor.join().expect("acceptor panicked");
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections.retain(|h| !h.is_finished());
                if connections.len() >= shared.config.max_connections {
                    shared.metrics.reject_capacity.inc();
                    refuse_connection(stream);
                    continue;
                }
                shared.metrics.connections_opened.inc();
                shared.metrics.connections_open.add(1);
                let for_conn = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("rtr-net-conn".into())
                    .spawn(move || {
                        run_connection(&for_conn, stream);
                        for_conn.metrics.connections_open.add(-1);
                    });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(_) => shared.metrics.connections_open.add(-1),
                }
            }
            // WouldBlock is the idle case; other errors (EMFILE, peer
            // reset mid-accept) are transient — retry after the nap.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for handle in connections {
        // invariant: connection threads never panic; they report errors
        // by closing the connection.
        handle.join().expect("connection thread panicked");
    }
}

/// Over the connection cap: say why, then hang up.
fn refuse_connection(mut stream: TcpStream) {
    let reject = Reject {
        code: ErrorCode::Overloaded,
        message: "connection limit reached".into(),
        retry_after_ms: 100,
    };
    let mut payload = BytesMut::new();
    encode_reject(&reject, &mut payload);
    let frame = Frame {
        frame_type: FrameType::Error,
        json: false,
        tenant: 0,
        request_id: 0,
        payload: payload.freeze(),
    };
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(frame.to_bytes().as_slice());
    let _ = stream.shutdown(Shutdown::Both);
}

fn run_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let config = &shared.config;
    if stream.set_read_timeout(Some(config.read_poll)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let queue = Arc::new(WriteQueue::new(
        config.write_queue_depth,
        config.control_queue_depth,
    ));
    let writer = {
        let shared = Arc::clone(shared);
        let queue = Arc::clone(&queue);
        std::thread::Builder::new()
            .name("rtr-net-writer".into())
            .spawn(move || write_loop(&shared, write_half, &queue))
    };
    let Ok(writer) = writer else {
        return;
    };
    read_loop(shared, &mut stream, &queue);
    // Best-effort farewell, then release the writer. If even the control
    // lane is full the client just sees EOF — Goodbye is advisory.
    let _ = queue.push_control(WriteItem::Goodbye);
    queue.close();
    // invariant: the writer thread never panics.
    writer.join().expect("writer thread panicked");
    linger_drain(&mut stream);
}

/// Bounded lingering close. The reader can quit with client bytes still
/// unread in the kernel buffer (disconnect-on-overrun, a fatal framing
/// error) — closing the socket then would RST the connection, and an RST
/// discards the very replies the writer just flushed before the client
/// can read them. The writer has already sent FIN (`shutdown(Write)`
/// after the drain); here we discard remaining input until the client
/// reacts to that FIN with EOF, or the linger budget runs out.
fn linger_drain(stream: &mut TcpStream) {
    const LINGER: Duration = Duration::from_secs(1);
    let start = Instant::now();
    let mut scratch = [0u8; 64 * 1024];
    while start.elapsed() < LINGER {
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(_) => {}
            // The read timeout set at accept keeps this loop polling the
            // linger budget instead of blocking past it.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

fn read_loop(shared: &Arc<Shared>, stream: &mut TcpStream, queue: &WriteQueue<WriteItem>) {
    let max_payload = shared.config.max_payload;
    let mut buffered: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        // Drain every complete frame already buffered.
        loop {
            match Frame::parse(&buffered, max_payload) {
                Ok((frame, consumed)) => {
                    buffered.drain(..consumed);
                    shared.metrics.frames_received.inc();
                    if !handle_frame(shared, queue, frame) {
                        return;
                    }
                }
                // Truncated is the streaming "need more bytes" signal.
                Err(WireError::Truncated { .. }) => break,
                Err(fatal) => {
                    // Framing is lost — reject and hang up; resyncing an
                    // unframed byte stream is guesswork.
                    shared.metrics.reject_malformed.inc();
                    let _ = queue.push_control(WriteItem::Reject {
                        reject: Reject {
                            code: reject_code_for(&fatal),
                            message: fatal.to_string(),
                            retry_after_ms: 0,
                        },
                        tenant: 0,
                        request_id: 0,
                        json: false,
                    });
                    return;
                }
            }
        }
        if shared.shutting_down() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF: client hung up.
            Ok(n) => buffered.extend_from_slice(&chunk[..n]),
            // The read timeout is the shutdown-poll tick.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

fn reject_code_for(error: &WireError) -> ErrorCode {
    match error {
        WireError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
        _ => ErrorCode::Malformed,
    }
}

/// Queue a reply on the reserved control lane; `false` ends the
/// connection. A full control lane means the server cannot even *report*
/// errors to this client anymore — the bounded-memory answer is to hang
/// up (the drain still delivers everything previously accepted), not to
/// drop replies silently (the client would wait forever) or buffer
/// without bound (the thing the queue exists to prevent).
fn push_reply(queue: &WriteQueue<WriteItem>, item: WriteItem) -> bool {
    matches!(queue.push_control(item), PushOutcome::Pushed)
}

/// Dispatch one decoded frame; `false` ends the connection.
fn handle_frame(shared: &Arc<Shared>, queue: &WriteQueue<WriteItem>, frame: Frame) -> bool {
    let (tenant, request_id, json) = (frame.tenant, frame.request_id, frame.json);
    let reject = |code: ErrorCode, message: String, retry_after_ms: u64| WriteItem::Reject {
        reject: Reject {
            code,
            message,
            retry_after_ms,
        },
        tenant,
        request_id,
        json,
    };
    match frame.frame_type {
        FrameType::Request => {
            if shared.shutting_down() {
                shared.metrics.reject_shutdown.inc();
                return push_reply(
                    queue,
                    reject(ErrorCode::ShuttingDown, "server is draining".into(), 1_000),
                );
            }
            match shared.admission.admit_at(tenant, shared.now_ns()) {
                AdmissionDecision::Admit => {}
                AdmissionDecision::Reject { retry_after_ms } => {
                    shared.metrics.reject_rate_limit.inc();
                    return push_reply(
                        queue,
                        reject(
                            ErrorCode::Overloaded,
                            format!("tenant {tenant} over rate limit"),
                            retry_after_ms,
                        ),
                    );
                }
            }
            // Backpressure check BEFORE decode/submit: the reader is the
            // queue's only producer, so this is a guarantee, not a race,
            // and a stalled client costs zero engine work.
            if !queue.has_data_capacity() {
                shared.metrics.reject_backpressure.inc();
                return push_reply(
                    queue,
                    reject(
                        ErrorCode::Overloaded,
                        "write queue full (slow client)".into(),
                        50,
                    ),
                );
            }
            let decoded = if json {
                match std::str::from_utf8(frame.payload.as_slice()) {
                    Ok(text) => json::request_from_json(text),
                    Err(_) => Err(WireError::BadJson("payload is not UTF-8".into())),
                }
            } else {
                crate::codec::decode_request(frame.payload.as_slice())
            };
            let request = match decoded {
                Ok(request) => request,
                Err(e) => {
                    // Payload-level garbage doesn't lose framing; the
                    // connection survives.
                    shared.metrics.reject_malformed.inc();
                    return push_reply(queue, reject(ErrorCode::Malformed, e.to_string(), 0));
                }
            };
            let ticket = shared.engine.submit(request);
            shared.metrics.requests_admitted.inc();
            match queue.push_data(WriteItem::Ticket {
                ticket,
                tenant,
                request_id,
                json,
            }) {
                PushOutcome::Pushed => true,
                // has_data_capacity() held and we are the only producer,
                // but stay total anyway: surface it as backpressure.
                PushOutcome::Rejected => {
                    shared.metrics.reject_backpressure.inc();
                    push_reply(
                        queue,
                        reject(
                            ErrorCode::Overloaded,
                            "write queue full (slow client)".into(),
                            50,
                        ),
                    )
                }
                PushOutcome::Closed => false,
            }
        }
        FrameType::Ping => push_reply(queue, WriteItem::Pong { tenant, request_id }),
        FrameType::MetricsRequest => {
            let text = shared.engine.metrics_snapshot().to_prometheus();
            push_reply(
                queue,
                WriteItem::Metrics {
                    text,
                    tenant,
                    request_id,
                },
            )
        }
        FrameType::Goodbye => false,
        // Server-to-client frame types arriving at the server are a
        // protocol violation.
        FrameType::Response | FrameType::Error | FrameType::Pong | FrameType::MetricsResponse => {
            shared.metrics.reject_malformed.inc();
            let _ = queue.push_control(reject(
                ErrorCode::Malformed,
                format!("unexpected frame type {:?}", frame.frame_type),
                0,
            ));
            false
        }
    }
}

fn write_loop(shared: &Arc<Shared>, mut stream: TcpStream, queue: &WriteQueue<WriteItem>) {
    // Once the peer is unwritable we stop writing but keep draining: every
    // accepted ticket is still waited so engine work completes and the
    // drain invariant ("queue empties, then the writer exits") holds no
    // matter what the client does.
    let mut peer_dead = false;
    loop {
        let item = match queue.pop() {
            PopOutcome::Item(item) => item,
            PopOutcome::Drained => break,
        };
        let frame = match item {
            WriteItem::Ticket {
                ticket,
                tenant,
                request_id,
                json,
            } => {
                let response = ticket.wait();
                if peer_dead {
                    continue;
                }
                let payload = if json {
                    Bytes::from(json::response_to_json(&response).into_bytes())
                } else {
                    let mut buf = BytesMut::new();
                    encode_response(&response, &mut buf);
                    buf.freeze()
                };
                Frame {
                    frame_type: FrameType::Response,
                    json,
                    tenant,
                    request_id,
                    payload,
                }
            }
            WriteItem::Reject {
                reject,
                tenant,
                request_id,
                json,
            } => {
                if peer_dead {
                    continue;
                }
                let payload = if json {
                    Bytes::from(json::reject_to_json(&reject).into_bytes())
                } else {
                    let mut buf = BytesMut::new();
                    encode_reject(&reject, &mut buf);
                    buf.freeze()
                };
                Frame {
                    frame_type: FrameType::Error,
                    json,
                    tenant,
                    request_id,
                    payload,
                }
            }
            WriteItem::Pong { tenant, request_id } => {
                if peer_dead {
                    continue;
                }
                Frame::control(FrameType::Pong, tenant, request_id)
            }
            WriteItem::Metrics {
                text,
                tenant,
                request_id,
            } => {
                if peer_dead {
                    continue;
                }
                Frame {
                    frame_type: FrameType::MetricsResponse,
                    json: false,
                    tenant,
                    request_id,
                    payload: Bytes::from(text.into_bytes()),
                }
            }
            WriteItem::Goodbye => {
                if peer_dead {
                    continue;
                }
                Frame::control(FrameType::Goodbye, 0, 0)
            }
        };
        if stream.write_all(frame.to_bytes().as_slice()).is_ok() {
            shared.metrics.frames_sent.inc();
        } else {
            // Write timeout or reset: the peer is gone (or too slow for
            // the configured SLO). Stop writing, keep draining.
            peer_dead = true;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}
