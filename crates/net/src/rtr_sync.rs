//! Synchronization-primitive facade for this crate's modeled concurrency
//! protocol (the bounded connection write queue).
//!
//! Production builds (`rtr_check` off, the default and the only
//! configuration tier-1 ever builds) re-export plain `std::sync` — zero
//! overhead, byte-identical behavior. Under the `rtr_check` feature the
//! same names resolve to `loom_shim`'s instrumented types, so `rtr-check`
//! model suites can exhaustively explore every interleaving of the
//! write-queue backpressure and shutdown-drain protocols. Code in this
//! crate imports sync primitives from here, never from `std::sync`
//! directly (the modeled module is `queue`; `server` uses real threads
//! and sockets and is exercised end-to-end instead).

#[cfg(feature = "rtr_check")]
pub(crate) use loom_shim::sync::{Condvar, Mutex};
#[cfg(not(feature = "rtr_check"))]
pub(crate) use std::sync::{Condvar, Mutex};
