//! Bounded per-connection write queue with a reserved control lane.
//!
//! Every connection owns one [`WriteQueue`]: the reader thread pushes
//! pending-response tickets (and control frames) in request order, the
//! writer thread pops them, waits for the engine, and writes to the
//! socket. The queue is the backpressure point of the whole front door:
//!
//! * The **data lane** is bounded. When a client stops reading its
//!   socket, the writer stalls, the queue fills, and further requests are
//!   refused with [`PushOutcome::Rejected`] — which the reader turns into
//!   a typed `Overloaded` error frame. Memory per connection is capped;
//!   engine workers are never held hostage by a slow client.
//! * The **control lane** is reserved capacity on top of the data bound,
//!   so that the `Overloaded` rejection itself (and the shutdown
//!   `Goodbye`) can still be queued when the data lane is full — the
//!   error path must not deadlock on the condition it reports.
//! * [`WriteQueue::close`] is the shutdown-drain half: pushes are refused
//!   with [`PushOutcome::Closed`], but everything already accepted is
//!   still handed to the writer in order before [`PopOutcome::Drained`]
//!   is returned. An accepted request is therefore never dropped by
//!   shutdown.
//!
//! Sync primitives come from the [`crate::rtr_sync`] facade, so the
//! `rtr-check` model suite explores this exact code (no lost wakeup,
//! no dropped entry, drain termination) under the loom shim while
//! production builds get plain `std::sync`.

use crate::rtr_sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// Result of pushing onto a [`WriteQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Entry accepted; the writer will eventually pop it.
    Pushed,
    /// The lane is at capacity — backpressure. The entry was NOT
    /// enqueued; the caller owes the client an `Overloaded` rejection
    /// (through the control lane, which has its own reserve).
    Rejected,
    /// The queue was closed; no new entries are accepted.
    Closed,
}

/// Result of popping from a [`WriteQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopOutcome<T> {
    /// The next entry, FIFO across both lanes.
    Item(T),
    /// The queue is closed and fully drained; the writer can exit.
    Drained,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Lane {
    Data,
    Control,
}

struct State<T> {
    /// FIFO across both lanes; each entry remembers which lane's
    /// capacity it occupies.
    entries: VecDeque<(Lane, T)>,
    data_len: usize,
    control_len: usize,
    closed: bool,
}

/// The bounded two-lane FIFO described in the module docs above.
pub struct WriteQueue<T> {
    data_capacity: usize,
    control_capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> WriteQueue<T> {
    /// Queue with `data_capacity` slots for responses and
    /// `control_capacity` reserved slots for rejections/control frames.
    /// Capacities below 1 are raised to 1 — a zero-capacity lane would
    /// reject its own error reporting.
    pub fn new(data_capacity: usize, control_capacity: usize) -> Self {
        WriteQueue {
            data_capacity: data_capacity.max(1),
            control_capacity: control_capacity.max(1),
            state: Mutex::new(State {
                entries: VecDeque::new(),
                data_len: 0,
                control_len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, item: T, lane: Lane) -> PushOutcome {
        // invariant: queue mutex is never poisoned — no user code runs
        // inside the critical section.
        let mut state = self.state.lock().expect("write-queue mutex poisoned");
        if state.closed {
            return PushOutcome::Closed;
        }
        let (len, cap) = match lane {
            Lane::Data => (state.data_len, self.data_capacity),
            Lane::Control => (state.control_len, self.control_capacity),
        };
        if len >= cap {
            return PushOutcome::Rejected;
        }
        match lane {
            Lane::Data => state.data_len += 1,
            Lane::Control => state.control_len += 1,
        }
        state.entries.push_back((lane, item));
        drop(state);
        // Wake the writer after releasing the lock; one entry, one
        // wakeup. The pop loop re-checks emptiness under the lock, so a
        // wakeup can never be lost (model-checked in rtr-check).
        self.ready.notify_one();
        PushOutcome::Pushed
    }

    /// Push a response entry through the bounded data lane.
    pub fn push_data(&self, item: T) -> PushOutcome {
        self.push(item, Lane::Data)
    }

    /// Push a rejection/control entry through the reserved control lane.
    pub fn push_control(&self, item: T) -> PushOutcome {
        self.push(item, Lane::Control)
    }

    /// Block until an entry is available or the queue is closed and
    /// empty. FIFO across both lanes — responses stay in request order.
    pub fn pop(&self) -> PopOutcome<T> {
        // invariant: queue mutex is never poisoned — no user code runs
        // inside the critical section.
        let mut state = self.state.lock().expect("write-queue mutex poisoned");
        loop {
            if let Some((lane, item)) = state.entries.pop_front() {
                match lane {
                    Lane::Data => state.data_len -= 1,
                    Lane::Control => state.control_len -= 1,
                }
                return PopOutcome::Item(item);
            }
            if state.closed {
                return PopOutcome::Drained;
            }
            // invariant: condvar never poisoned — no panics under the lock.
            state = self
                .ready
                .wait(state)
                .expect("write-queue condvar poisoned");
        }
    }

    /// Close the queue: all future pushes return [`PushOutcome::Closed`];
    /// the writer drains remaining entries, then sees
    /// [`PopOutcome::Drained`]. Idempotent.
    pub fn close(&self) {
        // invariant: queue mutex is never poisoned — no user code runs
        // inside the critical section.
        let mut state = self.state.lock().expect("write-queue mutex poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Whether the data lane has room for one more entry right now.
    ///
    /// The reader thread is a queue's only producer, so for it this is
    /// not racy: a `true` answer guarantees the next [`push_data`]
    /// succeeds (pops only free capacity). The server checks this
    /// *before* submitting to the engine, so a backpressured request is
    /// rejected without burning engine work.
    ///
    /// [`push_data`]: WriteQueue::push_data
    pub fn has_data_capacity(&self) -> bool {
        // invariant: queue mutex is never poisoned — no user code runs
        // inside the critical section.
        let state = self.state.lock().expect("write-queue mutex poisoned");
        !state.closed && state.data_len < self.data_capacity
    }

    /// Entries currently queued (both lanes); a metrics/test hook.
    #[cfg_attr(not(any(test, feature = "rtr_check")), allow(dead_code))]
    pub fn len(&self) -> usize {
        // invariant: queue mutex is never poisoned — no user code runs
        // inside the critical section.
        let state = self.state.lock().expect("write-queue mutex poisoned");
        state.entries.len()
    }

    /// True when nothing is queued. (Clippy insists `len` implies this.)
    #[cfg_attr(not(any(test, feature = "rtr_check")), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(feature = "rtr_check")))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_across_lanes_and_capacity_per_lane() {
        let q = WriteQueue::new(2, 1);
        assert_eq!(q.push_data(1), PushOutcome::Pushed);
        assert_eq!(q.push_data(2), PushOutcome::Pushed);
        // Data lane full; control lane still has its reserve.
        assert_eq!(q.push_data(3), PushOutcome::Rejected);
        assert_eq!(q.push_control(90), PushOutcome::Pushed);
        assert_eq!(q.push_control(91), PushOutcome::Rejected);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        // FIFO across both lanes.
        assert_eq!(q.pop(), PopOutcome::Item(1));
        // Popping frees data capacity again.
        assert_eq!(q.push_data(4), PushOutcome::Pushed);
        assert_eq!(q.pop(), PopOutcome::Item(2));
        assert_eq!(q.pop(), PopOutcome::Item(90));
        assert_eq!(q.pop(), PopOutcome::Item(4));
    }

    #[test]
    fn close_drains_then_terminates() {
        let q = WriteQueue::new(4, 1);
        q.push_data(1);
        q.push_data(2);
        q.close();
        assert_eq!(q.push_data(3), PushOutcome::Closed);
        assert_eq!(q.pop(), PopOutcome::Item(1));
        assert_eq!(q.pop(), PopOutcome::Item(2));
        assert_eq!(q.pop(), PopOutcome::Drained);
        // Drained is sticky.
        assert_eq!(q.pop(), PopOutcome::Drained);
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        let q = Arc::new(WriteQueue::new(128, 1));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match q.pop() {
                        PopOutcome::Item(v) => seen.push(v),
                        PopOutcome::Drained => return seen,
                    }
                }
            })
        };
        for i in 0..100u64 {
            assert_eq!(q.push_data(i), PushOutcome::Pushed, "push {i}");
            if i % 7 == 0 {
                std::thread::yield_now();
            }
        }
        q.close();
        // invariant: popper thread cannot panic.
        let seen = popper.join().expect("popper panicked");
        assert_eq!(seen, (0..100u64).collect::<Vec<_>>());
    }
}
