//! Binary payload codec: [`QueryRequest`] / [`QueryResponse`] / [`Reject`]
//! in the workspace's little-endian `bytes` idiom.
//!
//! The codec is **value-exact**: `decode(encode(x))` reproduces `x` bit
//! for bit — including f64 query weights and bound values, which is what
//! lets the e2e suite assert that responses served over a socket are
//! bit-identical to [`rtr_serve::run_serial_requests`]. (Query weights
//! are reconstructed with [`Query::from_normalized`], which never
//! re-normalizes; [`rtr_serve::QueryResponse::trace`] is the one field
//! deliberately not carried — traces are a debugging instrument, not part
//! of the answer, and decoded responses carry `None`.)
//!
//! Decoding is total: every read is bounds-checked (`Reader`), every
//! enum tag and flag byte is validated, list lengths are checked against
//! the bytes actually present *before* any buffer is sized from them, and
//! trailing bytes are rejected. Malformed input yields a typed
//! [`WireError`], never a panic or an oversized allocation.

use crate::frame::WireError;
use bytes::{BufMut, BytesMut};
use rtr_core::{CoreError, Measure, Query, RankParams};
use rtr_distributed::DistributedStats;
use rtr_graph::NodeId;
use rtr_serve::{BackendKind, QueryRequest, QueryResponse, ResolvedRequest, ServeError};
use rtr_topk::{ActiveSetStats, Scheme, TopKConfig, TopKResult};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Why the server refused a request without running it. The discriminant
/// is the on-wire code byte of an `Error` frame's payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// Backpressure: the tenant exceeded its token-bucket rate, or the
    /// connection's bounded write queue is full (the message says which).
    /// Retry after the hinted delay; the request was never admitted.
    Overloaded = 1,
    /// The frame or payload failed to decode; the message carries the
    /// [`WireError`] rendering.
    Malformed = 2,
    /// The frame's version byte is a revision this server does not speak.
    UnsupportedVersion = 3,
    /// The server is draining for shutdown and admits no new requests
    /// (already-accepted requests still complete).
    ShuttingDown = 4,
    /// The server failed internally before the engine produced a
    /// response (should not happen; the message is diagnostic).
    Internal = 5,
}

impl ErrorCode {
    fn from_wire(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::UnsupportedVersion,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A typed rejection: the payload of an `Error` frame. The request id of
/// the enclosing frame says which request was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reject {
    /// Why the request was refused.
    pub code: ErrorCode,
    /// Human-readable detail (safe to log; never echoes payload bytes).
    pub message: String,
    /// Backpressure hint: retry no sooner than this (0 = no hint).
    pub retry_after_ms: u64,
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)?;
        if self.retry_after_ms > 0 {
            write!(f, " (retry after {} ms)", self.retry_after_ms)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Checked reader
// ---------------------------------------------------------------------------

/// Bounds-checked cursor: the decode-side counterpart of [`BufMut`]. The
/// `bytes` shim's `Buf` panics on underflow (correct for trusted,
/// length-prefixed graph snapshots); wire input is untrusted, so every
/// read here returns [`WireError::Truncated`] instead.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                available: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize64(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::Malformed("u64 count exceeds usize".into()))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!(
                "flag byte must be 0/1, got {b}"
            ))),
        }
    }

    /// A `u32` element count, validated against the bytes still present
    /// (each element occupies at least `min_elem_bytes`), so a hostile
    /// count can never size an allocation beyond the payload itself.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(WireError::Malformed(format!(
                "declared {n} elements need ≥{floor} bytes, only {} remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn put_string(out: &mut BytesMut, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Shared pieces
// ---------------------------------------------------------------------------

fn put_query(out: &mut BytesMut, q: &Query) {
    out.put_u32_le(q.len() as u32);
    for (n, w) in q.iter() {
        out.put_u32_le(n.0);
        out.put_f64_le(w);
    }
}

fn get_query(r: &mut Reader<'_>) -> Result<Query, WireError> {
    let n = r.len(12)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let node = NodeId(r.u32()?);
        let w = r.f64()?;
        pairs.push((node, w));
    }
    Query::from_normalized(&pairs).map_err(|e| WireError::Malformed(format!("invalid query: {e}")))
}

fn put_measure(out: &mut BytesMut, m: Measure) {
    match m {
        Measure::F => out.put_u8(0),
        Measure::T => out.put_u8(1),
        Measure::Rtr => out.put_u8(2),
        Measure::RtrPlus { beta } => {
            out.put_u8(3);
            out.put_f64_le(beta);
        }
    }
}

fn get_measure(r: &mut Reader<'_>) -> Result<Measure, WireError> {
    Ok(match r.u8()? {
        0 => Measure::F,
        1 => Measure::T,
        2 => Measure::Rtr,
        3 => Measure::RtrPlus { beta: r.f64()? },
        t => return Err(WireError::Malformed(format!("unknown measure tag {t}"))),
    })
}

fn put_params(out: &mut BytesMut, p: &RankParams) {
    out.put_f64_le(p.alpha);
    out.put_f64_le(p.tolerance);
    out.put_u64_le(p.max_iterations as u64);
}

fn get_params(r: &mut Reader<'_>) -> Result<RankParams, WireError> {
    Ok(RankParams {
        alpha: r.f64()?,
        tolerance: r.f64()?,
        max_iterations: r.usize64()?,
    })
}

fn put_topk(out: &mut BytesMut, t: &TopKConfig) {
    out.put_u64_le(t.k as u64);
    out.put_f64_le(t.epsilon);
    out.put_u64_le(t.m_f as u64);
    out.put_u64_le(t.m_t as u64);
    out.put_f64_le(t.refine_tolerance);
    out.put_u64_le(t.refine_max_sweeps as u64);
    out.put_u64_le(t.max_expansions as u64);
}

fn get_topk(r: &mut Reader<'_>) -> Result<TopKConfig, WireError> {
    Ok(TopKConfig {
        k: r.usize64()?,
        epsilon: r.f64()?,
        m_f: r.usize64()?,
        m_t: r.usize64()?,
        refine_tolerance: r.f64()?,
        refine_max_sweeps: r.usize64()?,
        max_expansions: r.usize64()?,
    })
}

fn scheme_tag(s: Scheme) -> u8 {
    match s {
        Scheme::TwoSBound => 0,
        Scheme::GPlusS => 1,
        Scheme::Gupta => 2,
        Scheme::Sarkar => 3,
    }
}

fn get_scheme(r: &mut Reader<'_>) -> Result<Scheme, WireError> {
    Ok(match r.u8()? {
        0 => Scheme::TwoSBound,
        1 => Scheme::GPlusS,
        2 => Scheme::Gupta,
        3 => Scheme::Sarkar,
        t => return Err(WireError::Malformed(format!("unknown scheme tag {t}"))),
    })
}

fn backend_tag(b: BackendKind) -> u8 {
    match b {
        BackendKind::Local => 0,
        BackendKind::Distributed => 1,
    }
}

fn get_backend(r: &mut Reader<'_>) -> Result<BackendKind, WireError> {
    Ok(match r.u8()? {
        0 => BackendKind::Local,
        1 => BackendKind::Distributed,
        t => return Err(WireError::Malformed(format!("unknown backend tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encode a request as a `Request` frame's binary payload.
pub fn encode_request(request: &QueryRequest, out: &mut BytesMut) {
    put_query(out, request.query());
    put_measure(out, request.measure());
    match request.k() {
        Some(k) => {
            out.put_u8(1);
            out.put_u64_le(k as u64);
        }
        None => out.put_u8(0),
    }
    match request.params() {
        Some(p) => {
            out.put_u8(1);
            put_params(out, &p);
        }
        None => out.put_u8(0),
    }
    match request.topk() {
        Some(t) => {
            out.put_u8(1);
            put_topk(out, &t);
        }
        None => out.put_u8(0),
    }
    match request.scheme() {
        Some(s) => {
            out.put_u8(1);
            out.put_u8(scheme_tag(s));
        }
        None => out.put_u8(0),
    }
    match request.backend() {
        Some(b) => {
            out.put_u8(1);
            out.put_u8(backend_tag(b));
        }
        None => out.put_u8(0),
    }
}

/// Decode a `Request` frame's binary payload.
pub fn decode_request(payload: &[u8]) -> Result<QueryRequest, WireError> {
    let mut r = Reader::new(payload);
    let query = get_query(&mut r)?;
    let measure = get_measure(&mut r)?;
    // The decoded query is already canonical (the encoder serialized a
    // canonicalized request), so QueryRequest::new's re-canonicalization
    // is a bit-exact identity.
    let mut request = QueryRequest::new(query).with_measure(measure);
    if r.bool()? {
        request = request.with_k(r.usize64()?);
    }
    if r.bool()? {
        request = request.with_params(get_params(&mut r)?);
    }
    if r.bool()? {
        request = request.with_topk(get_topk(&mut r)?);
    }
    if r.bool()? {
        request = request.with_scheme(get_scheme(&mut r)?);
    }
    if r.bool()? {
        request = request.with_backend(get_backend(&mut r)?);
    }
    r.finish()?;
    Ok(request)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn put_resolved(out: &mut BytesMut, r: &ResolvedRequest) {
    put_query(out, &r.query);
    put_measure(out, r.measure);
    put_params(out, &r.params);
    put_topk(out, &r.topk);
    out.put_u8(scheme_tag(r.scheme));
    match r.route {
        None => out.put_u8(0),
        Some(BackendKind::Local) => out.put_u8(1),
        Some(BackendKind::Distributed) => out.put_u8(2),
    }
}

fn get_resolved(r: &mut Reader<'_>) -> Result<ResolvedRequest, WireError> {
    Ok(ResolvedRequest {
        query: get_query(r)?,
        measure: get_measure(r)?,
        params: get_params(r)?,
        topk: get_topk(r)?,
        scheme: get_scheme(r)?,
        route: match r.u8()? {
            0 => None,
            1 => Some(BackendKind::Local),
            2 => Some(BackendKind::Distributed),
            t => return Err(WireError::Malformed(format!("unknown route tag {t}"))),
        },
    })
}

fn put_topk_result(out: &mut BytesMut, t: &TopKResult) {
    out.put_u32_le(t.ranking.len() as u32);
    for v in &t.ranking {
        out.put_u32_le(v.0);
    }
    out.put_u32_le(t.bounds.len() as u32);
    for &(lo, hi) in &t.bounds {
        out.put_f64_le(lo);
        out.put_f64_le(hi);
    }
    out.put_u64_le(t.expansions as u64);
    out.put_u8(t.converged as u8);
    for v in [
        t.active.f_nodes,
        t.active.t_nodes,
        t.active.active_nodes,
        t.active.active_edges,
        t.active.bytes,
    ] {
        out.put_u64_le(v as u64);
    }
}

fn get_topk_result(r: &mut Reader<'_>) -> Result<TopKResult, WireError> {
    let n = r.len(4)?;
    let mut ranking = Vec::with_capacity(n);
    for _ in 0..n {
        ranking.push(NodeId(r.u32()?));
    }
    let n = r.len(16)?;
    let mut bounds = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = r.f64()?;
        let hi = r.f64()?;
        bounds.push((lo, hi));
    }
    let expansions = r.usize64()?;
    let converged = r.bool()?;
    let active = ActiveSetStats {
        f_nodes: r.usize64()?,
        t_nodes: r.usize64()?,
        active_nodes: r.usize64()?,
        active_edges: r.usize64()?,
        bytes: r.usize64()?,
    };
    Ok(TopKResult {
        ranking,
        bounds,
        expansions,
        converged,
        active,
    })
}

fn put_serve_error(out: &mut BytesMut, e: &ServeError) {
    match e {
        ServeError::Query(core) => match core {
            // An adjacency failure is backend-shaped; it also never
            // reaches responses as Query (the engine re-maps it), so the
            // wire form folds it the same way instead of encoding the
            // nested adjacency taxonomy.
            CoreError::Adjacency(a) => {
                out.put_u8(1);
                put_string(out, &a.to_string());
            }
            CoreError::NodeOutOfRange { node, node_count } => {
                out.put_u8(0);
                out.put_u8(0);
                out.put_u32_le(node.0);
                out.put_u64_le(*node_count as u64);
            }
            CoreError::EmptyQuery => {
                out.put_u8(0);
                out.put_u8(1);
            }
            CoreError::BadQueryWeights(msg) => {
                out.put_u8(0);
                out.put_u8(2);
                put_string(out, msg);
            }
            CoreError::InvalidAlpha(a) => {
                out.put_u8(0);
                out.put_u8(3);
                out.put_f64_le(*a);
            }
            CoreError::InvalidBeta(b) => {
                out.put_u8(0);
                out.put_u8(4);
                out.put_f64_le(*b);
            }
            CoreError::NoConvergence {
                iterations,
                residual,
            } => {
                out.put_u8(0);
                out.put_u8(5);
                out.put_u64_le(*iterations as u64);
                out.put_f64_le(*residual);
            }
        },
        ServeError::Backend(msg) => {
            out.put_u8(1);
            put_string(out, msg);
        }
        ServeError::Panicked(msg) => {
            out.put_u8(2);
            put_string(out, msg);
        }
    }
}

fn get_serve_error(r: &mut Reader<'_>) -> Result<ServeError, WireError> {
    Ok(match r.u8()? {
        0 => ServeError::Query(match r.u8()? {
            0 => CoreError::NodeOutOfRange {
                node: NodeId(r.u32()?),
                node_count: r.usize64()?,
            },
            1 => CoreError::EmptyQuery,
            2 => CoreError::BadQueryWeights(r.string()?),
            3 => CoreError::InvalidAlpha(r.f64()?),
            4 => CoreError::InvalidBeta(r.f64()?),
            5 => CoreError::NoConvergence {
                iterations: r.usize64()?,
                residual: r.f64()?,
            },
            t => return Err(WireError::Malformed(format!("unknown query-error tag {t}"))),
        }),
        1 => ServeError::Backend(r.string()?),
        2 => ServeError::Panicked(r.string()?),
        t => return Err(WireError::Malformed(format!("unknown error kind {t}"))),
    })
}

/// Encode a served response as a `Response` frame's binary payload.
/// Everything observable crosses the wire — resolved request, result or
/// typed error, backend provenance, `DistributedStats`, cache flag, and
/// the queue-wait/compute latency split — except the optional debug
/// trace (see the [module docs](self)).
pub fn encode_response(response: &QueryResponse, out: &mut BytesMut) {
    out.put_u64_le(response.id as u64);
    put_resolved(out, &response.request);
    match &response.result {
        Ok(result) => {
            out.put_u8(1);
            put_topk_result(out, result);
        }
        Err(e) => {
            out.put_u8(0);
            put_serve_error(out, e);
        }
    }
    out.put_u8(backend_tag(response.backend));
    out.put_u8(response.routed_fallback as u8);
    match &response.distributed {
        Some(d) => {
            out.put_u8(1);
            for v in [
                d.fetch_requests,
                d.blocks_fetched,
                d.blocks_prefetched,
                d.blocks_from_cache,
                d.bytes_transferred,
                d.active_nodes,
                d.active_edges,
                d.active_bytes,
            ] {
                out.put_u64_le(v as u64);
            }
        }
        None => out.put_u8(0),
    }
    out.put_u8(response.from_cache as u8);
    match response.worker {
        Some(w) => {
            out.put_u8(1);
            out.put_u64_le(w as u64);
        }
        None => out.put_u8(0),
    }
    out.put_u64_le(response.queue_wait.as_nanos() as u64);
    out.put_u64_le(response.compute.as_nanos() as u64);
}

/// Decode a `Response` frame's binary payload. The decoded response's
/// `trace` is always `None` (traces don't cross the wire).
pub fn decode_response(payload: &[u8]) -> Result<QueryResponse, WireError> {
    let mut r = Reader::new(payload);
    let id = r.usize64()?;
    let request = get_resolved(&mut r)?;
    let result = if r.bool()? {
        Ok(Arc::new(get_topk_result(&mut r)?))
    } else {
        Err(get_serve_error(&mut r)?)
    };
    let backend = get_backend(&mut r)?;
    let routed_fallback = r.bool()?;
    let distributed = if r.bool()? {
        Some(DistributedStats {
            fetch_requests: r.usize64()?,
            blocks_fetched: r.usize64()?,
            blocks_prefetched: r.usize64()?,
            blocks_from_cache: r.usize64()?,
            bytes_transferred: r.usize64()?,
            active_nodes: r.usize64()?,
            active_edges: r.usize64()?,
            active_bytes: r.usize64()?,
        })
    } else {
        None
    };
    let from_cache = r.bool()?;
    let worker = if r.bool()? { Some(r.usize64()?) } else { None };
    let queue_wait = Duration::from_nanos(r.u64()?);
    let compute = Duration::from_nanos(r.u64()?);
    r.finish()?;
    Ok(QueryResponse {
        id,
        request,
        result,
        backend,
        routed_fallback,
        distributed,
        from_cache,
        worker,
        queue_wait,
        compute,
        trace: None,
    })
}

// ---------------------------------------------------------------------------
// Rejections
// ---------------------------------------------------------------------------

/// Encode a rejection as an `Error` frame's payload.
pub fn encode_reject(reject: &Reject, out: &mut BytesMut) {
    out.put_u8(reject.code as u8);
    out.put_u64_le(reject.retry_after_ms);
    put_string(out, &reject.message);
}

/// Decode an `Error` frame's payload.
pub fn decode_reject(payload: &[u8]) -> Result<Reject, WireError> {
    let mut r = Reader::new(payload);
    let code = r.u8()?;
    let code = ErrorCode::from_wire(code)
        .ok_or(WireError::Malformed(format!("unknown error code {code}")))?;
    let retry_after_ms = r.u64()?;
    let message = r.string()?;
    r.finish()?;
    Ok(Reject {
        code,
        message,
        retry_after_ms,
    })
}

/// Shared fixture requests exercising every optional field, used by the
/// codec, JSON, and integration round-trip tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    pub(crate) fn sample_requests() -> Vec<QueryRequest> {
        vec![
            QueryRequest::node(NodeId(3)),
            QueryRequest::nodes(&[NodeId(0), NodeId(1), NodeId(2)])
                .with_measure(Measure::RtrPlus { beta: 0.7 })
                .with_k(5),
            QueryRequest::new(Query::weighted(&[(NodeId(5), 2.0), (NodeId(1), 1.0)]).unwrap())
                .with_measure(Measure::T)
                .with_params(RankParams {
                    alpha: 0.3,
                    tolerance: 1e-8,
                    max_iterations: 64,
                })
                .with_topk(TopKConfig::toy())
                .with_scheme(Scheme::Gupta)
                .with_backend(BackendKind::Distributed),
            QueryRequest::node(NodeId(0)).with_measure(Measure::F),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::sample_requests;
    use super::*;
    use rtr_serve::{run_serial_requests, ServeConfig};

    #[test]
    fn request_round_trip_is_exact() {
        for request in sample_requests() {
            let mut buf = BytesMut::new();
            encode_request(&request, &mut buf);
            let back = decode_request(buf.as_slice()).unwrap();
            assert_eq!(back, request);
            // Weight bits survive: the decoded request resolves to the
            // same cache key, the engine-facing identity.
            let cfg = ServeConfig::default();
            assert_eq!(
                back.resolve(&cfg).cache_key(1),
                request.resolve(&cfg).cache_key(1)
            );
        }
    }

    #[test]
    fn response_round_trip_is_exact() {
        let (g, _) = rtr_graph::toy::fig2_toy();
        let cfg = ServeConfig::default().with_topk(TopKConfig::toy());
        let requests = sample_requests();
        for response in run_serial_requests(&g, &cfg, &requests) {
            let mut buf = BytesMut::new();
            encode_response(&response, &mut buf);
            let back = decode_response(buf.as_slice()).unwrap();
            assert_eq!(back.id, response.id);
            assert_eq!(back.request, response.request);
            assert_eq!(back.backend, response.backend);
            assert_eq!(back.routed_fallback, response.routed_fallback);
            assert_eq!(back.distributed, response.distributed);
            assert_eq!(back.from_cache, response.from_cache);
            assert_eq!(back.worker, response.worker);
            assert_eq!(back.queue_wait, response.queue_wait);
            assert_eq!(back.compute, response.compute);
            match (&back.result, &response.result) {
                (Ok(b), Ok(r)) => {
                    assert_eq!(b.ranking, r.ranking);
                    assert_eq!(b.bounds, r.bounds);
                    assert_eq!(b.expansions, r.expansions);
                    assert_eq!(b.converged, r.converged);
                    assert_eq!(b.active, r.active);
                }
                (b, r) => panic!("result mismatch: {b:?} vs {r:?}"),
            }
        }
    }

    #[test]
    fn error_results_round_trip() {
        let resolved = sample_requests()[0].resolve(&ServeConfig::default());
        for err in [
            ServeError::Query(CoreError::InvalidBeta(1.5)),
            ServeError::Query(CoreError::NodeOutOfRange {
                node: NodeId(99),
                node_count: 7,
            }),
            ServeError::Query(CoreError::NoConvergence {
                iterations: 100,
                residual: 0.5,
            }),
            ServeError::Query(CoreError::EmptyQuery),
            ServeError::Query(CoreError::BadQueryWeights("negative".into())),
            ServeError::Query(CoreError::InvalidAlpha(2.0)),
            ServeError::Backend("graph processor 2 is not running".into()),
            ServeError::Panicked("boom".into()),
        ] {
            let response = QueryResponse {
                id: 9,
                request: resolved.clone(),
                result: Err(err.clone()),
                backend: BackendKind::Distributed,
                routed_fallback: true,
                distributed: None,
                from_cache: false,
                worker: Some(2),
                queue_wait: Duration::from_micros(15),
                compute: Duration::from_micros(40),
                trace: None,
            };
            let mut buf = BytesMut::new();
            encode_response(&response, &mut buf);
            let back = decode_response(buf.as_slice()).unwrap();
            assert_eq!(back.result.unwrap_err(), err);
        }
    }

    #[test]
    fn reject_round_trip() {
        let reject = Reject {
            code: ErrorCode::Overloaded,
            message: "tenant 7 exceeded 100 qps".into(),
            retry_after_ms: 12,
        };
        let mut buf = BytesMut::new();
        encode_reject(&reject, &mut buf);
        assert_eq!(decode_reject(buf.as_slice()).unwrap(), reject);
    }

    #[test]
    fn corrupted_payloads_are_typed_not_panics() {
        let mut buf = BytesMut::new();
        encode_request(&sample_requests()[2], &mut buf);
        let wire = buf.as_slice();
        // Every strict prefix is Truncated or Malformed, never a panic.
        for cut in 0..wire.len() {
            assert!(
                decode_request(&wire[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        // Bad enum tags and flag bytes are Malformed.
        let mut bad = wire.to_vec();
        let measure_at = 4 + 2 * 12; // after the 2-pair query
        bad[measure_at] = 9;
        assert!(matches!(decode_request(&bad), Err(WireError::Malformed(_))));
        // Trailing garbage is rejected.
        let mut long = wire.to_vec();
        long.push(0);
        assert!(matches!(
            decode_request(&long),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_element_counts_never_allocate_past_the_payload() {
        // A query claiming u32::MAX pairs in a 12-byte payload must be
        // rejected by the pre-allocation length check.
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(1);
        buf.put_f64_le(1.0);
        match decode_request(buf.as_slice()) {
            Err(WireError::Malformed(msg)) => assert!(msg.contains("elements")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
