//! Per-tenant token-bucket admission control.
//!
//! Every request frame carries a tenant id in its header (see
//! `docs/PROTOCOL.md`); before a request touches the engine, the server
//! asks this module for an [`AdmissionDecision`]. Each tenant gets an
//! independent token bucket — refilled continuously at the tenant's
//! sustained rate, capped at its burst size — so one tenant blowing
//! through its quota produces `Overloaded` rejections *for that tenant
//! only* while everyone else's latency is untouched (asserted end-to-end
//! in `tests/tests/net_e2e.rs`).
//!
//! The clock is injected as nanoseconds from an arbitrary epoch rather
//! than read internally, which keeps the arithmetic deterministic under
//! test; the server feeds it `Instant::now() - start`.

use std::collections::HashMap;
use std::sync::Mutex;

/// Rate limit for one tenant: a token bucket refilling at `rate_qps`
/// tokens per second, holding at most `burst` tokens.
///
/// A full bucket lets a tenant issue `burst` requests back-to-back; the
/// sustained ceiling is `rate_qps`. Construct via [`TenantPolicy::per_second`]
/// unless you want an explicit burst.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantPolicy {
    /// Sustained admission rate, requests per second. Must be finite and
    /// positive.
    pub rate_qps: f64,
    /// Bucket capacity in requests. Values below 1.0 are treated as 1.0
    /// (a bucket that can never hold one token would never admit).
    pub burst: f64,
}

impl TenantPolicy {
    /// Policy with a one-second burst window: `burst == max(rate_qps, 1)`.
    pub fn per_second(rate_qps: f64) -> Self {
        TenantPolicy {
            rate_qps,
            burst: rate_qps.max(1.0),
        }
    }

    fn capacity(&self) -> f64 {
        self.burst.max(1.0)
    }
}

/// Admission policy for the whole server: an optional default applied to
/// every tenant, plus per-tenant overrides.
#[derive(Clone, Debug, Default)]
pub struct AdmissionConfig {
    /// Policy for tenants without an override. `None` admits unlimited.
    pub default_policy: Option<TenantPolicy>,
    /// Per-tenant policies keyed by the frame header's tenant id.
    pub tenants: HashMap<u32, TenantPolicy>,
}

impl AdmissionConfig {
    /// Admit everything (the default).
    pub fn unlimited() -> Self {
        AdmissionConfig::default()
    }

    /// Apply `policy` to every tenant without an explicit override.
    pub fn with_default(mut self, policy: TenantPolicy) -> Self {
        self.default_policy = Some(policy);
        self
    }

    /// Override the policy for one tenant id.
    pub fn with_tenant(mut self, tenant: u32, policy: TenantPolicy) -> Self {
        self.tenants.insert(tenant, policy);
        self
    }

    fn policy_for(&self, tenant: u32) -> Option<TenantPolicy> {
        self.tenants.get(&tenant).copied().or(self.default_policy)
    }
}

/// Outcome of an admission check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The request may proceed to the engine.
    Admit,
    /// The tenant is over its rate; reject with `Overloaded` and suggest
    /// retrying after this many milliseconds (when the bucket will next
    /// hold a whole token).
    Reject {
        /// Suggested client back-off in milliseconds (at least 1).
        retry_after_ms: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    refilled_at_ns: u64,
}

/// The runtime admission controller: one token bucket per tenant seen so
/// far. Shared across connections behind a plain mutex — the critical
/// section is a handful of float operations, invisible next to socket
/// I/O.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    buckets: Mutex<HashMap<u32, Bucket>>,
}

impl Admission {
    /// Build the controller for a server's [`AdmissionConfig`].
    pub fn new(config: AdmissionConfig) -> Self {
        Admission {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Decide admission for `tenant` at time `now_ns` (nanoseconds from
    /// any fixed epoch; only differences matter, and a caller feeding a
    /// non-decreasing clock gets exact token accounting).
    pub fn admit_at(&self, tenant: u32, now_ns: u64) -> AdmissionDecision {
        let Some(policy) = self.config.policy_for(tenant) else {
            return AdmissionDecision::Admit;
        };
        if !(policy.rate_qps.is_finite() && policy.rate_qps > 0.0) {
            // A non-positive rate is "tenant disabled": nothing ever
            // refills, so park the retry hint at one second.
            return AdmissionDecision::Reject {
                retry_after_ms: 1_000,
            };
        }
        // invariant: admission mutex is never poisoned — the critical
        // section below contains no panicking operation.
        let mut buckets = self.buckets.lock().expect("admission mutex poisoned");
        let bucket = buckets.entry(tenant).or_insert(Bucket {
            tokens: policy.capacity(),
            refilled_at_ns: now_ns,
        });
        let elapsed_s = now_ns.saturating_sub(bucket.refilled_at_ns) as f64 * 1e-9;
        bucket.tokens = (bucket.tokens + elapsed_s * policy.rate_qps).min(policy.capacity());
        bucket.refilled_at_ns = now_ns;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            AdmissionDecision::Admit
        } else {
            let deficit = 1.0 - bucket.tokens;
            let wait_ms = (deficit / policy.rate_qps * 1e3).ceil();
            AdmissionDecision::Reject {
                retry_after_ms: (wait_ms as u64).max(1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECOND: u64 = 1_000_000_000;

    #[test]
    fn unlimited_admits_everything() {
        let a = Admission::new(AdmissionConfig::unlimited());
        for i in 0..10_000 {
            assert_eq!(a.admit_at(7, i), AdmissionDecision::Admit);
        }
    }

    #[test]
    fn burst_then_sustained_rate() {
        let policy = TenantPolicy {
            rate_qps: 10.0,
            burst: 3.0,
        };
        let a = Admission::new(AdmissionConfig::unlimited().with_default(policy));
        // Full bucket: exactly `burst` requests admitted back-to-back.
        for _ in 0..3 {
            assert_eq!(a.admit_at(1, 0), AdmissionDecision::Admit);
        }
        let rejected = a.admit_at(1, 0);
        let AdmissionDecision::Reject { retry_after_ms } = rejected else {
            panic!("fourth instantaneous request admitted: {rejected:?}");
        };
        // Empty bucket at 10 qps: next token in 100 ms.
        assert_eq!(retry_after_ms, 100);
        // After the hinted wait the tenant is admitted again.
        assert_eq!(
            a.admit_at(1, retry_after_ms * 1_000_000),
            AdmissionDecision::Admit
        );
        // Sustained: over one second, 10 evenly spaced requests all pass.
        let start = 10 * SECOND;
        for i in 0..10 {
            assert_eq!(
                a.admit_at(1, start + i * (SECOND / 10)),
                AdmissionDecision::Admit,
                "sustained request {i}"
            );
        }
    }

    #[test]
    fn tenants_are_isolated() {
        let a = Admission::new(
            AdmissionConfig::unlimited()
                .with_default(TenantPolicy::per_second(1.0))
                .with_tenant(9, TenantPolicy::per_second(1_000_000.0)),
        );
        // Tenant 1 exhausts its bucket...
        assert_eq!(a.admit_at(1, 0), AdmissionDecision::Admit);
        assert!(matches!(a.admit_at(1, 0), AdmissionDecision::Reject { .. }));
        // ...while tenant 2 (same default policy, own bucket) and tenant 9
        // (generous override) are unaffected.
        assert_eq!(a.admit_at(2, 0), AdmissionDecision::Admit);
        for _ in 0..100 {
            assert_eq!(a.admit_at(9, 0), AdmissionDecision::Admit);
        }
    }

    #[test]
    fn disabled_tenant_is_always_rejected() {
        let a = Admission::new(AdmissionConfig::unlimited().with_tenant(
            3,
            TenantPolicy {
                rate_qps: 0.0,
                burst: 5.0,
            },
        ));
        assert_eq!(
            a.admit_at(3, SECOND),
            AdmissionDecision::Reject {
                retry_after_ms: 1_000
            }
        );
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let a = Admission::new(AdmissionConfig::unlimited().with_default(TenantPolicy {
            rate_qps: 100.0,
            burst: 2.0,
        }));
        assert_eq!(a.admit_at(1, 0), AdmissionDecision::Admit);
        // An hour of idling refills to the 2-token cap, not 360k tokens.
        let later = 3_600 * SECOND;
        assert_eq!(a.admit_at(1, later), AdmissionDecision::Admit);
        assert_eq!(a.admit_at(1, later), AdmissionDecision::Admit);
        assert!(matches!(
            a.admit_at(1, later),
            AdmissionDecision::Reject { .. }
        ));
    }
}
