#![deny(missing_docs)]
//! # rtr-net — the network front door
//!
//! Everything the serving stack can do in-process (per-request measures,
//! work-stealing scheduling, the result cache, distributed execution,
//! metrics) becomes reachable over a real socket here, with the
//! production-serving concerns that implies:
//!
//! * **Wire protocol** ([`frame`], [`codec`], [`json`]) — length-prefixed
//!   binary frames with a versioned header (magic, version, type, flags,
//!   tenant id, request id), encoding [`rtr_serve::QueryRequest`] /
//!   [`rtr_serve::QueryResponse`] — provenance, latency split, and
//!   [`rtr_distributed::DistributedStats`] included — in the workspace's
//!   little-endian `bytes` idiom, plus a JSON payload mode (one header
//!   flag) for human debugging. Decoding is total: truncated, corrupted,
//!   or oversized input returns a typed [`WireError`], never a panic, and
//!   never allocates more than the declared (and capped) payload length.
//!   The protocol is transport-agnostic — frames don't know about TCP —
//!   and `docs/PROTOCOL.md` is the normative layout/versioning spec.
//! * **Server runtime** ([`server`]) — no async runtime (the workspace
//!   builds offline; there is no tokio): a thread-per-connection acceptor
//!   where the reader thread decodes frames and drives the engine's
//!   non-blocking [`rtr_serve::ServeEngine::submit`] tickets, so a slow
//!   client never holds an engine worker. Responses flow through a
//!   **bounded** per-connection write queue (`WriteQueue`): when a
//!   client stops reading, new requests are rejected with a typed
//!   [`ErrorCode::Overloaded`] frame instead of buffering without bound.
//! * **Admission control** ([`admission`]) — per-tenant token buckets
//!   keyed by the frame header's tenant id; a tenant exceeding its rate
//!   gets `Overloaded` rejections (with a retry-after hint) while other
//!   tenants are untouched.
//! * **Graceful shutdown** — [`NetServer::shutdown`] stops accepting,
//!   lets every already-accepted request finish (tickets drain through
//!   the write queues), sends each connection a `Goodbye` frame, and
//!   joins every thread. No accepted request is ever dropped; the
//!   write-queue and drain protocols are model-checked in `crates/check`.
//! * **Observability** — connection/frame/tenant counters registered in
//!   the engine's [`rtr_obs::Registry`], and a `MetricsRequest` frame
//!   that answers with the Prometheus text rendering (the `/metrics`
//!   endpoint, one frame type instead of one HTTP route).
//!
//! [`NetClient`] is the matching blocking client (used by the e2e tests,
//! `examples/network_serving.rs`, and the wire-level load generator in
//! `rtr-bench --wire`).
//!
//! ```no_run
//! use rtr_graph::NodeId;
//! use rtr_net::{NetClient, NetServer, NetServerConfig};
//! use rtr_serve::{QueryRequest, ServeConfig, ServeEngine};
//! use std::sync::Arc;
//!
//! # fn demo(graph: Arc<rtr_graph::Graph>) -> std::io::Result<()> {
//! let engine = Arc::new(ServeEngine::start(graph, ServeConfig::default()));
//! let server = NetServer::start(engine, NetServerConfig::default())?;
//! let mut client = NetClient::connect(server.local_addr())?;
//! let response = client.call(&QueryRequest::node(NodeId(3)))?.expect("admitted");
//! println!("top-1: {:?}", response.result.unwrap().ranking.first());
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(rust_2018_idioms)]

pub mod admission;
pub mod codec;
pub mod frame;
pub mod json;
mod queue;
mod rtr_sync;
pub mod server;

mod client;

pub use admission::{AdmissionConfig, AdmissionDecision, TenantPolicy};
pub use client::{NetClient, NetError, WireReceiver, WireSender};
pub use codec::{decode_reject, decode_request, decode_response, encode_request, encode_response};
pub use codec::{ErrorCode, Reject};
pub use frame::{Frame, FrameType, WireError, HEADER_LEN, MAGIC, MAX_PAYLOAD, PROTOCOL_VERSION};
pub use server::{NetServer, NetServerConfig};

/// Model-checking surface: the real connection write-queue protocol,
/// compiled against the loom-shim sync facade so `rtr-check` can explore
/// its schedules. Production builds never see this module (the
/// `rtr_check` feature is only enabled by `crates/check`, which is not a
/// default workspace member).
#[cfg(feature = "rtr_check")]
pub mod check_api {
    pub use crate::queue::{PopOutcome, PushOutcome, WriteQueue};
}

pub(crate) use queue::{PopOutcome, PushOutcome, WriteQueue};
