//! Length-prefixed, versioned frame layer — the transport-agnostic unit
//! of the wire protocol.
//!
//! A frame is a fixed 24-byte header followed by `payload_len` payload
//! bytes (layout below and, normatively, in `docs/PROTOCOL.md`):
//!
//! ```text
//! offset size field
//! 0      2    magic       b"RT"
//! 2      1    version     PROTOCOL_VERSION (1)
//! 3      1    frame type  FrameType discriminant
//! 4      1    flags       bit 0 = JSON payload; other bits reserved (0)
//! 5      3    reserved    must be zero
//! 8      4    tenant id   u32 LE (admission-control identity)
//! 12     8    request id  u64 LE (client-chosen correlation id)
//! 20     4    payload len u32 LE (bytes following the header)
//! 24     …    payload
//! ```
//!
//! All integers are little-endian, matching `rtr_graph::wire`.
//! **Versioning rules:** the magic and the first three header bytes never
//! move; an incompatible layout change bumps `version` and a v1 decoder
//! rejects it as [`WireError::UnsupportedVersion`]. Reserved bits/bytes
//! must be zero on the wire — v1 decoders reject nonzero values
//! ([`WireError::UnknownFlags`] / [`WireError::Malformed`]), which is what
//! lets a future version assign them meaning without silent misreads.
//!
//! Decoding is **total and allocation-bounded**: any byte sequence either
//! parses or returns a typed [`WireError`]; a declared payload length is
//! validated against [`MAX_PAYLOAD`] (and any stricter transport cap)
//! *before* any buffer is sized from it, so a hostile 4 GiB length prefix
//! costs 24 bytes of reading, not 4 GiB of allocation.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"RT";

/// The protocol version this crate speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 24;

/// Hard protocol-level payload cap (16 MiB). Transports may impose a
/// stricter limit; nothing may accept more.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Frame flag bit 0: the payload is JSON text instead of the binary
/// codec (see [`crate::json`]).
pub const FLAG_JSON: u8 = 0b0000_0001;

/// What a frame carries. Discriminants are the on-wire type byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: one encoded [`rtr_serve::QueryRequest`].
    Request = 1,
    /// Server → client: the matching encoded [`rtr_serve::QueryResponse`].
    Response = 2,
    /// Server → client: a typed rejection ([`crate::Reject`]) — the
    /// request never reached the engine (overload, rate limit, malformed
    /// payload, shutdown).
    Error = 3,
    /// Client → server: liveness probe (empty payload).
    Ping = 4,
    /// Server → client: answer to a `Ping` (empty payload, echoes the
    /// request id).
    Pong = 5,
    /// Client → server: ask for the engine + server metrics snapshot
    /// (empty payload).
    MetricsRequest = 6,
    /// Server → client: Prometheus text exposition of the metrics
    /// snapshot (UTF-8 payload).
    MetricsResponse = 7,
    /// Server → client: the connection is closing after this frame (sent
    /// on graceful shutdown once every accepted request has been
    /// answered). Client → server: the client is done submitting.
    Goodbye = 8,
}

impl FrameType {
    fn from_wire(b: u8) -> Option<FrameType> {
        Some(match b {
            1 => FrameType::Request,
            2 => FrameType::Response,
            3 => FrameType::Error,
            4 => FrameType::Ping,
            5 => FrameType::Pong,
            6 => FrameType::MetricsRequest,
            7 => FrameType::MetricsResponse,
            8 => FrameType::Goodbye,
            _ => return None,
        })
    }
}

/// Why a byte sequence failed to decode. The taxonomy is part of the
/// protocol contract: every malformed input maps to exactly one of these
/// — never a panic, never an unbounded allocation.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// More bytes are needed than are available (also the streaming
    /// "frame incomplete, keep reading" signal).
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The first two bytes are not [`MAGIC`] — this is not our protocol.
    BadMagic([u8; 2]),
    /// The version byte names a protocol revision this decoder does not
    /// speak.
    UnsupportedVersion(u8),
    /// The frame-type byte is not a known [`FrameType`].
    UnknownFrameType(u8),
    /// Flag bits reserved in this version were set.
    UnknownFlags(u8),
    /// The declared payload length exceeds the acceptor's cap.
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The frame parsed but its payload is structurally invalid (bad
    /// enum tag, length mismatch, non-UTF-8 string, semantic violation).
    Malformed(String),
    /// A JSON-mode payload failed to parse or had the wrong shape.
    BadJson(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated: need {needed} bytes, have {available}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:?} (expected b\"RT\")"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::UnknownFlags(bits) => {
                write!(f, "reserved flag bits set: {bits:#010b}")
            }
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the {max}-byte cap"
                )
            }
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::BadJson(msg) => write!(f, "bad JSON payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded frame: the header fields plus the raw payload (decoded
/// further by [`crate::codec`] / [`crate::json`] according to
/// [`Frame::frame_type`] and [`Frame::json`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// What the payload is.
    pub frame_type: FrameType,
    /// Whether the payload is JSON text instead of the binary codec.
    pub json: bool,
    /// Tenant identity for admission control (0 = the default tenant).
    pub tenant: u32,
    /// Client-chosen correlation id, echoed verbatim in the reply.
    pub request_id: u64,
    /// The payload bytes (`payload.len()` is the on-wire length).
    pub payload: Bytes,
}

impl Frame {
    /// A frame with an empty payload (control frames).
    pub fn control(frame_type: FrameType, tenant: u32, request_id: u64) -> Frame {
        Frame {
            frame_type,
            json: false,
            tenant,
            request_id,
            payload: Bytes::new(),
        }
    }

    /// Append this frame's wire form (header + payload) to `out`.
    ///
    /// # Panics
    /// If the payload exceeds [`MAX_PAYLOAD`] — encoders construct
    /// payloads, so an oversized one is a caller bug, not wire input.
    pub fn encode(&self, out: &mut BytesMut) {
        assert!(
            self.payload.len() <= MAX_PAYLOAD,
            "frame payload {} exceeds MAX_PAYLOAD",
            self.payload.len()
        );
        out.reserve(HEADER_LEN + self.payload.len());
        out.put_slice(&MAGIC);
        out.put_u8(PROTOCOL_VERSION);
        out.put_u8(self.frame_type as u8);
        out.put_u8(if self.json { FLAG_JSON } else { 0 });
        out.put_slice(&[0u8; 3]);
        out.put_u32_le(self.tenant);
        out.put_u64_le(self.request_id);
        out.put_u32_le(self.payload.len() as u32);
        out.put_slice(self.payload.as_slice());
    }

    /// This frame as a standalone byte vector.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        self.encode(&mut out);
        out.freeze()
    }

    /// Parse one frame from the front of `input`, returning it with the
    /// number of bytes consumed. [`WireError::Truncated`] doubles as the
    /// streaming "need more bytes" signal; every other error is fatal for
    /// the connection. `max_payload` is the acceptor's cap (clamped to
    /// [`MAX_PAYLOAD`]); the check runs before anything is sized from the
    /// declared length.
    pub fn parse(input: &[u8], max_payload: usize) -> Result<(Frame, usize), WireError> {
        let header = parse_header(input, max_payload)?;
        let total = HEADER_LEN + header.payload_len;
        if input.len() < total {
            return Err(WireError::Truncated {
                needed: total,
                available: input.len(),
            });
        }
        Ok((
            Frame {
                frame_type: header.frame_type,
                json: header.json,
                tenant: header.tenant,
                request_id: header.request_id,
                payload: Bytes::from(&input[HEADER_LEN..total]),
            },
            total,
        ))
    }
}

/// A validated header: what [`parse_header`] yields before the payload
/// bytes exist (the server reads headers and payloads separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the payload will be.
    pub frame_type: FrameType,
    /// Whether the payload is JSON text.
    pub json: bool,
    /// Tenant identity.
    pub tenant: u32,
    /// Correlation id.
    pub request_id: u64,
    /// Declared payload length (validated ≤ the cap).
    pub payload_len: usize,
}

/// Validate the fixed 24-byte header at the front of `input` without
/// touching payload bytes. `max_payload` is the acceptor's payload cap
/// (clamped to [`MAX_PAYLOAD`]).
pub fn parse_header(input: &[u8], max_payload: usize) -> Result<FrameHeader, WireError> {
    // Validate whatever prefix has already arrived BEFORE asking for more
    // bytes: a peer speaking the wrong protocol (bad magic at byte 0) is
    // rejected immediately instead of the parser reporting `Truncated`
    // and the connection stalling until more garbage shows up.
    if input.len() >= 2 && input[0..2] != MAGIC {
        return Err(WireError::BadMagic([input[0], input[1]]));
    }
    if input.len() >= 3 && input[2] != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion(input[2]));
    }
    if input.len() >= 4 && FrameType::from_wire(input[3]).is_none() {
        return Err(WireError::UnknownFrameType(input[3]));
    }
    if input.len() >= 5 && input[4] & !FLAG_JSON != 0 {
        return Err(WireError::UnknownFlags(input[4]));
    }
    if input.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            available: input.len(),
        });
    }
    // invariant: byte 3 was validated above once 4 bytes were available.
    let frame_type = FrameType::from_wire(input[3]).expect("validated frame type");
    let flags = input[4];
    if input[5..8] != [0, 0, 0] {
        return Err(WireError::Malformed(format!(
            "reserved header bytes must be zero, got {:?}",
            &input[5..8]
        )));
    }
    let le32 =
        |at: usize| u32::from_le_bytes([input[at], input[at + 1], input[at + 2], input[at + 3]]);
    let tenant = le32(8);
    let request_id = u64::from_le_bytes([
        input[12], input[13], input[14], input[15], input[16], input[17], input[18], input[19],
    ]);
    let payload_len = le32(20) as usize;
    let cap = max_payload.min(MAX_PAYLOAD);
    if payload_len > cap {
        return Err(WireError::Oversized {
            len: payload_len,
            max: cap,
        });
    }
    Ok(FrameHeader {
        frame_type,
        json: flags & FLAG_JSON != 0,
        tenant,
        request_id,
        payload_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            frame_type: FrameType::Request,
            json: false,
            tenant: 42,
            request_id: 0xDEAD_BEEF_0BAD_CAFE,
            payload: Bytes::from(vec![1, 2, 3, 4, 5]),
        }
    }

    #[test]
    fn round_trip() {
        let f = sample();
        let wire = f.to_bytes();
        assert_eq!(wire.len(), HEADER_LEN + 5);
        let (back, used) = Frame::parse(wire.as_slice(), MAX_PAYLOAD).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back, f);
    }

    #[test]
    fn every_truncation_is_a_typed_truncated_error() {
        let wire = sample().to_bytes();
        for cut in 0..wire.len() {
            match Frame::parse(&wire.as_slice()[..cut], MAX_PAYLOAD) {
                Err(WireError::Truncated { needed, available }) => {
                    assert_eq!(available, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn header_field_corruption_is_typed() {
        let wire = sample().to_bytes();
        let mut bad = wire.as_slice().to_vec();
        bad[0] = b'X';
        assert!(matches!(
            Frame::parse(&bad, MAX_PAYLOAD),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = wire.as_slice().to_vec();
        bad[2] = 99;
        assert_eq!(
            Frame::parse(&bad, MAX_PAYLOAD),
            Err(WireError::UnsupportedVersion(99))
        );

        let mut bad = wire.as_slice().to_vec();
        bad[3] = 0;
        assert_eq!(
            Frame::parse(&bad, MAX_PAYLOAD),
            Err(WireError::UnknownFrameType(0))
        );

        let mut bad = wire.as_slice().to_vec();
        bad[4] = 0b1000_0001;
        assert!(matches!(
            Frame::parse(&bad, MAX_PAYLOAD),
            Err(WireError::UnknownFlags(_))
        ));

        let mut bad = wire.as_slice().to_vec();
        bad[6] = 7;
        assert!(matches!(
            Frame::parse(&bad, MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_any_allocation() {
        let mut wire = sample().to_bytes().as_slice().to_vec();
        wire[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Frame::parse(&wire, MAX_PAYLOAD),
            Err(WireError::Oversized {
                len: u32::MAX as usize,
                max: MAX_PAYLOAD,
            })
        );
        // A stricter transport cap wins over the protocol cap.
        let ok = sample().to_bytes();
        assert_eq!(
            Frame::parse(ok.as_slice(), 4),
            Err(WireError::Oversized { len: 5, max: 4 })
        );
    }

    #[test]
    fn parse_consumes_exactly_one_frame() {
        let mut two = sample().to_bytes().as_slice().to_vec();
        let second = Frame::control(FrameType::Ping, 7, 9);
        two.extend_from_slice(second.to_bytes().as_slice());
        let (first, used) = Frame::parse(&two, MAX_PAYLOAD).unwrap();
        assert_eq!(first, sample());
        let (next, used2) = Frame::parse(&two[used..], MAX_PAYLOAD).unwrap();
        assert_eq!(next, second);
        assert_eq!(used + used2, two.len());
    }
}
