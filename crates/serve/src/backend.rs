//! Pluggable execution backends.
//!
//! The serving layer's dispatch is a trait, not a hardcoded code path:
//! an [`ExecBackend`] turns one resolved request into a ranking, and the
//! engine neither knows nor cares *where* the computation happened. Two
//! first-class implementations ship:
//!
//! * [`LocalBackend`] — the measure-dispatched workspace engines running
//!   in-process against the shared graph (exactly
//!   [`ResolvedRequest::run`]);
//! * [`DistributedBackend`] — the paper's AP/GP architecture (Sect. V-B):
//!   the worker acts as an active processor driving distributed 2SBound
//!   against graph-processor threads, fetching node blocks on demand. It
//!   covers single-node RTR / RTR+ top-K bound searches — the query shape
//!   the protocol is designed for — and takes a **recorded, deterministic
//!   fallback** to local execution for everything else (F/T exact
//!   fixed-points, multi-node linearity reductions, full rankings), so
//!   every request shape is servable on either backend.
//!
//! Because the distributed processors run the *same* engine code as the
//! local backend through the shared `rtr_graph::AdjacencyAccess` trait
//! (see `rtr_distributed::dtopk`), the two backends return the same
//! rankings, bounds, and expansion counts for every request —
//! which is why the result cache can stay backend-agnostic: an entry
//! computed by either backend answers both. What differs is the
//! *observability*: a distributed run reports the wire cost it paid
//! ([`DistributedStats`] — bytes transferred, blocks fetched, resident
//! active-set size, the paper's Fig. 12 quantities) in its
//! [`ExecOutcome`].

use crate::request::{ResolvedRequest, ServeWorkspace};
use rtr_core::{CoreError, Measure};
use rtr_distributed::{
    DistributedStats, DistributedTwoSBound, DistributedTwoSBoundPlus, GpCluster,
};
use rtr_graph::Graph;
use rtr_topk::TopKResult;
use std::fmt;
use std::sync::Arc;

/// Which execution backend a request ran on (or should run on, when used
/// as a routing override via [`crate::QueryRequest::with_backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// In-process workspace engines over the shared graph.
    Local,
    /// AP/GP distributed 2SBound over a [`GpCluster`].
    Distributed,
}

impl BackendKind {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Local => "local",
            BackendKind::Distributed => "distributed",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Backend construction/selection for a [`crate::ServeConfig`]: which
/// execution substrate the engine builds at pool start and routes to by
/// default (requests may override per query).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Serve everything with the in-process engines (the default).
    #[default]
    Local,
    /// Stripe the graph across `gps` graph-processor threads at pool start
    /// and route eligible queries through distributed 2SBound.
    Distributed {
        /// Number of graph processors to spawn (clamped to at least 1).
        gps: usize,
    },
}

impl Backend {
    /// The routing kind this construction selects by default.
    pub fn kind(&self) -> BackendKind {
        match self {
            Backend::Local => BackendKind::Local,
            Backend::Distributed { .. } => BackendKind::Distributed,
        }
    }
}

/// What one backend execution produced: the ranking plus provenance —
/// which backend actually ran (a [`DistributedBackend`] records its local
/// fallbacks here) and, for genuinely distributed runs, the wire cost.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The top-K result (bit-identical across backends for the same
    /// resolved request). Shared as an `Arc` so a cached outcome is served
    /// by reference count, never by deep-cloning the ranking vectors.
    pub result: Arc<TopKResult>,
    /// The backend that actually executed the request.
    pub backend: BackendKind,
    /// Network-level statistics of a distributed execution (`None` for
    /// local runs, including recorded fallbacks).
    pub distributed: Option<DistributedStats>,
}

/// One execution substrate: turns a resolved request into a ranking using
/// the worker's reusable buffers. Implementations must be shareable across
/// the whole pool (`Send + Sync`) and deterministic — the serving layer's
/// bit-identity contract (pool ≡ serial, cached ≡ uncached, distributed ≡
/// local) rests on it.
pub trait ExecBackend: Send + Sync {
    /// Which kind of backend this is (used for routing and provenance).
    fn kind(&self) -> BackendKind;

    /// Execute `request` against `g`, reusing `ws`'s buffers.
    fn execute(
        &self,
        g: &Graph,
        request: &ResolvedRequest,
        ws: &mut ServeWorkspace,
    ) -> Result<ExecOutcome, CoreError>;
}

/// The in-process backend: today's measure-dispatched workspace engines
/// (bound searches for single-node RTR/RTR+, exact fixed-point iteration
/// for F/T and multi-node reductions) — see [`ResolvedRequest::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalBackend;

impl ExecBackend for LocalBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Local
    }

    fn execute(
        &self,
        g: &Graph,
        request: &ResolvedRequest,
        ws: &mut ServeWorkspace,
    ) -> Result<ExecOutcome, CoreError> {
        Ok(ExecOutcome {
            result: Arc::new(request.run(g, ws)?),
            backend: BackendKind::Local,
            distributed: None,
        })
    }
}

/// The AP/GP backend: a [`GpCluster`] shared by every worker, each worker
/// acting as an active processor with its own reusable AP-side workspace.
///
/// Routing table (the fallback column is recorded in the outcome's
/// `backend` field):
///
/// | request shape | execution |
/// |---|---|
/// | single-node `Rtr`, k < \|V\| | `DistributedTwoSBound` (AP/GP) |
/// | single-node `RtrPlus{β}`, k < \|V\| | `DistributedTwoSBoundPlus` (AP/GP) |
/// | `F` / `T` (exact fixed-point) | local fallback |
/// | multi-node query (linearity reduction) | local fallback |
/// | k ≥ \|V\| (full ranking, nothing to prune) | local fallback |
pub struct DistributedBackend {
    cluster: GpCluster,
    local: LocalBackend,
}

impl DistributedBackend {
    /// Wrap an already-running cluster.
    pub fn new(cluster: GpCluster) -> Self {
        DistributedBackend {
            cluster,
            local: LocalBackend,
        }
    }

    /// Stripe `g` across `gps` graph processors (clamped to at least 1)
    /// and start their threads.
    pub fn spawn(g: &Graph, gps: usize) -> Self {
        Self::new(GpCluster::spawn(g, gps.max(1)))
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &GpCluster {
        &self.cluster
    }
}

impl ExecBackend for DistributedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Distributed
    }

    fn execute(
        &self,
        g: &Graph,
        request: &ResolvedRequest,
        ws: &mut ServeWorkspace,
    ) -> Result<ExecOutcome, CoreError> {
        request.measure.validate()?;
        // The same eligibility rule as the local dispatch: only a sub-|V|
        // single-node request gives the bound search something to prune.
        let bound_query = match request.query.nodes() {
            [q] if request.topk.k < g.node_count() => Some(*q),
            _ => None,
        };
        let (result, stats) = match (request.measure, bound_query) {
            (Measure::Rtr, Some(q)) => {
                DistributedTwoSBound::with_scheme(request.params, request.topk, request.scheme)
                    .run_with(&self.cluster, q, &mut ws.dist)?
            }
            (Measure::RtrPlus { beta }, Some(q)) => DistributedTwoSBoundPlus::with_scheme(
                request.params,
                request.topk,
                request.scheme,
                beta,
            )?
            .run_with(&self.cluster, q, &mut ws.dist)?,
            // Everything the AP/GP protocol doesn't cover falls back to
            // the local engines — deterministically (the same request
            // always takes the same path) and recorded (the outcome says
            // local ran).
            _ => return self.local.execute(g, request, ws),
        };
        Ok(ExecOutcome {
            result: Arc::new(result),
            backend: BackendKind::Distributed,
            distributed: Some(stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::request::QueryRequest;
    use rtr_graph::toy::fig2_toy;
    use rtr_topk::TopKConfig;

    fn toy_defaults() -> ServeConfig {
        ServeConfig::default().with_topk(TopKConfig::toy())
    }

    #[test]
    fn backend_kinds_and_names() {
        assert_eq!(Backend::Local.kind(), BackendKind::Local);
        assert_eq!(
            Backend::Distributed { gps: 3 }.kind(),
            BackendKind::Distributed
        );
        assert_eq!(BackendKind::Local.name(), "local");
        assert_eq!(format!("{}", BackendKind::Distributed), "distributed");
        assert_eq!(Backend::default(), Backend::Local);
    }

    #[test]
    fn local_and_distributed_agree_bit_for_bit() {
        let (g, ids) = fig2_toy();
        let defaults = toy_defaults();
        let dist = DistributedBackend::spawn(&g, 3);
        let mut ws = ServeWorkspace::new();
        for request in [
            QueryRequest::node(ids.t1),
            QueryRequest::node(ids.v1).with_measure(Measure::RtrPlus { beta: 0.7 }),
        ] {
            let resolved = request.resolve(&defaults);
            let local = LocalBackend.execute(&g, &resolved, &mut ws).unwrap();
            let remote = dist.execute(&g, &resolved, &mut ws).unwrap();
            assert_eq!(local.backend, BackendKind::Local);
            assert_eq!(remote.backend, BackendKind::Distributed);
            assert_eq!(local.result.ranking, remote.result.ranking);
            assert_eq!(local.result.bounds, remote.result.bounds);
            assert_eq!(local.result.expansions, remote.result.expansions);
            assert!(local.distributed.is_none());
            // The worker's block cache may already be warm (it survives
            // across queries), so wire bytes can be zero — the touched-set
            // accounting must hold regardless.
            let stats = remote.distributed.unwrap();
            assert!(stats.active_nodes > 0);
            assert_eq!(
                stats.blocks_fetched + stats.blocks_from_cache,
                stats.active_nodes
            );
        }
    }

    #[test]
    fn uncovered_shapes_fall_back_to_local_and_record_it() {
        let (g, ids) = fig2_toy();
        let defaults = toy_defaults();
        let dist = DistributedBackend::spawn(&g, 2);
        let mut ws = ServeWorkspace::new();
        let fallbacks = [
            QueryRequest::node(ids.t1).with_measure(Measure::F),
            QueryRequest::node(ids.t1).with_measure(Measure::T),
            QueryRequest::nodes(&[ids.t1, ids.t2]),
            QueryRequest::node(ids.t1).with_k(g.node_count()),
        ];
        for request in fallbacks {
            let resolved = request.resolve(&defaults);
            let outcome = dist.execute(&g, &resolved, &mut ws).unwrap();
            assert_eq!(outcome.backend, BackendKind::Local, "{resolved:?}");
            assert!(outcome.distributed.is_none());
            let local = LocalBackend.execute(&g, &resolved, &mut ws).unwrap();
            assert_eq!(outcome.result.ranking, local.result.ranking);
            assert_eq!(outcome.result.bounds, local.result.bounds);
        }
    }

    #[test]
    fn distributed_backend_surfaces_engine_errors() {
        let (g, ids) = fig2_toy();
        let defaults = toy_defaults();
        let dist = DistributedBackend::spawn(&g, 2);
        let mut ws = ServeWorkspace::new();
        let bad_beta = QueryRequest::node(ids.t1)
            .with_measure(Measure::RtrPlus { beta: 1.5 })
            .resolve(&defaults);
        assert!(matches!(
            dist.execute(&g, &bad_beta, &mut ws),
            Err(CoreError::InvalidBeta(_))
        ));
        let bad_node = QueryRequest::node(rtr_graph::NodeId(9999)).resolve(&defaults);
        assert!(matches!(
            dist.execute(&g, &bad_node, &mut ws),
            Err(CoreError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_gps_clamps_to_one() {
        let (g, ids) = fig2_toy();
        let dist = DistributedBackend::spawn(&g, 0);
        assert_eq!(dist.cluster().gps(), 1);
        let resolved = QueryRequest::node(ids.t1).resolve(&toy_defaults());
        let outcome = dist
            .execute(&g, &resolved, &mut ServeWorkspace::new())
            .unwrap();
        assert_eq!(outcome.backend, BackendKind::Distributed);
    }
}
