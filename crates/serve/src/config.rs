//! Serving configuration.

use rtr_core::RankParams;
use rtr_topk::{Scheme, TopKConfig};

/// Configuration of a [`crate::ServeEngine`]: pool size plus the ranking
/// engine every worker runs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of worker threads (clamped to at least 1 at pool start).
    pub workers: usize,
    /// Random-walk parameters shared by all queries.
    pub params: RankParams,
    /// Top-K search configuration shared by all queries.
    pub topk: TopKConfig,
    /// Which computational scheme the workers run (the paper's full
    /// 2SBound by default; the Fig. 11a ablations are available for
    /// benchmarking).
    pub scheme: Scheme,
}

impl Default for ServeConfig {
    /// Paper defaults (α = 0.25, K = 10, ε = 0.01, full 2SBound) with one
    /// worker per available CPU.
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            params: RankParams::default(),
            topk: TopKConfig::default(),
            scheme: Scheme::TwoSBound,
        }
    }
}

impl ServeConfig {
    /// This configuration with `workers` threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// This configuration with the given top-K settings.
    pub fn with_topk(mut self, topk: TopKConfig) -> Self {
        self.topk = topk;
        self
    }

    /// This configuration with the given scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_two_sbound() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.scheme, Scheme::TwoSBound);
        assert_eq!(c.topk.k, 10);
    }

    #[test]
    fn builders_apply() {
        let c = ServeConfig::default()
            .with_workers(3)
            .with_scheme(Scheme::Gupta)
            .with_topk(TopKConfig::toy());
        assert_eq!(c.workers, 3);
        assert_eq!(c.scheme, Scheme::Gupta);
        assert_eq!(c.topk.k, TopKConfig::toy().k);
    }
}
