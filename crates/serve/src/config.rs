//! Serving configuration.

use crate::backend::Backend;
use rtr_core::RankParams;
use rtr_distributed::{DEFAULT_MAX_BLOCKS, DEFAULT_PREFETCH_LIMIT};
use rtr_topk::{Scheme, TopKConfig};

/// How submitted jobs reach (or bypass) the worker threads.
///
/// Scheduling is a pure performance knob: every mode produces bit-identical
/// responses (the `scheduler_determinism` suite pins this), it only changes
/// *who* runs a request and how long it queues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerMode {
    /// One shared MPMC channel all workers compete on, and blocking
    /// single-flight waits: the engine's original scheduler, kept for A/B
    /// measurement (the open-loop throughput bench runs both modes).
    SharedQueue,
    /// Size-aware dispatch with per-worker queues:
    ///
    /// * **fast path** — cache hits and trivial (k = 0) requests complete
    ///   on the submitting thread and never touch the worker queues;
    /// * **work stealing** — everything else lands in a shared injector
    ///   that workers batch-drain into per-worker queues, stealing from
    ///   siblings when their own queue runs dry;
    /// * **attach batching** — a request identical to one already
    ///   computing attaches to that in-flight ticket instead of parking a
    ///   worker thread; the owner answers every attached request from the
    ///   shared `Arc` when it finishes.
    WorkStealing,
}

/// Configuration of a [`crate::ServeEngine`]: pool size, the execution
/// backend, plus the default parameters a [`crate::QueryRequest`] falls
/// back to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Number of worker threads (clamped to at least 1 at pool start).
    pub workers: usize,
    /// Which execution backend the engine constructs at pool start and
    /// routes to by default ([`Backend::Local`] unless configured
    /// otherwise; requests may override per query with
    /// [`crate::QueryRequest::with_backend`]). Backends are bit-identical,
    /// so this knob changes *where* work happens — and what the responses
    /// can observe about it — never the answers.
    pub backend: Backend,
    /// Random-walk parameters shared by all queries.
    pub params: RankParams,
    /// Top-K search configuration shared by all queries.
    pub topk: TopKConfig,
    /// Which computational scheme the workers run (the paper's full
    /// 2SBound by default; the Fig. 11a ablations are available for
    /// benchmarking).
    pub scheme: Scheme,
    /// Total entry budget of the shared result cache; **0 disables the
    /// cache entirely** (the default), in which case serving behaves
    /// bit-for-bit as it did before the cache existed — every query is
    /// computed, nothing is remembered, no key is ever built.
    pub cache_capacity: usize,
    /// Shard count of the result cache (only read when the cache is on).
    /// More shards, less lock contention; 16 is plenty for CPU-sized pools.
    pub cache_shards: usize,
    /// Single-flight deduplication: when the cache is on, M concurrent
    /// identical queries compute once and share the result; the M−1
    /// duplicates wait on the in-flight table instead of burning workers.
    /// Inert while the cache is off (there is nowhere to share results).
    pub single_flight: bool,
    /// How jobs are dispatched to workers ([`SchedulerMode::WorkStealing`]
    /// by default). Never changes answers, only latency.
    pub scheduler: SchedulerMode,
    /// Per-frontier-round speculative fetch cap of each worker's AP-side
    /// [`rtr_distributed::BlockCache`] (0 disables prefetching). Only read
    /// by distributed backends; see [`rtr_distributed::BlockCache::with_limits`].
    pub block_prefetch_limit: usize,
    /// Cross-query residency budget (in blocks) of each worker's AP-side
    /// block cache: the cache clears itself between queries once it
    /// exceeds this, so 0 means no block survives its query. Only read by
    /// distributed backends.
    pub block_cache_blocks: usize,
    /// Record serving metrics (scheduler counters, per-measure latency
    /// histograms, distributed wire counters) into the engine's
    /// [`rtr_obs::Registry`], rendered by
    /// [`crate::ServeEngine::metrics_snapshot`]. Off by default; when off,
    /// the catalog is still registered (snapshots render, all zeros) but
    /// the hot path records nothing — one branch per event.
    pub metrics: bool,
    /// Attach a per-query [`rtr_obs::QueryTrace`] to every
    /// [`crate::QueryResponse`] (timestamped submit → fast-path/enqueue →
    /// dequeue/steal → compute → respond stages, with per-fetch-round
    /// events on the distributed path). Off by default; when off, no trace
    /// is ever allocated and responses carry `None`.
    pub tracing: bool,
}

impl Default for ServeConfig {
    /// Paper defaults (α = 0.25, K = 10, ε = 0.01, full 2SBound) with one
    /// worker per available CPU.
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            backend: Backend::Local,
            params: RankParams::default(),
            topk: TopKConfig::default(),
            scheme: Scheme::TwoSBound,
            cache_capacity: 0,
            cache_shards: 16,
            single_flight: true,
            scheduler: SchedulerMode::WorkStealing,
            block_prefetch_limit: DEFAULT_PREFETCH_LIMIT,
            block_cache_blocks: DEFAULT_MAX_BLOCKS,
            metrics: false,
            tracing: false,
        }
    }
}

impl ServeConfig {
    /// This configuration with `workers` threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// This configuration with the given execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// This configuration with the given top-K settings.
    pub fn with_topk(mut self, topk: TopKConfig) -> Self {
        self.topk = topk;
        self
    }

    /// This configuration with the given scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// This configuration with a result cache of `capacity` total entries
    /// (0 turns caching off).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// This configuration with `shards` cache shards.
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// This configuration with single-flight deduplication on or off.
    pub fn with_single_flight(mut self, single_flight: bool) -> Self {
        self.single_flight = single_flight;
        self
    }

    /// This configuration with the given scheduler mode.
    pub fn with_scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// This configuration with explicit per-worker block-cache knobs for
    /// distributed backends: `prefetch_limit` caps speculative fetches per
    /// frontier round, `max_blocks` bounds cross-query block residency
    /// (see [`ServeConfig::block_prefetch_limit`] /
    /// [`ServeConfig::block_cache_blocks`]). Pure performance knobs —
    /// answers stay bit-identical at any setting.
    pub fn with_block_cache_limits(mut self, prefetch_limit: usize, max_blocks: usize) -> Self {
        self.block_prefetch_limit = prefetch_limit;
        self.block_cache_blocks = max_blocks;
        self
    }

    /// This configuration with metrics recording on or off.
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// This configuration with per-query tracing on or off.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Whether the result cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache_capacity > 0
    }

    /// A validating builder seeded with the defaults, so callers set only
    /// what they care about and get shape errors at build time instead of
    /// silent clamping at pool start.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// Why a [`ServeConfigBuilder`] refused to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `workers` was 0 — a pool needs at least one thread.
    ZeroWorkers,
    /// The cache was enabled with a shard count of 0 — entries would have
    /// nowhere to live.
    ZeroCacheShards,
    /// A distributed backend was requested with 0 graph processors — there
    /// would be no stripe to fetch from.
    ZeroGps,
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ServeConfigError::ZeroCacheShards => {
                write!(f, "cache_shards must be at least 1 when the cache is on")
            }
            ServeConfigError::ZeroGps => {
                write!(f, "a distributed backend needs at least 1 graph processor")
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// Builder for [`ServeConfig`] (see [`ServeConfig::builder`]): every field
/// starts at its default, and [`ServeConfigBuilder::build`] validates the
/// shape.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl Default for ServeConfigBuilder {
    fn default() -> Self {
        ServeConfig::builder()
    }
}

impl ServeConfigBuilder {
    /// Number of worker threads (validated ≥ 1 at build).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Execution backend (a distributed backend's GP count is validated
    /// ≥ 1 at build).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Default random-walk parameters (requests may override per query).
    pub fn params(mut self, params: RankParams) -> Self {
        self.config.params = params;
        self
    }

    /// Default top-K configuration (requests may override per query).
    pub fn topk(mut self, topk: TopKConfig) -> Self {
        self.config.topk = topk;
        self
    }

    /// Default computational scheme (requests may override per query).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.config.scheme = scheme;
        self
    }

    /// Result-cache entry budget (0 keeps the cache off).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Result-cache shard count (validated ≥ 1 at build when the cache is
    /// on).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config.cache_shards = shards;
        self
    }

    /// Single-flight deduplication on or off.
    pub fn single_flight(mut self, single_flight: bool) -> Self {
        self.config.single_flight = single_flight;
        self
    }

    /// Scheduler mode (see [`SchedulerMode`]).
    pub fn scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Per-worker block-cache knobs for distributed backends (see
    /// [`ServeConfig::with_block_cache_limits`]).
    pub fn block_cache_limits(mut self, prefetch_limit: usize, max_blocks: usize) -> Self {
        self.config.block_prefetch_limit = prefetch_limit;
        self.config.block_cache_blocks = max_blocks;
        self
    }

    /// Metrics recording on or off (see [`ServeConfig::metrics`]).
    pub fn metrics(mut self, metrics: bool) -> Self {
        self.config.metrics = metrics;
        self
    }

    /// Per-query tracing on or off (see [`ServeConfig::tracing`]).
    pub fn tracing(mut self, tracing: bool) -> Self {
        self.config.tracing = tracing;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServeConfig, ServeConfigError> {
        if self.config.workers == 0 {
            return Err(ServeConfigError::ZeroWorkers);
        }
        if self.config.cache_enabled() && self.config.cache_shards == 0 {
            return Err(ServeConfigError::ZeroCacheShards);
        }
        if self.config.backend == (Backend::Distributed { gps: 0 }) {
            return Err(ServeConfigError::ZeroGps);
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_two_sbound() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.backend, Backend::Local);
        assert_eq!(c.scheme, Scheme::TwoSBound);
        assert_eq!(c.topk.k, 10);
        // The cache ships off by default: the pre-cache serving behavior is
        // the default behavior.
        assert!(!c.cache_enabled());
        assert_eq!(c.cache_capacity, 0);
        assert!(c.cache_shards >= 1);
        assert!(c.single_flight);
        assert_eq!(c.scheduler, SchedulerMode::WorkStealing);
        // Observability ships off by default: zero-cost unless asked for.
        assert!(!c.metrics);
        assert!(!c.tracing);
    }

    #[test]
    fn observability_builders_apply() {
        let c = ServeConfig::default().with_metrics(true).with_tracing(true);
        assert!(c.metrics && c.tracing);
        let c = ServeConfig::builder()
            .metrics(true)
            .tracing(true)
            .build()
            .unwrap();
        assert!(c.metrics && c.tracing);
    }

    #[test]
    fn scheduler_builders_apply() {
        let c = ServeConfig::default().with_scheduler(SchedulerMode::SharedQueue);
        assert_eq!(c.scheduler, SchedulerMode::SharedQueue);
        let c = ServeConfig::builder()
            .scheduler(SchedulerMode::SharedQueue)
            .build()
            .unwrap();
        assert_eq!(c.scheduler, SchedulerMode::SharedQueue);
    }

    #[test]
    fn cache_builders_apply() {
        let c = ServeConfig::default()
            .with_cache_capacity(1024)
            .with_cache_shards(4)
            .with_single_flight(false);
        assert!(c.cache_enabled());
        assert_eq!(c.cache_capacity, 1024);
        assert_eq!(c.cache_shards, 4);
        assert!(!c.single_flight);
    }

    #[test]
    fn builders_apply() {
        let c = ServeConfig::default()
            .with_workers(3)
            .with_scheme(Scheme::Gupta)
            .with_topk(TopKConfig::toy());
        assert_eq!(c.workers, 3);
        assert_eq!(c.scheme, Scheme::Gupta);
        assert_eq!(c.topk.k, TopKConfig::toy().k);
    }

    #[test]
    fn validating_builder_defaults_match_default() {
        let built = ServeConfig::builder().build().unwrap();
        let default = ServeConfig::default();
        assert_eq!(built.workers, default.workers);
        assert_eq!(built.scheme, default.scheme);
        assert_eq!(built.cache_capacity, default.cache_capacity);
        assert_eq!(built.single_flight, default.single_flight);
    }

    #[test]
    fn validating_builder_sets_every_field() {
        let c = ServeConfig::builder()
            .workers(3)
            .params(RankParams::with_alpha(0.4))
            .topk(TopKConfig::toy())
            .scheme(Scheme::Sarkar)
            .cache_capacity(512)
            .cache_shards(4)
            .single_flight(false)
            .build()
            .unwrap();
        assert_eq!(c.workers, 3);
        assert_eq!(c.params.alpha, 0.4);
        assert_eq!(c.topk.k, TopKConfig::toy().k);
        assert_eq!(c.scheme, Scheme::Sarkar);
        assert_eq!(c.cache_capacity, 512);
        assert_eq!(c.cache_shards, 4);
        assert!(!c.single_flight);
    }

    #[test]
    fn validating_builder_rejects_bad_shapes() {
        assert_eq!(
            ServeConfig::builder().workers(0).build(),
            Err(ServeConfigError::ZeroWorkers)
        );
        assert_eq!(
            ServeConfig::builder()
                .cache_capacity(64)
                .cache_shards(0)
                .build(),
            Err(ServeConfigError::ZeroCacheShards)
        );
        // Zero shards with the cache off is harmless: nothing reads them.
        assert!(ServeConfig::builder().cache_shards(0).build().is_ok());
        assert_eq!(
            ServeConfig::builder()
                .backend(Backend::Distributed { gps: 0 })
                .build(),
            Err(ServeConfigError::ZeroGps)
        );
    }

    #[test]
    fn block_cache_builders_apply() {
        let d = ServeConfig::default();
        assert_eq!(d.block_prefetch_limit, DEFAULT_PREFETCH_LIMIT);
        assert_eq!(d.block_cache_blocks, DEFAULT_MAX_BLOCKS);
        let c = ServeConfig::default().with_block_cache_limits(32, 1024);
        assert_eq!(c.block_prefetch_limit, 32);
        assert_eq!(c.block_cache_blocks, 1024);
        let c = ServeConfig::builder()
            .block_cache_limits(0, 8)
            .build()
            .unwrap();
        assert_eq!(c.block_prefetch_limit, 0, "0 = prefetching off, valid");
        assert_eq!(c.block_cache_blocks, 8);
    }

    #[test]
    fn backend_builders_apply() {
        let c = ServeConfig::default().with_backend(Backend::Distributed { gps: 4 });
        assert_eq!(c.backend, Backend::Distributed { gps: 4 });
        let c = ServeConfig::builder()
            .backend(Backend::Distributed { gps: 2 })
            .build()
            .unwrap();
        assert_eq!(c.backend.kind(), crate::BackendKind::Distributed);
    }
}
