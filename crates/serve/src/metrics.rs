//! The engine's metric catalog: every instrument the serving layer
//! records into, registered once at pool start.
//!
//! [`ServeMetrics`] holds pre-fetched `Arc` handles into the engine's
//! [`Registry`], so the hot path never touches the registry lock — a
//! recorded event is one or two relaxed atomic adds. The whole surface is
//! gated on [`crate::ServeConfig::metrics`]: the catalog is registered
//! either way (so [`crate::ServeEngine::metrics_snapshot`] always renders
//! a complete, if zeroed, exposition), but with metrics off every
//! recording method returns after one branch.
//!
//! See `docs/OBSERVABILITY.md` for the full metric catalog and naming
//! conventions.

use crate::config::ServeConfig;
use crate::engine::ServeError;
use rtr_core::Measure;
use rtr_distributed::{BlockCacheMetrics, DistributedStats};
use rtr_obs::{Counter, Gauge, Histogram, Registry, Unit};
use std::sync::Arc;
use std::time::Duration;

/// The measures a response can carry, as stable label values. Index order
/// matches [`measure_idx`].
pub(crate) const MEASURE_LABELS: [&str; 4] = ["f", "t", "rtr", "rtr_plus"];

/// Dense index of a measure into per-measure instrument arrays.
pub(crate) fn measure_idx(measure: Measure) -> usize {
    match measure {
        Measure::F => 0,
        Measure::T => 1,
        Measure::Rtr => 2,
        Measure::RtrPlus { .. } => 3,
    }
}

/// Pre-registered handles for everything the scheduler and serving paths
/// record. Cheap to clone into worker closures (`Arc`s all the way down).
pub(crate) struct ServeMetrics {
    /// Mirror of [`ServeConfig::metrics`]: when false, recording is a
    /// single branch and nothing is touched.
    pub(crate) enabled: bool,
    responses: [Arc<Counter>; 4],
    latency: [Arc<Histogram>; 4],
    queue_wait: Arc<Histogram>,
    compute: Arc<Histogram>,
    err_query: Arc<Counter>,
    err_backend: Arc<Counter>,
    err_panicked: Arc<Counter>,
    routed_fallback: Arc<Counter>,
    fast_path: Arc<Counter>,
    attached: Arc<Counter>,
    steals: Arc<Counter>,
    parks: Arc<Counter>,
    pub(crate) injector_depth: Arc<Gauge>,
    pub(crate) cache_enabled: Arc<Gauge>,
    wire_bytes: Arc<Counter>,
    fetch_rounds: Arc<Counter>,
    blocks_fetched: Arc<Counter>,
    blocks_prefetched: Arc<Counter>,
    blocks_from_cache: Arc<Counter>,
}

impl ServeMetrics {
    /// Register the full catalog in `registry` and capture handles.
    /// Histograms are sharded for `workers` recorders plus the submitting
    /// thread (the fast path records inline).
    pub(crate) fn new(registry: &Registry, config: &ServeConfig) -> ServeMetrics {
        let shards = config.workers.max(1) + 1;
        let hist = |name: &str, label: &str, help: &str| {
            registry.histogram_with(name, &[("measure", label)], help, Unit::Nanoseconds, shards)
        };
        ServeMetrics {
            enabled: config.metrics,
            responses: MEASURE_LABELS.map(|m| {
                registry.counter_with(
                    "rtr_serve_responses_total",
                    &[("measure", m)],
                    "Responses sent, by measure (errors included).",
                )
            }),
            latency: MEASURE_LABELS.map(|m| {
                hist(
                    "rtr_serve_latency_seconds",
                    m,
                    "End-to-end latency (queue wait + compute), by measure.",
                )
            }),
            queue_wait: registry.histogram_with(
                "rtr_serve_queue_wait_seconds",
                &[],
                "Time between submission and a worker picking the request up.",
                Unit::Nanoseconds,
                shards,
            ),
            compute: registry.histogram_with(
                "rtr_serve_compute_seconds",
                &[],
                "Time spent serving a picked-up request (cache lookups included).",
                Unit::Nanoseconds,
                shards,
            ),
            err_query: registry.counter_with(
                "rtr_serve_errors_total",
                &[("kind", "query")],
                "Requests that failed, by error kind.",
            ),
            err_backend: registry.counter_with(
                "rtr_serve_errors_total",
                &[("kind", "backend")],
                "Requests that failed, by error kind.",
            ),
            err_panicked: registry.counter_with(
                "rtr_serve_errors_total",
                &[("kind", "panicked")],
                "Requests that failed, by error kind.",
            ),
            routed_fallback: registry.counter(
                "rtr_serve_routed_fallback_total",
                "Requests routed to an absent backend and served locally instead.",
            ),
            fast_path: registry.counter(
                "rtr_serve_fast_path_total",
                "Requests completed inline on the submitting thread.",
            ),
            attached: registry.counter(
                "rtr_serve_attached_total",
                "Requests that attached to an identical in-flight computation.",
            ),
            steals: registry.counter(
                "rtr_serve_steals_total",
                "Jobs a worker stole from a sibling's queue.",
            ),
            parks: registry.counter(
                "rtr_serve_parks_total",
                "Times a worker went to sleep with no work in sight.",
            ),
            injector_depth: registry.gauge(
                "rtr_serve_injector_depth",
                "Jobs waiting in the shared injector (polled at snapshot).",
            ),
            cache_enabled: registry.gauge(
                "rtr_serve_cache_enabled",
                "1 when the result cache is configured, 0 when disabled \
                 (distinguishes a disabled cache from an idle one).",
            ),
            wire_bytes: registry.counter(
                "rtr_dist_wire_bytes_total",
                "Payload bytes received over the AP/GP wire.",
            ),
            fetch_rounds: registry.counter(
                "rtr_dist_fetch_rounds_total",
                "Batched AP/GP fetch rounds issued (demand + prefetch).",
            ),
            blocks_fetched: registry.counter(
                "rtr_dist_blocks_fetched_total",
                "Demanded node blocks received over the wire.",
            ),
            blocks_prefetched: registry.counter(
                "rtr_dist_blocks_prefetched_total",
                "Speculatively prefetched node blocks received over the wire.",
            ),
            blocks_from_cache: registry.counter(
                "rtr_dist_blocks_from_cache_total",
                "Demanded node blocks served from a worker's warm block cache.",
            ),
        }
    }

    /// Record one sent response: per-measure count and latency split,
    /// error/fallback/fast-path counters, and — for a response that
    /// *computed* on the distributed backend (`!from_cache`; cached
    /// responses replay the original run's stats) — the wire cost.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_response(
        &self,
        measure: Measure,
        queue_wait: Duration,
        compute: Duration,
        error: Option<&ServeError>,
        distributed: Option<&DistributedStats>,
        routed_fallback: bool,
        fast_path: bool,
        from_cache: bool,
    ) {
        if !self.enabled {
            return;
        }
        let i = measure_idx(measure);
        self.responses[i].inc();
        self.latency[i].record_duration(queue_wait + compute);
        self.queue_wait.record_duration(queue_wait);
        self.compute.record_duration(compute);
        if routed_fallback {
            self.routed_fallback.inc();
        }
        if fast_path {
            self.fast_path.inc();
        }
        match error {
            Some(ServeError::Query(_)) => self.err_query.inc(),
            Some(ServeError::Backend(_)) => self.err_backend.inc(),
            Some(ServeError::Panicked(_)) => self.err_panicked.inc(),
            None => {}
        }
        if !from_cache {
            if let Some(stats) = distributed {
                self.wire_bytes.add(stats.bytes_transferred as u64);
                self.fetch_rounds.add(stats.fetch_requests as u64);
                self.blocks_fetched.add(stats.blocks_fetched as u64);
                self.blocks_prefetched.add(stats.blocks_prefetched as u64);
                self.blocks_from_cache.add(stats.blocks_from_cache as u64);
            }
        }
    }

    /// A request attached to an in-flight computation.
    #[inline]
    pub(crate) fn on_attach(&self) {
        if self.enabled {
            self.attached.inc();
        }
    }

    /// A worker stole a job from a sibling.
    #[inline]
    pub(crate) fn on_steal(&self) {
        if self.enabled {
            self.steals.inc();
        }
    }

    /// A worker found no work and is about to park.
    #[inline]
    pub(crate) fn on_park(&self) {
        if self.enabled {
            self.parks.inc();
        }
    }

    /// Per-worker block-cache counters
    /// (`rtr_dist_block_cache_*_total{worker="i"}`) for arming a worker's
    /// [`rtr_distributed::BlockCache`], or `None` with metrics off.
    pub(crate) fn block_cache(
        &self,
        registry: &Registry,
        worker: usize,
    ) -> Option<BlockCacheMetrics> {
        if !self.enabled {
            return None;
        }
        let w = worker.to_string();
        let labels: [(&str, &str); 1] = [("worker", &w)];
        Some(BlockCacheMetrics {
            hits: registry.counter_with(
                "rtr_dist_block_cache_hits_total",
                &labels,
                "Warm block-cache hits, per AP worker.",
            ),
            evictions: registry.counter_with(
                "rtr_dist_block_cache_evictions_total",
                &labels,
                "Resident blocks dropped over budget between queries, per AP worker.",
            ),
            invalidations: registry.counter_with(
                "rtr_dist_block_cache_invalidations_total",
                &labels,
                "Resident blocks dropped on a graph-epoch change, per AP worker.",
            ),
        })
    }
}
