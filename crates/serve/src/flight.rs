//! Single-flight deduplication and in-flight request batching.
//!
//! When M identical queries are in flight at once, only the first should
//! pay for the computation; the rest share its result. The primitive is a
//! table of in-flight keys behind a mutex, each holding the list of
//! requests that arrived *while* the key was computing. Two consumption
//! styles share it:
//!
//! * **Blocking** ([`SchedulerMode::SharedQueue`](crate::SchedulerMode)):
//!   later claimants call [`InFlight::wait`] and park on the condvar until
//!   the key is released, then re-check the cache — the engine's original
//!   behavior, which costs one blocked worker thread per duplicate.
//! * **Attaching** ([`SchedulerMode::WorkStealing`](crate::SchedulerMode)):
//!   later claimants [`InFlight::attach_or_claim`] their job onto the
//!   owner's entry and return to serving other traffic. When the owner
//!   [`InFlight::finish`]es it receives everything that attached and
//!   answers it from the shared result — no thread ever blocks.
//!
//! Progress is guaranteed because a key is only ever claimed by a caller
//! actively running its job: the computing owner never waits, so waiters
//! (blocking or attached) always have a live computation to wait for. If
//! the computation fails (the result is never cached), each duplicate is
//! recomputed individually — errors are cheap to recompute and
//! deterministic, so answers are unchanged.

use crate::rtr_sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::hash::Hash;

/// A table of keys currently being computed, each carrying the jobs that
/// attached to it while it ran.
///
/// `pub` (rather than `pub(crate)`) so the `rtr_check`-only
/// [`crate::check_api`] can re-export it for model checking; the module
/// itself stays private, so production builds expose nothing.
pub struct InFlight<K, J> {
    inner: Mutex<HashMap<K, Vec<J>>>,
    done: Condvar,
}

impl<K: Hash + Eq + Clone, J> Default for InFlight<K, J> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, J> InFlight<K, J> {
    /// Create an empty in-flight table.
    pub fn new() -> Self {
        InFlight {
            inner: Mutex::new(HashMap::new()),
            done: Condvar::new(),
        }
    }

    /// Try to claim `key`. `true` means the caller owns the computation
    /// and must call [`InFlight::finish`] when done (on every path).
    pub fn begin(&self, key: &K) -> bool {
        // invariant: only map ops run under the table lock (here and in
        // every method below), so it cannot be poisoned.
        let mut guard = self.inner.lock().expect("in-flight table poisoned");
        if guard.contains_key(key) {
            false
        } else {
            guard.insert(key.clone(), Vec::new());
            true
        }
    }

    /// Claim `key` (returning the job to its caller, now the owner) or, if
    /// it is already being computed, attach `job` to the owner's entry —
    /// the owner's [`InFlight::finish`] will hand it back for answering.
    /// Exactly one of the two happens, atomically.
    pub fn attach_or_claim(&self, key: &K, job: J) -> Option<J> {
        // invariant: see begin() — no user code runs under the lock.
        let mut guard = self.inner.lock().expect("in-flight table poisoned");
        match guard.get_mut(key) {
            Some(attached) => {
                attached.push(job);
                None
            }
            None => {
                guard.insert(key.clone(), Vec::new());
                Some(job)
            }
        }
    }

    /// Block until `key` is no longer in flight. Spurious wakeups are
    /// absorbed by re-checking membership.
    pub fn wait(&self, key: &K) {
        // invariant: see begin() — no user code runs under the lock
        // (×2, the condvar reacquisition included).
        let mut guard = self.inner.lock().expect("in-flight table poisoned");
        while guard.contains_key(key) {
            guard = self.done.wait(guard).expect("in-flight table poisoned");
        }
    }

    /// Release `key`, wake all blocking waiters (each re-checks the
    /// cache), and return every job that attached while the owner
    /// computed — the owner must answer (or re-enqueue) each of them.
    pub fn finish(&self, key: &K) -> Vec<J> {
        let attached = self
            .inner
            .lock()
            // invariant: see begin() — no user code under the lock.
            .expect("in-flight table poisoned")
            .remove(key)
            .unwrap_or_default();
        self.done.notify_all();
        attached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn first_claim_wins_until_finished() {
        let f: InFlight<u32, ()> = InFlight::new();
        assert!(f.begin(&1));
        assert!(!f.begin(&1));
        assert!(f.begin(&2), "distinct keys are independent");
        f.finish(&1);
        assert!(f.begin(&1), "released key is claimable again");
    }

    #[test]
    fn waiters_block_until_finish() {
        let f = Arc::new(InFlight::<u32, ()>::new());
        let woke = Arc::new(AtomicUsize::new(0));
        assert!(f.begin(&7));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let woke = Arc::clone(&woke);
                std::thread::spawn(move || {
                    f.wait(&7);
                    // ordering: Relaxed — the final assert reads after
                    // join(), which already gives happens-before; SeqCst
                    // would add nothing.
                    woke.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        // Give the waiters time to park; none may wake early.
        std::thread::sleep(std::time::Duration::from_millis(50));
        // ordering: Relaxed — a timing check, not a synchronization one.
        assert_eq!(woke.load(Ordering::Relaxed), 0);
        f.finish(&7);
        for w in waiters {
            w.join().unwrap();
        }
        // ordering: Relaxed — join() established happens-before.
        assert_eq!(woke.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn wait_on_idle_key_returns_immediately() {
        let f: InFlight<u32, ()> = InFlight::new();
        f.wait(&99); // must not block
    }

    #[test]
    fn attach_or_claim_claims_an_idle_key() {
        let f: InFlight<u32, &str> = InFlight::new();
        assert_eq!(f.attach_or_claim(&3, "job"), Some("job"));
        // The caller now owns the key, exactly as if it had begun it.
        assert!(!f.begin(&3));
        assert!(f.finish(&3).is_empty(), "nothing attached");
    }

    #[test]
    fn attached_jobs_come_back_to_the_owner_in_order() {
        let f: InFlight<u32, u32> = InFlight::new();
        assert_eq!(f.attach_or_claim(&5, 0), Some(0));
        for dup in 1..=3 {
            assert_eq!(f.attach_or_claim(&5, dup), None, "duplicates attach");
        }
        assert_eq!(f.finish(&5), vec![1, 2, 3]);
        // The key is free again; a fresh claim starts an empty entry.
        assert_eq!(f.attach_or_claim(&5, 9), Some(9));
        assert!(f.finish(&5).is_empty());
    }

    #[test]
    fn attach_and_blocking_wait_interoperate() {
        let f = Arc::new(InFlight::<u32, u32>::new());
        assert!(f.begin(&1));
        assert_eq!(f.attach_or_claim(&1, 7), None);
        let waiter = {
            let f = Arc::clone(&f);
            std::thread::spawn(move || f.wait(&1))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(f.finish(&1), vec![7]);
        waiter.join().unwrap(); // finish released the blocking waiter too
    }
}
