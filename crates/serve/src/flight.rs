//! Single-flight deduplication.
//!
//! When M identical queries are in flight at once, only the first should
//! pay for the computation; the rest wait and read the shared result out
//! of the cache. The primitive is a set of in-flight keys behind a mutex
//! plus a condvar: the first claimant of a key computes, later claimants
//! block until the key is released and then re-check the cache.
//!
//! Progress is guaranteed because a key is only ever claimed by a worker
//! that is actively running its job: the computing worker never waits, so
//! waiters always have a live computation to wait *for*. If the
//! computation fails (the result is never cached), each waiter wakes,
//! misses, and claims the key itself — errors are cheap to recompute and
//! deterministic, so answers are unchanged.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::{Condvar, Mutex};

/// A table of keys currently being computed.
pub(crate) struct InFlight<K> {
    inner: Mutex<HashSet<K>>,
    done: Condvar,
}

impl<K: Hash + Eq + Clone> InFlight<K> {
    pub(crate) fn new() -> Self {
        InFlight {
            inner: Mutex::new(HashSet::new()),
            done: Condvar::new(),
        }
    }

    /// Try to claim `key`. `true` means the caller owns the computation
    /// and must call [`InFlight::finish`] when done (on every path).
    pub(crate) fn begin(&self, key: &K) -> bool {
        self.inner
            .lock()
            .expect("in-flight table poisoned")
            .insert(key.clone())
    }

    /// Block until `key` is no longer in flight. Spurious wakeups are
    /// absorbed by re-checking membership.
    pub(crate) fn wait(&self, key: &K) {
        let mut guard = self.inner.lock().expect("in-flight table poisoned");
        while guard.contains(key) {
            guard = self.done.wait(guard).expect("in-flight table poisoned");
        }
    }

    /// Release `key` and wake all waiters (each re-checks the cache).
    pub(crate) fn finish(&self, key: &K) {
        self.inner
            .lock()
            .expect("in-flight table poisoned")
            .remove(key);
        self.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn first_claim_wins_until_finished() {
        let f: InFlight<u32> = InFlight::new();
        assert!(f.begin(&1));
        assert!(!f.begin(&1));
        assert!(f.begin(&2), "distinct keys are independent");
        f.finish(&1);
        assert!(f.begin(&1), "released key is claimable again");
    }

    #[test]
    fn waiters_block_until_finish() {
        let f = Arc::new(InFlight::<u32>::new());
        let woke = Arc::new(AtomicUsize::new(0));
        assert!(f.begin(&7));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let woke = Arc::clone(&woke);
                std::thread::spawn(move || {
                    f.wait(&7);
                    woke.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // Give the waiters time to park; none may wake early.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(woke.load(Ordering::SeqCst), 0);
        f.finish(&7);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(woke.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn wait_on_idle_key_returns_immediately() {
        let f: InFlight<u32> = InFlight::new();
        f.wait(&99); // must not block
    }
}
