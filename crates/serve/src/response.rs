//! Responses and the non-blocking submission handle.
//!
//! A [`QueryResponse`] reports not just the ranking but the request as it
//! actually ran ([`ResolvedRequest`]: scheme, params, effective k), its
//! **backend provenance** — which execution backend produced the ranking
//! (a distributed engine records its local fallbacks here) plus, for
//! genuinely distributed answers, the wire cost paid
//! ([`DistributedStats`]: bytes transferred, fetch rounds, resident
//! active-set size — the paper's Fig. 12 measurements) — whether it was
//! served from the result cache, and the latency split into queue-wait
//! (submission → a worker picked it up) and compute (the worker's serving
//! time, cache lookups included). The split is what makes saturation
//! visible: under load, queue-wait grows while compute stays flat.

use crate::backend::BackendKind;
use crate::engine::ServeError;
use crate::request::ResolvedRequest;
use crossbeam::channel::Receiver;
use rtr_distributed::DistributedStats;
use rtr_obs::QueryTrace;
use rtr_topk::TopKResult;
use std::sync::Arc;
use std::time::Duration;

/// One served request's outcome.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Position of the request in its batch (batch APIs return responses
    /// sorted by this; [`crate::ServeEngine::submit`] always uses 0).
    pub id: usize,
    /// The request exactly as it ran: canonical query, measure, and the
    /// params/topk/scheme actually used after fallback resolution.
    pub request: ResolvedRequest,
    /// The ranking, or the per-request error. The result is shared
    /// (`Arc`): a cache hit hands out another reference to the stored
    /// ranking instead of deep-cloning its vectors.
    pub result: Result<Arc<TopKResult>, ServeError>,
    /// Which backend produced the ranking. For a cache hit this is the
    /// backend that originally computed the entry (backends are
    /// bit-identical, so entries are shared across them — provenance is
    /// preserved with the cached value); for a failed request, the backend
    /// that was routed to.
    pub backend: BackendKind,
    /// `true` when this request's per-query route asked for a backend the
    /// engine does not have (e.g. [`BackendKind::Distributed`] on a
    /// local-only engine) and the engine deterministically fell back to
    /// local execution. Routing never changes the answer; this flag makes
    /// the substitution observable instead of silent.
    pub routed_fallback: bool,
    /// Wire cost of a genuinely distributed execution (`None` for local
    /// runs, recorded fallbacks, and failed requests). Preserved through
    /// the cache: a hit reports the cost the original computation paid —
    /// the serving of the hit itself crossed no wire.
    pub distributed: Option<DistributedStats>,
    /// Whether the ranking came out of the result cache (including a
    /// result shared from another request's in-flight computation) rather
    /// than an engine run of this request.
    pub from_cache: bool,
    /// Index of the worker thread that picked this request off the queue,
    /// or `None` when it never queued at all — served inline on the
    /// submitting thread by the size-aware fast path
    /// ([`crate::SchedulerMode::WorkStealing`]), or by the serial
    /// reference executor. Lets load benches split queued from
    /// fast-pathed traffic and attribute per-worker latency effects.
    pub worker: Option<usize>,
    /// Time between submission and a worker picking the request up.
    pub queue_wait: Duration,
    /// Time the worker spent serving it (cache lookup + engine run).
    pub compute: Duration,
    /// The request's life story, when the engine ran with
    /// [`crate::ServeConfig::tracing`] enabled: timestamped
    /// [`rtr_obs::TraceStage`] events from submission to response. `None`
    /// with tracing off (the default) — disabled tracing allocates
    /// nothing and records nothing.
    pub trace: Option<Box<QueryTrace>>,
}

impl QueryResponse {
    /// End-to-end latency: queue-wait plus compute.
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.compute
    }
}

/// A non-blocking handle to one submitted request.
///
/// Returned by [`crate::ServeEngine::submit`]; the worker pool computes in
/// the background while the caller holds the ticket. Join with
/// [`QueryTicket::wait`], or poll with [`QueryTicket::try_wait`].
#[derive(Debug)]
pub struct QueryTicket {
    pub(crate) reply: Receiver<QueryResponse>,
}

impl QueryTicket {
    /// Block until the response is ready.
    ///
    /// # Panics
    /// If the engine was torn down so abruptly that the request can never
    /// complete (cannot happen through the public API: shutdown drains the
    /// job queue first).
    pub fn wait(self) -> QueryResponse {
        self.reply
            .recv()
            // invariant: shutdown drains the queue before workers exit
            // (see Panics above) — the reply outlives its sender.
            .expect("serve worker dropped a submitted request")
    }

    /// The response if it is already ready, else the ticket back.
    pub fn try_wait(self) -> Result<QueryResponse, QueryTicket> {
        match self.reply.try_recv() {
            Ok(response) => Ok(response),
            Err(_) => Err(self),
        }
    }
}
