//! Self-describing query requests.
//!
//! The paper's point is that *one* graph answers many kinds of proximity
//! queries — F-Rank (importance), T-Rank (specificity), RoundTripRank, and
//! RoundTripRank+ with a per-query bias β, over single- and multi-node
//! query sets. [`QueryRequest`] makes all of that per-request state: a
//! query (canonicalized at construction), a [`Measure`], an optional `k`,
//! and optional [`RankParams`] / [`TopKConfig`] / [`Scheme`] overrides
//! that fall back to the engine's [`crate::ServeConfig`] defaults. One
//! worker pool therefore serves the whole measure/β/k/scheme space, and
//! the result cache stays bit-correct because every one of these inputs is
//! part of the cache key.
//!
//! **Dispatch.** [`ResolvedRequest::run`] picks the engine path by
//! measure, query arity, and k:
//!
//! | measure | single-node, k < \|V\| | multi-node, or k ≥ \|V\| |
//! |---|---|---|
//! | `Rtr` | [`TwoSBound`] bound search (the paper's online algorithm) | exact linearity reduction ([`RoundTripRank`]) |
//! | `RtrPlus{β}` | [`TwoSBoundPlus`] bound search | exact linearity reduction ([`RoundTripRankPlus`]) |
//! | `F` / `T` | exact fixed-point iteration | exact fixed-point iteration (weighted start vector) |
//!
//! (A full ranking — k ≥ \|V\| — gives a bound search nothing to prune,
//! so those requests run the exact engine: cheaper *and* zero-width
//! bounds.)
//!
//! The bound paths reuse the worker's persistent [`TopKWorkspace`]; the
//! exact paths reuse its [`IterWorkspace`] dense vectors. Exact paths
//! return a [`TopKResult`] whose bounds collapse to the exact scores
//! (`lower == upper`), whose `expansions` counts fixed-point iterations
//! where the engine surfaces them (0 for the product measures), and whose
//! active set is empty — they touch the whole graph, so there is no
//! neighborhood to report.

use crate::backend::BackendKind;
use crate::config::ServeConfig;
use rtr_cache::CacheKey;
use rtr_core::iterative::{iterate_with, Direction};
use rtr_core::prelude::*;
use rtr_core::IterWorkspace;
use rtr_distributed::{BlockCache, DistributedWorkspace};
use rtr_graph::{Graph, NodeId};
use rtr_topk::{
    ActiveSetStats, Scheme, TopKConfig, TopKResult, TopKWorkspace, TwoSBound, TwoSBoundPlus,
};

/// One self-describing query: what to rank, by which measure, and under
/// which (optionally overridden) parameters.
///
/// ```
/// use rtr_core::Measure;
/// use rtr_graph::NodeId;
/// use rtr_serve::QueryRequest;
///
/// // Default: single-node RoundTripRank with the engine's defaults.
/// let r = QueryRequest::node(NodeId(3));
/// assert_eq!(r.measure(), Measure::Rtr);
///
/// // Per-request measure, β, and k.
/// let r = QueryRequest::node(NodeId(3))
///     .with_measure(Measure::RtrPlus { beta: 0.7 })
///     .with_k(5);
/// assert_eq!(r.k(), Some(5));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    query: Query,
    measure: Measure,
    k: Option<usize>,
    params: Option<RankParams>,
    topk: Option<TopKConfig>,
    scheme: Option<Scheme>,
    backend: Option<BackendKind>,
}

impl QueryRequest {
    /// A request for `query`, canonicalized ([`Query::canonicalize`]) so
    /// that order-permuted copies of one weighted node set are the same
    /// request — same computation, same cache entry. Defaults to
    /// RoundTripRank with every parameter inherited from the engine.
    pub fn new(query: Query) -> Self {
        QueryRequest {
            query: query.canonicalize(),
            measure: Measure::Rtr,
            k: None,
            params: None,
            topk: None,
            scheme: None,
            backend: None,
        }
    }

    /// A single-node request (the pre-PR-4 API's query shape).
    pub fn node(node: NodeId) -> Self {
        Self::new(Query::single(node))
    }

    /// A uniform multi-node request (each node weighted `1/|Q|`).
    pub fn nodes(nodes: &[NodeId]) -> Self {
        Self::new(Query::uniform(nodes))
    }

    /// This request ranked by `measure`.
    pub fn with_measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }

    /// This request with a per-query `k` (overrides the engine's
    /// `TopKConfig::k`, and any [`QueryRequest::with_topk`] override's).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// This request with its own random-walk parameters.
    pub fn with_params(mut self, params: RankParams) -> Self {
        self.params = Some(params);
        self
    }

    /// This request with its own top-K search configuration.
    pub fn with_topk(mut self, topk: TopKConfig) -> Self {
        self.topk = Some(topk);
        self
    }

    /// This request with its own computational scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// This request routed to a specific execution backend, overriding the
    /// engine's default. Routing never changes the answer (backends are
    /// bit-identical and an unavailable backend falls back to local,
    /// recorded in the response) and is **not** part of the cache key —
    /// local and distributed traffic share entries.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The (canonicalized) query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The requested measure.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// The per-query `k` override, if any.
    pub fn k(&self) -> Option<usize> {
        self.k
    }

    /// The per-query backend routing override, if any.
    pub fn backend(&self) -> Option<BackendKind> {
        self.backend
    }

    /// The per-query random-walk parameter override, if any.
    pub fn params(&self) -> Option<RankParams> {
        self.params
    }

    /// The per-query top-K configuration override, if any (the separate
    /// [`QueryRequest::k`] override is *not* folded in here; resolution
    /// applies it on top).
    pub fn topk(&self) -> Option<TopKConfig> {
        self.topk
    }

    /// The per-query scheme override, if any.
    pub fn scheme(&self) -> Option<Scheme> {
        self.scheme
    }

    /// Fill every unset field from `defaults`, producing the exact
    /// parameter set a worker will run (and a response will report).
    pub fn resolve(&self, defaults: &ServeConfig) -> ResolvedRequest {
        let mut topk = self.topk.unwrap_or(defaults.topk);
        if let Some(k) = self.k {
            topk.k = k;
        }
        ResolvedRequest {
            query: self.query.clone(),
            measure: self.measure,
            params: self.params.unwrap_or(defaults.params),
            topk,
            scheme: self.scheme.unwrap_or(defaults.scheme),
            route: self.backend,
        }
    }
}

/// A [`QueryRequest`] with every fallback applied: exactly what ran.
/// Responses carry this so callers see the scheme/params actually used.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedRequest {
    /// The canonicalized query.
    pub query: Query,
    /// The measure ranked by.
    pub measure: Measure,
    /// The random-walk parameters used.
    pub params: RankParams,
    /// The top-K configuration used (per-request `k` already applied).
    pub topk: TopKConfig,
    /// The computational scheme used (bound paths only; exact paths are
    /// scheme-independent).
    pub scheme: Scheme,
    /// The requested backend routing override (`None` = the engine's
    /// default backend). Deliberately **not** part of the cache key:
    /// backends return bit-identical rankings, so where a result was
    /// computed never determines whether it may be reused.
    pub route: Option<BackendKind>,
}

impl ResolvedRequest {
    /// The result-cache identity of this request on a graph stamped
    /// `epoch`. Covers every output-relevant input, so heterogeneous
    /// traffic through one cache can never alias.
    pub fn cache_key(&self, epoch: u64) -> CacheKey {
        CacheKey::new(
            &self.query,
            self.measure,
            epoch,
            &self.params,
            &self.topk,
            self.scheme,
        )
    }

    /// Run this request on the **local** execution path, reusing `ws`'s
    /// buffers, dispatching on measure and query arity (see the
    /// [module docs](self)). This is what [`crate::LocalBackend`] executes
    /// (and what a distributed backend falls back to); routed serving goes
    /// through [`crate::ExecBackend`] instead.
    pub fn run(&self, g: &Graph, ws: &mut ServeWorkspace) -> Result<TopKResult, CoreError> {
        self.measure.validate()?;
        // A bound search can only win by *pruning*; a full ranking
        // (k ≥ |V|) prunes nothing, so exact scoring is both cheaper and
        // tight. Only sub-|V| single-node requests take the bound engines.
        let bound_query = match self.query.nodes() {
            [q] if self.topk.k < g.node_count() => Some(*q),
            _ => None,
        };
        match self.measure {
            Measure::F => self.run_exact_iteration(g, ws, Direction::Forward),
            Measure::T => self.run_exact_iteration(g, ws, Direction::Backward),
            Measure::Rtr => {
                if let Some(q) = bound_query {
                    TwoSBound::with_scheme(self.params, self.topk, self.scheme).run_with(
                        g,
                        q,
                        &mut ws.topk,
                    )
                } else {
                    let scores = RoundTripRank::new(self.params).compute(g, &self.query)?;
                    Ok(exact_to_topk(&scores, self.topk.k, 0))
                }
            }
            Measure::RtrPlus { beta } => {
                if let Some(q) = bound_query {
                    TwoSBoundPlus::with_scheme(self.params, self.topk, self.scheme, beta)?.run_with(
                        g,
                        q,
                        &mut ws.topk,
                    )
                } else {
                    let scores =
                        RoundTripRankPlus::new(self.params, beta)?.compute(g, &self.query)?;
                    Ok(exact_to_topk(&scores, self.topk.k, 0))
                }
            }
        }
    }

    fn run_exact_iteration(
        &self,
        g: &Graph,
        ws: &mut ServeWorkspace,
        direction: Direction,
    ) -> Result<TopKResult, CoreError> {
        let (scores, stats) = iterate_with(&mut ws.iter, g, &self.query, &self.params, direction)?;
        Ok(exact_to_topk(&scores, self.topk.k, stats.iterations))
    }
}

/// Everything one worker needs to serve any request: the sparse top-K
/// workspace for the bound engines and the dense iteration workspace for
/// the exact ones. Both survive between queries, so steady-state serving
/// stays allocation-free on the bound paths and down to one unavoidable
/// `|V|`-sized allocation (the returned score vector) on the exact ones.
#[derive(Debug, Default)]
pub struct ServeWorkspace {
    /// Sparse per-query state for [`TwoSBound`] / [`TwoSBoundPlus`].
    pub topk: TopKWorkspace,
    /// Dense per-query state for the exact fixed-point iterations.
    pub iter: IterWorkspace,
    /// AP-side state for the distributed bound engines (untouched while
    /// serving on the local backend).
    pub dist: DistributedWorkspace,
}

impl ServeWorkspace {
    /// A workspace (all buffers empty) ready for any graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for a graph of `n` nodes. The sparse top-K
    /// buffers and dense iteration vectors are allocated up front, so a
    /// worker's first query is served from warm buffers instead of paying
    /// the O(n) index-array allocations mid-request. Results are identical
    /// to a lazily grown workspace; only the first-query latency changes.
    pub fn with_capacity(n: usize) -> Self {
        ServeWorkspace {
            topk: TopKWorkspace::with_capacity(n),
            iter: IterWorkspace::with_capacity(n),
            dist: DistributedWorkspace::default(),
        }
    }

    /// A workspace pre-sized like [`ServeWorkspace::with_capacity`] whose
    /// AP-side block cache runs with the engine-configured limits
    /// ([`ServeConfig::block_prefetch_limit`] /
    /// [`ServeConfig::block_cache_blocks`]) instead of the crate defaults.
    /// This is how every pool worker builds its workspace; local backends
    /// never touch `dist`, so the knobs are inert for them.
    pub fn for_engine(n: usize, config: &ServeConfig) -> Self {
        ServeWorkspace {
            topk: TopKWorkspace::with_capacity(n),
            iter: IterWorkspace::with_capacity(n),
            dist: DistributedWorkspace::with_cache(BlockCache::with_limits(
                config.block_prefetch_limit,
                config.block_cache_blocks,
            )),
        }
    }
}

/// Collapse an exact score vector into the serving result shape: top-k
/// ranking, zero-width bounds, empty active set.
fn exact_to_topk(scores: &ScoreVec, k: usize, expansions: usize) -> TopKResult {
    let ranking = scores.top_k(k);
    let bounds = ranking
        .iter()
        .map(|&v| (scores.score(v), scores.score(v)))
        .collect();
    TopKResult {
        ranking,
        bounds,
        expansions,
        converged: true,
        active: ActiveSetStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    fn toy_defaults() -> ServeConfig {
        ServeConfig::default().with_topk(TopKConfig::toy())
    }

    #[test]
    fn defaults_fall_back_to_engine_config() {
        let defaults = toy_defaults();
        let r = QueryRequest::node(NodeId(1)).resolve(&defaults);
        assert_eq!(r.measure, Measure::Rtr);
        assert_eq!(r.params, defaults.params);
        assert_eq!(r.topk, defaults.topk);
        assert_eq!(r.scheme, defaults.scheme);
    }

    #[test]
    fn overrides_apply_and_k_wins_over_topk_override() {
        let defaults = toy_defaults();
        let own = TopKConfig {
            k: 7,
            epsilon: 0.5,
            ..TopKConfig::default()
        };
        let r = QueryRequest::node(NodeId(1))
            .with_measure(Measure::T)
            .with_topk(own)
            .with_k(3)
            .with_params(RankParams::with_alpha(0.4))
            .with_scheme(Scheme::Gupta)
            .resolve(&defaults);
        assert_eq!(r.measure, Measure::T);
        assert_eq!(r.topk.k, 3, "with_k overrides the topk override's k");
        assert_eq!(r.topk.epsilon, 0.5);
        assert_eq!(r.params.alpha, 0.4);
        assert_eq!(r.scheme, Scheme::Gupta);
    }

    #[test]
    fn construction_canonicalizes_the_query() {
        let a = QueryRequest::new(Query::weighted(&[(NodeId(4), 3.0), (NodeId(1), 1.0)]).unwrap());
        let b = QueryRequest::new(Query::weighted(&[(NodeId(1), 1.0), (NodeId(4), 3.0)]).unwrap());
        assert_eq!(a, b, "order-permuted requests are the same request");
        assert_eq!(a.query().nodes(), &[NodeId(1), NodeId(4)]);
    }

    #[test]
    fn permuted_requests_share_one_cache_key() {
        let defaults = toy_defaults();
        let a = QueryRequest::new(Query::weighted(&[(NodeId(4), 3.0), (NodeId(1), 1.0)]).unwrap());
        let b = QueryRequest::new(Query::weighted(&[(NodeId(1), 1.0), (NodeId(4), 3.0)]).unwrap());
        assert_eq!(
            a.resolve(&defaults).cache_key(9),
            b.resolve(&defaults).cache_key(9)
        );
        // β bit pattern separates keys.
        let c = a.clone().with_measure(Measure::RtrPlus { beta: 0.3 });
        let d = a.with_measure(Measure::RtrPlus { beta: 0.7 });
        assert_ne!(
            c.resolve(&defaults).cache_key(9),
            d.resolve(&defaults).cache_key(9)
        );
    }

    #[test]
    fn single_node_rtr_matches_direct_two_sbound() {
        let (g, ids) = fig2_toy();
        let defaults = toy_defaults();
        let resolved = QueryRequest::node(ids.t1).resolve(&defaults);
        let served = resolved.run(&g, &mut ServeWorkspace::new()).unwrap();
        let direct = TwoSBound::new(defaults.params, defaults.topk)
            .run(&g, ids.t1)
            .unwrap();
        assert_eq!(served.ranking, direct.ranking);
        assert_eq!(served.bounds, direct.bounds);
        assert_eq!(served.expansions, direct.expansions);
    }

    #[test]
    fn exact_measures_match_direct_engines() {
        let (g, ids) = fig2_toy();
        let defaults = toy_defaults();
        let k = defaults.topk.k;
        let q = Query::single(ids.t1);
        let mut ws = ServeWorkspace::new();

        let f = QueryRequest::node(ids.t1)
            .with_measure(Measure::F)
            .resolve(&defaults)
            .run(&g, &mut ws)
            .unwrap();
        let direct_f = FRank::new(defaults.params).compute(&g, &q).unwrap();
        assert_eq!(f.ranking, direct_f.top_k(k));
        for (v, &(lo, hi)) in f.ranking.iter().zip(&f.bounds) {
            assert_eq!(lo, direct_f.score(*v));
            assert_eq!(hi, lo, "exact bounds have zero width");
        }
        assert!(f.expansions > 0, "exact paths report iteration counts");

        let t = QueryRequest::node(ids.t1)
            .with_measure(Measure::T)
            .resolve(&defaults)
            .run(&g, &mut ws)
            .unwrap();
        let direct_t = TRank::new(defaults.params).compute(&g, &q).unwrap();
        assert_eq!(t.ranking, direct_t.top_k(k));
    }

    #[test]
    fn multi_node_rtr_uses_the_linearity_reduction() {
        let (g, ids) = fig2_toy();
        let defaults = toy_defaults();
        let request = QueryRequest::nodes(&[ids.t1, ids.t2]).with_k(6);
        let served = request
            .resolve(&defaults)
            .run(&g, &mut ServeWorkspace::new())
            .unwrap();
        let direct = RoundTripRank::new(defaults.params)
            .compute(&g, request.query())
            .unwrap();
        assert_eq!(served.ranking, direct.top_k(6));
        for (v, &(lo, hi)) in served.ranking.iter().zip(&served.bounds) {
            assert_eq!(lo, direct.score(*v));
            assert_eq!(hi, lo);
        }
    }

    #[test]
    fn full_ranking_requests_run_the_exact_engine() {
        // k ≥ |V| gives a bound search nothing to prune; the dispatch must
        // take the exact path — zero-width bounds over the whole graph.
        let (g, ids) = fig2_toy();
        let defaults = toy_defaults();
        let mut ws = ServeWorkspace::new();
        for measure in [Measure::Rtr, Measure::RtrPlus { beta: 0.7 }] {
            let served = QueryRequest::node(ids.t1)
                .with_measure(measure)
                .with_k(g.node_count())
                .resolve(&defaults)
                .run(&g, &mut ws)
                .unwrap();
            let exact = match measure {
                Measure::Rtr => RoundTripRank::new(defaults.params)
                    .compute(&g, &Query::single(ids.t1))
                    .unwrap(),
                _ => RoundTripRankPlus::new(defaults.params, 0.7)
                    .unwrap()
                    .compute(&g, &Query::single(ids.t1))
                    .unwrap(),
            };
            assert_eq!(served.ranking, exact.top_k(g.node_count()));
            for (v, &(lo, hi)) in served.ranking.iter().zip(&served.bounds) {
                assert_eq!(lo, exact.score(*v));
                assert_eq!(hi, lo, "full rankings come from the exact engine");
            }
        }
    }

    #[test]
    fn invalid_beta_is_a_per_request_error() {
        let (g, ids) = fig2_toy();
        let resolved = QueryRequest::node(ids.t1)
            .with_measure(Measure::RtrPlus { beta: 1.5 })
            .resolve(&toy_defaults());
        assert!(matches!(
            resolved.run(&g, &mut ServeWorkspace::new()),
            Err(CoreError::InvalidBeta(_))
        ));
    }

    #[test]
    fn empty_query_is_a_per_request_error() {
        let (g, _) = fig2_toy();
        let resolved = QueryRequest::nodes(&[]).resolve(&toy_defaults());
        assert!(matches!(
            resolved.run(&g, &mut ServeWorkspace::new()),
            Err(CoreError::EmptyQuery)
        ));
    }
}
