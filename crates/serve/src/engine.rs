//! The worker pool and its scheduler.
//!
//! One [`ServeEngine`] owns `workers` long-lived threads. Each worker pulls
//! jobs off the scheduler's queues, resolves nothing (requests arrive
//! pre-resolved against the engine defaults), dispatches on the request's
//! measure to the right engine path via [`ResolvedRequest::run`], and sends
//! a [`QueryResponse`] down the request's reply channel. Every worker owns
//! one persistent [`ServeWorkspace`] — the sparse top-K buffers for the
//! bound engines plus the dense vectors for the exact ones — pre-sized to
//! the graph at spawn (so even a worker's *first* query pays no O(|V|)
//! allocations), wiped in O(touched) between queries, and never freed while
//! the worker lives: steady-state serving is allocation-free on the bound
//! paths.
//!
//! **Scheduling** ([`SchedulerMode`]) never changes answers, only who runs
//! a request and how long it queues:
//!
//! * [`SchedulerMode::WorkStealing`] (default) — *size-aware dispatch*:
//!   submission first tries the fast path on the submitting thread (a
//!   cache hit, or a trivial k = 0 request, completes inline with zero
//!   queue wait and `worker: None`); everything else lands in a shared
//!   injector that workers batch-drain into per-worker queues, stealing
//!   from siblings when their own queue runs dry. Duplicate in-flight
//!   requests *attach* to the computing owner's ticket instead of parking
//!   a worker; the owner answers them all from the shared `Arc` when it
//!   finishes.
//! * [`SchedulerMode::SharedQueue`] — the engine's original scheduler (one
//!   shared MPMC channel, blocking single-flight waits), kept so the
//!   open-loop throughput bench can measure the new scheduler against the
//!   old one at equal offered load.
//!
//! Shutdown: the shared-queue mode hangs up the job sender so every
//! worker's `recv` errors out; the stealing mode raises a shutdown flag and
//! wakes every parked worker, each of which drains until no queue holds
//! work. Both then join the threads.

use crate::backend::{
    Backend, BackendKind, DistributedBackend, ExecBackend, ExecOutcome, LocalBackend,
};
use crate::config::{SchedulerMode, ServeConfig};
use crate::flight::InFlight;
use crate::metrics::ServeMetrics;
use crate::request::{QueryRequest, ResolvedRequest, ServeWorkspace};
use crate::response::{QueryResponse, QueryTicket};
use crate::rtr_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::rtr_sync::{Condvar, Mutex};
use crossbeam::channel::{self, Sender};
use crossbeam::deque;
use rtr_cache::{CacheConfig, CacheKey, CacheStats, ShardedCache};
use rtr_core::{CoreError, Measure};
use rtr_graph::{Graph, NodeId};
use rtr_obs::{MetricsSnapshot, QueryTrace, Registry, TraceStage};
use rtr_topk::TopKResult;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The engine's result cache: full execution outcomes (ranking + backend
/// provenance + wire cost), shared as `Arc`s so a hit never clones vectors
/// under the shard lock. Keys stay backend-agnostic — backends are
/// bit-identical, so local and distributed traffic share entries.
type OutcomeCache = ShardedCache<CacheKey, Arc<ExecOutcome>>;

/// Why a served query produced no result. Workers survive *any* failing
/// query — including one that panics inside the engine — so a bad query
/// can never hang or poison the rest of its batch.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The engine rejected or failed the query (e.g. an out-of-range node
    /// id, an invalid β).
    Query(CoreError),
    /// The execution backend failed *underneath* a valid query — e.g. a
    /// dead graph processor. The detail names the failed component
    /// ("graph processor 2 is not running"), so an operator can tell a bad
    /// request from a sick backend at a glance. The worker's buffers
    /// survive; it keeps serving.
    Backend(String),
    /// The query panicked inside the engine; the worker caught it,
    /// discarded its (possibly mid-mutation) workspace, and kept serving.
    Panicked(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::Backend(msg) => write!(f, "backend failed: {msg}"),
            ServeError::Panicked(msg) => write!(f, "query panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        match e {
            // An adjacency-source failure is the backend's fault, not the
            // request's: surface it distinctly, naming the component.
            CoreError::Adjacency(a) => ServeError::Backend(a.to_string()),
            e => ServeError::Query(e),
        }
    }
}

/// One served query's output, in the pre-PR-4 single-node batch shape
/// (see [`ServeEngine::run_batch`]). New code should prefer
/// [`QueryResponse`], which carries the full request and cache telemetry.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Position of the query in its batch (outputs are returned sorted by
    /// this, so a batch's outputs align with its input slice).
    pub id: usize,
    /// The query node.
    pub query: NodeId,
    /// The top-K result, or the per-query error.
    pub result: Result<TopKResult, ServeError>,
    /// Time between submission and a worker picking the query up.
    pub queue_wait: Duration,
    /// Time the worker spent serving it.
    pub compute: Duration,
}

impl QueryOutput {
    /// End-to-end latency: queue-wait plus compute.
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.compute
    }

    fn from_response(response: QueryResponse) -> QueryOutput {
        QueryOutput {
            id: response.id,
            query: response.request.query.nodes()[0],
            result: response.result.map(Arc::unwrap_or_clone),
            queue_wait: response.queue_wait,
            compute: response.compute,
        }
    }
}

/// Human-readable payload of a caught panic.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A unit of work: which request to run and where to send the response.
struct Job {
    id: usize,
    request: ResolvedRequest,
    enqueued: Instant,
    reply: Sender<QueryResponse>,
    /// The request's trace, carried with the job through every scheduler
    /// hop so each stage stamps into the same timeline. `None` unless the
    /// engine runs with [`ServeConfig::tracing`].
    trace: Option<Box<QueryTrace>>,
}

/// A job parked on a computing owner's in-flight ticket: who picked it up
/// and when, so the owner can report its latency split correctly when
/// answering it from the shared result.
struct AttachedJob {
    job: Job,
    worker: Option<usize>,
    picked: Instant,
}

/// The generation-counted parking lot for the work-stealing scheduler.
///
/// A worker reads the generation *before* scanning the queues and sleeps
/// only if it is unchanged afterwards; every push bumps the generation
/// under the same lock before notifying. A push that lands mid-scan
/// therefore turns the subsequent `sleep` into a no-op — no lost wakeups,
/// without holding any lock across the scan itself.
pub struct Park {
    gen: Mutex<u64>,
    ready: Condvar,
}

impl Default for Park {
    fn default() -> Self {
        Self::new()
    }
}

impl Park {
    /// Create a parking lot at generation zero.
    pub fn new() -> Self {
        Park {
            gen: Mutex::new(0),
            ready: Condvar::new(),
        }
    }

    /// Read the current generation. Call *before* scanning for work and
    /// hand the result to [`Park::sleep`].
    pub fn current(&self) -> u64 {
        // invariant: the park mutex only guards a u64 bump/read — no user
        // code runs under it, so it cannot be poisoned.
        *self.gen.lock().expect("park poisoned")
    }

    /// Bump the generation and wake one sleeping worker.
    pub fn notify_one(&self) {
        {
            // invariant: see Park::current — the lock never poisons.
            let mut gen = self.gen.lock().expect("park poisoned");
            *gen += 1;
        }
        self.ready.notify_one();
    }

    /// Bump the generation and wake every sleeping worker.
    pub fn notify_all(&self) {
        {
            // invariant: see Park::current — the lock never poisons.
            let mut gen = self.gen.lock().expect("park poisoned");
            *gen += 1;
        }
        self.ready.notify_all();
    }

    /// Sleep until the generation moves past `seen`. Returns immediately
    /// if a notify landed since the caller read `seen` — the no-lost-
    /// wakeup half of the protocol.
    pub fn sleep(&self, seen: u64) {
        // invariant: see Park::current — the lock never poisons.
        let mut gen = self.gen.lock().expect("park poisoned");
        while *gen == seen {
            gen = self.ready.wait(gen).expect("park poisoned");
        }
    }
}

/// The work-stealing scheduler's shared half: the global submission
/// injector, one stealer handle per worker queue, and the parking lot.
struct StealPool {
    injector: deque::Injector<Job>,
    stealers: Vec<deque::Stealer<Job>>,
    park: Park,
    shutdown: AtomicBool,
}

impl StealPool {
    /// Find work for worker `idx`: its own queue first, then a batch off
    /// the injector (amortizing the shared lock over many jobs), then a
    /// steal from each sibling in rotation. The second return is `true`
    /// exactly when the job came off a *sibling's* queue — a genuine
    /// steal, which the metrics layer counts separately from ordinary
    /// dequeues.
    fn find(&self, idx: usize, local: &deque::Worker<Job>) -> Option<(Job, bool)> {
        if let Some(job) = local.pop() {
            return Some((job, false));
        }
        if let Some(job) = self.injector.steal_batch_and_pop(local).success() {
            return Some((job, false));
        }
        let n = self.stealers.len();
        for offset in 1..n {
            if let Some(job) = self.stealers[(idx + offset) % n].steal().success() {
                return Some((job, true));
            }
        }
        None
    }
}

/// How jobs travel from submitters to workers — the engine-side handle of
/// the scheduler chosen by [`ServeConfig::scheduler`].
enum Dispatcher {
    /// One shared channel; `None` after shutdown hangs it up.
    Shared { job_tx: Option<Sender<Job>> },
    /// Injector + per-worker queues; shutdown is via flag + wakeup.
    Stealing { pool: Arc<StealPool> },
}

/// State every worker shares: the graph and (when caching is on) the
/// result cache, the single-flight table, and the computation counter the
/// single-flight tests assert on.
struct Shared {
    graph: Arc<Graph>,
    config: ServeConfig,
    /// The in-process backend — always available: it serves local-routed
    /// requests and is the deterministic fallback when a request asks for
    /// a backend the engine does not have.
    local: LocalBackend,
    /// The AP/GP backend, constructed at pool start when the config says
    /// [`Backend::Distributed`].
    distributed: Option<DistributedBackend>,
    cache: Option<OutcomeCache>,
    flight: InFlight<CacheKey, AttachedJob>,
    /// Queries that actually ran an engine (as opposed to being answered
    /// from the cache or a shared in-flight computation).
    computed: AtomicU64,
    /// Workspace for trivial requests the fast path computes on the
    /// submitting thread (k = 0 setup work only — never a full search).
    inline_ws: Mutex<ServeWorkspace>,
    /// The engine's metric registry; [`ServeEngine::metrics_snapshot`]
    /// renders it. The catalog is registered even with metrics off, so a
    /// snapshot is always complete (if zeroed).
    registry: Registry,
    /// Pre-fetched recording handles; every `m.on_*` call is a no-op
    /// branch unless [`ServeConfig::metrics`] is set.
    m: ServeMetrics,
}

impl Shared {
    /// Resolve a request's route — its per-request override, else the
    /// engine default — to the backend that will execute it. A route to a
    /// backend the engine did not construct falls back to local,
    /// deterministically; the second return is `true` exactly when that
    /// happened, and the response records it (`routed_fallback`) so a
    /// silently-absent backend is visible to the caller.
    fn backend_for(&self, request: &ResolvedRequest) -> (&dyn ExecBackend, bool) {
        let wanted = request.route.unwrap_or(self.config.backend.kind());
        match wanted {
            BackendKind::Local => (&self.local, false),
            BackendKind::Distributed => match self.distributed.as_ref() {
                Some(d) => (d as &dyn ExecBackend, false),
                None => (&self.local, true),
            },
        }
    }

    /// Run one request against its routed backend, recycling `ws`. Catches
    /// panics so a bad query can never kill the worker, and counts the
    /// computation. The job's trace (if any) is parked in the workspace
    /// for the duration of the run, so the distributed engine can stamp
    /// per-fetch-round events into the same timeline.
    fn compute(
        &self,
        request: &ResolvedRequest,
        ws: &mut ServeWorkspace,
        trace: &mut Option<Box<QueryTrace>>,
    ) -> Result<ExecOutcome, ServeError> {
        // ordering: Relaxed — computed_queries() is a telemetry read; the
        // single-flight tests that assert on it only read after join().
        self.computed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = trace.as_deref_mut() {
            t.record(TraceStage::ComputeStart);
        }
        let (backend, _) = self.backend_for(request);
        ws.dist.trace = trace.take();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            backend.execute(&self.graph, request, ws)
        }));
        // Reclaim the trace *before* the panic branch below discards the
        // workspace — a panicking query still gets its (partial) timeline.
        *trace = ws.dist.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.record(TraceStage::ComputeEnd);
        }
        match result {
            Ok(r) => r.map_err(ServeError::from),
            Err(panic) => {
                // The workspace may have been mid-mutation when the panic
                // unwound through it.
                *ws = ServeWorkspace::new();
                Err(ServeError::Panicked(panic_message(&*panic)))
            }
        }
    }

    /// The full serving path for one request: cache lookup, single-flight
    /// deduplication, compute, insert. Returns the outcome and whether it
    /// came from the cache. With the cache off this is exactly one
    /// [`Shared::compute`] call — the uncached behavior.
    fn serve(
        &self,
        request: &ResolvedRequest,
        ws: &mut ServeWorkspace,
        trace: &mut Option<Box<QueryTrace>>,
    ) -> (Result<Arc<ExecOutcome>, ServeError>, bool) {
        let Some(cache) = &self.cache else {
            return (self.compute(request, ws, trace).map(Arc::new), false);
        };
        let key = request.cache_key(self.graph.epoch());
        loop {
            if let Some(hit) = cache.get(&key) {
                // Backends are deterministic and bit-identical, and every
                // output-relevant input is in the (backend-agnostic) key,
                // so the cached ranking is bit-identical to what a fresh
                // run on *either* backend would produce. The stored
                // outcome keeps the original computation's provenance —
                // and serving it is a refcount bump, not a deep clone.
                return (Ok(hit), true);
            }
            if !self.config.single_flight {
                let result = self.compute(request, ws, trace).map(Arc::new);
                if let Ok(r) = &result {
                    cache.insert(key, Arc::clone(r));
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceStage::CacheInsert);
                    }
                }
                return (result, false);
            }
            if self.flight.begin(&key) {
                // Double-check while owning the key: between our miss above
                // and our claim, the previous owner may have inserted and
                // finished — computing now would break compute-exactly-once.
                // Every insert happens under ownership of the key, so an
                // owner's recheck-miss is authoritative.
                let (result, from_cache) = match cache.recheck(&key) {
                    Some(hit) => (Ok(hit), true),
                    None => {
                        let result = self.compute(request, ws, trace).map(Arc::new);
                        if let Ok(r) = &result {
                            cache.insert(key.clone(), Arc::clone(r));
                            if let Some(t) = trace.as_deref_mut() {
                                t.record(TraceStage::CacheInsert);
                            }
                        }
                        (result, false)
                    }
                };
                // Failed queries are not cached (and are cheap to redo);
                // release the key on every path so waiters never strand.
                // Nothing attaches in shared-queue mode, so the returned
                // list is empty by construction.
                let _ = self.flight.finish(&key);
                return (result, from_cache);
            }
            // Someone else is computing this exact key: wait for them,
            // then re-check the cache (hit unless their run failed).
            self.flight.wait(&key);
        }
    }

    /// Serve one queued job under the configured scheduler and send its
    /// response. Returns jobs that must be re-enqueued — only ever
    /// non-empty in work-stealing mode, when an owned computation failed
    /// with requests attached (errors are never shared; each duplicate
    /// recomputes individually).
    fn handle(&self, mut job: Job, worker: usize, ws: &mut ServeWorkspace) -> Vec<Job> {
        let picked = Instant::now();
        let queue_wait = picked.duration_since(job.enqueued);
        match self.config.scheduler {
            SchedulerMode::SharedQueue => {
                let mut trace = job.trace.take();
                let (served, from_cache) = self.serve(&job.request, ws, &mut trace);
                job.trace = trace;
                self.respond(job, Some(worker), served, from_cache, queue_wait, picked);
                Vec::new()
            }
            SchedulerMode::WorkStealing => {
                self.handle_stealing(job, worker, ws, picked, queue_wait)
            }
        }
    }

    /// The work-stealing worker path: like [`Shared::serve`] but a job that
    /// finds its key already computing *attaches* to the owner instead of
    /// blocking this worker, and an owner answers everything that attached
    /// when it finishes.
    fn handle_stealing(
        &self,
        mut job: Job,
        worker: usize,
        ws: &mut ServeWorkspace,
        picked: Instant,
        queue_wait: Duration,
    ) -> Vec<Job> {
        let Some(cache) = &self.cache else {
            let mut trace = job.trace.take();
            let served = self.compute(&job.request, ws, &mut trace).map(Arc::new);
            job.trace = trace;
            self.respond(job, Some(worker), served, false, queue_wait, picked);
            return Vec::new();
        };
        let key = job.request.cache_key(self.graph.epoch());
        if let Some(hit) = cache.get(&key) {
            self.respond(job, Some(worker), Ok(hit), true, queue_wait, picked);
            return Vec::new();
        }
        if !self.config.single_flight {
            let mut trace = job.trace.take();
            let served = self.compute(&job.request, ws, &mut trace).map(Arc::new);
            if let Ok(r) = &served {
                cache.insert(key, Arc::clone(r));
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceStage::CacheInsert);
                }
            }
            job.trace = trace;
            self.respond(job, Some(worker), served, false, queue_wait, picked);
            return Vec::new();
        }
        // Stamp Attach *speculatively*: if the claim below wins (no owner
        // to attach to), the stage is retracted before computing.
        if let Some(t) = job.trace.as_deref_mut() {
            t.record(TraceStage::Attach);
        }
        let attached_job = AttachedJob {
            job,
            worker: Some(worker),
            picked,
        };
        match self.flight.attach_or_claim(&key, attached_job) {
            // Attached: the computing owner will answer it; this worker is
            // free for other traffic.
            None => {
                self.m.on_attach();
                Vec::new()
            }
            Some(AttachedJob { mut job, .. }) => {
                // This job owns the key. Double-check the cache while
                // owning it (see Shared::serve), compute on a true miss,
                // then settle everything that attached meanwhile.
                let mut trace = job.trace.take();
                if let Some(t) = trace.as_deref_mut() {
                    t.retract(TraceStage::Attach);
                }
                let (served, from_cache) = match cache.recheck(&key) {
                    Some(hit) => (Ok(hit), true),
                    None => {
                        let result = self.compute(&job.request, ws, &mut trace).map(Arc::new);
                        if let Ok(r) = &result {
                            cache.insert(key.clone(), Arc::clone(r));
                            if let Some(t) = trace.as_deref_mut() {
                                t.record(TraceStage::CacheInsert);
                            }
                        }
                        (result, false)
                    }
                };
                job.trace = trace;
                let attached = self.flight.finish(&key);
                let requeue = match &served {
                    Ok(outcome) => {
                        self.answer_attached(cache, &key, outcome, attached);
                        Vec::new()
                    }
                    // Errors are never served stale: re-enqueue the
                    // duplicates so each computes (and fails) on its own.
                    Err(_) => attached.into_iter().map(|a| a.job).collect(),
                };
                self.respond(job, Some(worker), served, from_cache, queue_wait, picked);
                requeue
            }
        }
    }

    /// Answer every job that attached to a successfully computed key, from
    /// the shared result.
    fn answer_attached(
        &self,
        cache: &OutcomeCache,
        key: &CacheKey,
        outcome: &Arc<ExecOutcome>,
        attached: Vec<AttachedJob>,
    ) {
        for a in attached {
            // Read the shared result back out of the cache — the same path
            // the blocking waiters of shared-queue mode take — so hit
            // accounting and LRU recency are identical across scheduler
            // modes. (The entry can only be missing if LRU pressure evicted
            // it in the instants since the insert; the owner's own `Arc` is
            // the same bits.)
            let served = cache.get(key).unwrap_or_else(|| Arc::clone(outcome));
            let queue_wait = a.picked.duration_since(a.job.enqueued);
            self.respond(a.job, a.worker, Ok(served), true, queue_wait, a.picked);
        }
    }

    /// The size-aware fast path, run on the *submitting* thread: answers
    /// the job inline when that is cheap — a cache hit, or a trivial
    /// request — and hands it back (`Some(job)`) for queueing otherwise.
    /// Never blocks on another thread's computation: if the key is owned
    /// in flight, the job queues and the worker that picks it up attaches
    /// it to the owner.
    fn try_fast_serve(&self, mut job: Job) -> Option<Job> {
        if self.config.scheduler != SchedulerMode::WorkStealing {
            return Some(job);
        }
        let submitted = job.enqueued;
        let trivial = self.is_trivial(&job.request);
        let Some(cache) = &self.cache else {
            if !trivial {
                return Some(job);
            }
            let mut trace = job.trace.take();
            let served = self.compute_inline(&job.request, &mut trace);
            job.trace = trace;
            self.respond(job, None, served, false, Duration::ZERO, submitted);
            return None;
        };
        let key = job.request.cache_key(self.graph.epoch());
        // A trivial request computes inline on a miss, so its miss is real
        // and counted (`get`); a non-trivial miss is re-looked-up (and
        // counted) by the worker that picks the job up, so this probe must
        // not count (`recheck`) — hit rates stay comparable across modes.
        let lookup = if trivial {
            cache.get(&key)
        } else {
            cache.recheck(&key)
        };
        if let Some(hit) = lookup {
            self.respond(job, None, Ok(hit), true, Duration::ZERO, submitted);
            return None;
        }
        if !trivial {
            return Some(job);
        }
        if !self.config.single_flight {
            let mut trace = job.trace.take();
            let served = self.compute_inline(&job.request, &mut trace);
            if let Ok(r) = &served {
                cache.insert(key, Arc::clone(r));
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceStage::CacheInsert);
                }
            }
            job.trace = trace;
            self.respond(job, None, served, false, Duration::ZERO, submitted);
            return None;
        }
        if !self.flight.begin(&key) {
            // An identical request is computing right now; queueing (and
            // attaching) keeps the submitting thread from ever blocking.
            return Some(job);
        }
        let mut trace = job.trace.take();
        let (served, from_cache) = match cache.recheck(&key) {
            Some(hit) => (Ok(hit), true),
            None => {
                let served = self.compute_inline(&job.request, &mut trace);
                if let Ok(r) = &served {
                    cache.insert(key.clone(), Arc::clone(r));
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceStage::CacheInsert);
                    }
                }
                (served, false)
            }
        };
        job.trace = trace;
        let attached = self.flight.finish(&key);
        match &served {
            Ok(outcome) => self.answer_attached(cache, &key, outcome, attached),
            Err(_) => {
                // Errors are never shared; duplicates are trivial, so
                // recomputing each inline is cheaper than a queue trip.
                for mut a in attached {
                    let mut trace = a.job.trace.take();
                    let served = self.compute_inline(&a.job.request, &mut trace);
                    if let Ok(r) = &served {
                        cache.insert(key.clone(), Arc::clone(r));
                        if let Some(t) = trace.as_deref_mut() {
                            t.record(TraceStage::CacheInsert);
                        }
                    }
                    a.job.trace = trace;
                    let queue_wait = a.picked.duration_since(a.job.enqueued);
                    self.respond(a.job, a.worker, served, false, queue_wait, a.picked);
                }
            }
        }
        self.respond(job, None, served, from_cache, Duration::ZERO, submitted);
        None
    }

    /// Run a trivial request on the submitting thread, on the shared
    /// inline workspace.
    fn compute_inline(
        &self,
        request: &ResolvedRequest,
        trace: &mut Option<Box<QueryTrace>>,
    ) -> Result<Arc<ExecOutcome>, ServeError> {
        // invariant: compute() propagates errors as values, never panics
        // under this lock, so the workspace mutex cannot be poisoned.
        let mut ws = self.inline_ws.lock().expect("inline workspace poisoned");
        self.compute(request, &mut ws, trace).map(Arc::new)
    }

    /// Requests the fast path may compute on the submitting thread:
    /// single-node k = 0 RTR/RTR+ — the dispatch table's bound path, which
    /// short-circuits to an empty ranking after a bounded amount of
    /// neighborhood setup. Everything else (real bound searches, exact
    /// iterations touching the whole graph) belongs on a worker.
    fn is_trivial(&self, request: &ResolvedRequest) -> bool {
        request.topk.k == 0
            && request.query.nodes().len() == 1
            && matches!(request.measure, Measure::Rtr | Measure::RtrPlus { .. })
            && self.graph.node_count() > 0
    }

    /// Build and send the response for one served job. Every response —
    /// fast-pathed, queued, attached, errored — passes through here
    /// exactly once, which makes this the engine's single metrics and
    /// trace-finalization point.
    fn respond(
        &self,
        mut job: Job,
        worker: Option<usize>,
        served: Result<Arc<ExecOutcome>, ServeError>,
        from_cache: bool,
        queue_wait: Duration,
        picked: Instant,
    ) {
        let compute = picked.elapsed();
        let routed_fallback = self.backend_for(&job.request).1;
        let (result, backend, distributed) = match served {
            Ok(outcome) => (
                Ok(Arc::clone(&outcome.result)),
                outcome.backend,
                outcome.distributed,
            ),
            // A failed request reports the backend it was routed to
            // (nothing produced a ranking).
            Err(e) => (Err(e), self.backend_for(&job.request).0.kind(), None),
        };
        self.m.on_response(
            job.request.measure,
            queue_wait,
            compute,
            result.as_ref().err(),
            distributed.as_ref(),
            routed_fallback,
            worker.is_none(),
            from_cache,
        );
        let mut trace = job.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            if worker.is_none() {
                // Completed inline on the submitting thread: no worker
                // ever touched it.
                t.record(TraceStage::FastPath);
            }
            t.record(TraceStage::Respond);
        }
        let response = QueryResponse {
            id: job.id,
            request: job.request,
            result,
            backend,
            routed_fallback,
            distributed,
            from_cache,
            queue_wait,
            compute,
            worker,
            trace,
        };
        // A dropped reply receiver means the caller gave up; keep serving
        // other traffic.
        let _ = job.reply.send(response);
    }
}

/// A fixed pool of query workers over a shared read-only graph, serving
/// self-describing [`QueryRequest`]s.
///
/// See the [crate docs](crate) for an end-to-end example. Requests and
/// batches may be submitted from multiple threads concurrently; each batch
/// collects only its own responses.
pub struct ServeEngine {
    shared: Arc<Shared>,
    dispatcher: Dispatcher,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Start `config.workers` (at least 1) worker threads over `graph`,
    /// constructing the configured execution backend (a
    /// [`Backend::Distributed`] config stripes the graph across GP threads
    /// here, once, shared by every worker).
    ///
    /// Every worker's reusable workspace is pre-sized to the graph here,
    /// at spawn — a worker's *first* query pays no O(|V|) allocation burst,
    /// which would otherwise show up as a one-off tail-latency spike in
    /// load benchmarks.
    pub fn start(graph: Arc<Graph>, config: ServeConfig) -> Self {
        let workers = config.workers.max(1);
        let scheduler = config.scheduler;
        let distributed = match config.backend {
            Backend::Local => None,
            Backend::Distributed { gps } => Some(DistributedBackend::spawn(&graph, gps)),
        };
        let node_count = graph.node_count();
        let registry = Registry::new();
        let m = ServeMetrics::new(&registry, &config);
        let shared = Arc::new(Shared {
            local: LocalBackend,
            distributed,
            cache: config.cache_enabled().then(|| {
                OutcomeCache::new(CacheConfig {
                    capacity: config.cache_capacity,
                    shards: config.cache_shards,
                })
            }),
            flight: InFlight::new(),
            inline_ws: Mutex::new(ServeWorkspace::for_engine(node_count, &config)),
            computed: AtomicU64::new(0),
            graph,
            config,
            registry,
            m,
        });
        shared.m.cache_enabled.set(shared.cache.is_some() as i64);
        match scheduler {
            SchedulerMode::SharedQueue => {
                let (job_tx, job_rx) = channel::unbounded::<Job>();
                let handles = (0..workers)
                    .map(|idx| {
                        let rx = job_rx.clone();
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || {
                            // Panics inside a query are caught in
                            // Shared::compute; a dead worker would strand
                            // the jobs still queued and hang their batches.
                            let mut ws = ServeWorkspace::for_engine(node_count, &shared.config);
                            if shared.distributed.is_some() {
                                if let Some(bc) = shared.m.block_cache(&shared.registry, idx) {
                                    ws.dist.cache.set_metrics(bc);
                                }
                            }
                            while let Ok(mut job) = rx.recv() {
                                if let Some(t) = job.trace.as_deref_mut() {
                                    t.record(TraceStage::Dequeue);
                                }
                                let requeue = shared.handle(job, 0, &mut ws);
                                debug_assert!(
                                    requeue.is_empty(),
                                    "shared-queue serving never attaches jobs"
                                );
                            }
                        })
                    })
                    .collect();
                ServeEngine {
                    shared,
                    dispatcher: Dispatcher::Shared {
                        job_tx: Some(job_tx),
                    },
                    handles,
                }
            }
            SchedulerMode::WorkStealing => {
                // Build every local deque first so each worker starts with
                // the full stealer set — no window where early traffic is
                // invisible to a sibling.
                let locals: Vec<deque::Worker<Job>> =
                    (0..workers).map(|_| deque::Worker::new_fifo()).collect();
                let stealers = locals.iter().map(|l| l.stealer()).collect();
                let pool = Arc::new(StealPool {
                    injector: deque::Injector::new(),
                    stealers,
                    park: Park::new(),
                    shutdown: AtomicBool::new(false),
                });
                let handles = locals
                    .into_iter()
                    .enumerate()
                    .map(|(idx, local)| {
                        let pool = Arc::clone(&pool);
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || {
                            let mut ws = ServeWorkspace::for_engine(node_count, &shared.config);
                            if shared.distributed.is_some() {
                                if let Some(bc) = shared.m.block_cache(&shared.registry, idx) {
                                    ws.dist.cache.set_metrics(bc);
                                }
                            }
                            loop {
                                // Read the park generation *before* the
                                // scan: a push between scan and sleep bumps
                                // it and the sleep returns immediately — no
                                // lost wakeups.
                                let seen = pool.park.current();
                                if let Some((mut job, stolen)) = pool.find(idx, &local) {
                                    if stolen {
                                        shared.m.on_steal();
                                    }
                                    if let Some(t) = job.trace.as_deref_mut() {
                                        t.record(if stolen {
                                            TraceStage::Steal
                                        } else {
                                            TraceStage::Dequeue
                                        });
                                    }
                                    for j in shared.handle(job, idx, &mut ws) {
                                        // A failed owner re-enqueues its
                                        // attached duplicates; pushing them
                                        // onto our own deque guarantees
                                        // they run even with every sibling
                                        // asleep.
                                        local.push(j);
                                    }
                                    continue;
                                }
                                // ordering: Acquire — pairs with the
                                // Release store in shutdown_inner(), so a
                                // worker that sees the flag also sees
                                // every job enqueued before shutdown.
                                if pool.shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                shared.m.on_park();
                                pool.park.sleep(seen);
                            }
                        })
                    })
                    .collect();
                ServeEngine {
                    shared,
                    dispatcher: Dispatcher::Stealing { pool },
                    handles,
                }
            }
        }
    }

    /// The shared graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.shared.graph
    }

    /// The engine's default routing kind (what a request without a
    /// [`QueryRequest::with_backend`] override runs on).
    pub fn backend_kind(&self) -> BackendKind {
        self.shared.config.backend.kind()
    }

    /// The AP/GP backend, when this engine was started with
    /// [`Backend::Distributed`].
    pub fn distributed_backend(&self) -> Option<&DistributedBackend> {
        self.shared.distributed.as_ref()
    }

    /// Result-cache traffic counters, or `None` when the cache is off.
    ///
    /// The `Option` distinguishes **disabled** from **idle**: `None`
    /// means the engine was started without a cache
    /// ([`ServeConfig::cache_capacity`] = 0) and no amount of traffic
    /// will ever produce stats; `Some(CacheStats::default())` (all
    /// zeros) means the cache exists but has seen no traffic yet. The
    /// same distinction is visible in [`ServeEngine::metrics_snapshot`]
    /// as the `rtr_serve_cache_enabled` gauge (1/0) — a scraper can
    /// tell "cache off" from "zero hits" without the `Option`.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.cache.as_ref().map(|c| c.stats())
    }

    /// One coherent snapshot of every metric the engine registers —
    /// scheduler counters, latency histograms, result-cache and
    /// distributed wire telemetry. Render it with
    /// [`MetricsSnapshot::to_prometheus`] or [`MetricsSnapshot::to_json`].
    ///
    /// The full catalog is present (zeroed) even when the engine runs
    /// with [`ServeConfig::metrics`] off, so scrapers see a stable schema
    /// either way. Point-in-time gauges (injector depth, cache occupancy)
    /// are polled here, at snapshot time.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        if let Dispatcher::Stealing { pool } = &self.dispatcher {
            self.shared.m.injector_depth.set(pool.injector.len() as i64);
        }
        self.shared
            .m
            .cache_enabled
            .set(self.shared.cache.is_some() as i64);
        if let Some(cache) = &self.shared.cache {
            cache.export_metrics(&self.shared.registry);
        }
        self.shared.registry.snapshot()
    }

    /// The engine's metric registry, for callers that want to register
    /// their own instruments alongside the engine's (one exposition for
    /// the whole process) or hold pre-fetched handles.
    pub fn metrics_registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Entries currently resident in the result cache (0 when off).
    pub fn cache_len(&self) -> usize {
        self.shared.cache.as_ref().map_or(0, |c| c.len())
    }

    /// How many queries actually ran an engine, as opposed to being served
    /// from the cache or a shared in-flight computation. With single-flight
    /// on, a batch of M copies of one (new) request advances this by
    /// exactly 1 — the `single_flight` stress suite pins that.
    pub fn computed_queries(&self) -> u64 {
        // ordering: Relaxed — telemetry; callers that need exactness
        // (the stress tests) only read after the batch has joined.
        self.shared.computed.load(Ordering::Relaxed)
    }

    /// The serving configuration (the per-request fallback defaults).
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Number of live worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submit one request to the pool without blocking: the returned
    /// [`QueryTicket`] joins the response whenever the caller is ready.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use rtr_core::Measure;
    /// use rtr_graph::toy::fig2_toy;
    /// use rtr_serve::{QueryRequest, ServeConfig, ServeEngine};
    ///
    /// let (g, ids) = fig2_toy();
    /// let engine = ServeEngine::start(Arc::new(g), ServeConfig::default().with_workers(2));
    /// let ticket = engine.submit(
    ///     QueryRequest::node(ids.t1).with_measure(Measure::RtrPlus { beta: 0.7 }).with_k(3),
    /// );
    /// let response = ticket.wait();
    /// assert_eq!(response.result.unwrap().ranking.len(), 3);
    /// ```
    pub fn submit(&self, request: QueryRequest) -> QueryTicket {
        let (reply_tx, reply_rx) = channel::unbounded::<QueryResponse>();
        self.enqueue(0, request, reply_tx);
        QueryTicket { reply: reply_rx }
    }

    fn enqueue(&self, id: usize, request: QueryRequest, reply: Sender<QueryResponse>) {
        let job = Job {
            id,
            request: request.resolve(&self.shared.config),
            enqueued: Instant::now(),
            reply,
            trace: self
                .shared
                .config
                .tracing
                .then(|| Box::new(QueryTrace::begin())),
        };
        // Size-aware dispatch: cache hits and trivial requests complete
        // right here on the submitting thread; everything else queues.
        let Some(mut job) = self.shared.try_fast_serve(job) else {
            return;
        };
        if let Some(t) = job.trace.as_deref_mut() {
            t.record(TraceStage::Enqueue);
        }
        match &self.dispatcher {
            Dispatcher::Shared { job_tx } => {
                job_tx
                    .as_ref()
                    // invariant: the sender is only taken in
                    // shutdown_inner, and submit() cannot run after
                    // shutdown (it borrows self, shutdown consumes it).
                    .expect("pool is running")
                    .send(job)
                    // invariant: workers hold the receiver for the
                    // engine's whole lifetime.
                    .expect("workers alive while engine exists");
            }
            Dispatcher::Stealing { pool } => {
                pool.injector.push(job);
                pool.park.notify_one();
            }
        }
    }

    /// Execute a batch of heterogeneous requests across the pool and
    /// return the responses in input order. Blocks until the whole batch
    /// is done.
    ///
    /// Response values are bit-identical to [`run_serial_requests`] at any
    /// worker count: requests are independent and every engine path is
    /// deterministic.
    pub fn run_requests(&self, requests: &[QueryRequest]) -> Vec<QueryResponse> {
        let (reply_tx, reply_rx) = channel::unbounded::<QueryResponse>();
        for (id, request) in requests.iter().enumerate() {
            self.enqueue(id, request.clone(), reply_tx.clone());
        }
        // Drop our handle so the reply stream ends once every job replied.
        drop(reply_tx);
        let mut responses: Vec<QueryResponse> = reply_rx.iter().collect();
        assert_eq!(
            responses.len(),
            requests.len(),
            "worker died mid-batch (panicked query?)"
        );
        responses.sort_unstable_by_key(|r| r.id);
        responses
    }

    /// Execute a batch of single-node RoundTripRank queries under the
    /// engine defaults — the pre-PR-4 API, now a thin wrapper over
    /// [`ServeEngine::run_requests`]. Blocks until the whole batch is done;
    /// outputs come back in input order and are bit-identical to
    /// [`run_serial`] at any worker count.
    pub fn run_batch(&self, queries: &[NodeId]) -> Vec<QueryOutput> {
        let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
        self.run_requests(&requests)
            .into_iter()
            .map(QueryOutput::from_response)
            .collect()
    }

    /// Stop the pool: hang up the job queue and join every worker. Called
    /// automatically on drop; explicit form for callers that want to
    /// observe the join.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        match &mut self.dispatcher {
            Dispatcher::Shared { job_tx } => drop(job_tx.take()),
            Dispatcher::Stealing { pool } => {
                // ordering: Release — pairs with the workers' Acquire
                // load, publishing all queue state written before the
                // shutdown decision.
                pool.shutdown.store(true, Ordering::Release);
                // Workers drain all queues before honoring the flag, so
                // every job enqueued before this point still completes.
                pool.park.notify_all();
            }
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The serial reference executor for heterogeneous requests: the same
/// dispatch and workspace reuse as a single pool worker, on the caller's
/// thread, **always the local backend**, cache off. Batch serving at any
/// worker count, cache on or off, on *either* backend must be
/// bit-identical to this — the distributed bound engines mirror the local
/// ones operation for operation, so one serial reference anchors the whole
/// backend matrix.
pub fn run_serial_requests(
    g: &Graph,
    config: &ServeConfig,
    requests: &[QueryRequest],
) -> Vec<QueryResponse> {
    let mut ws = ServeWorkspace::new();
    requests
        .iter()
        .enumerate()
        .map(|(id, request)| {
            let resolved = request.resolve(config);
            let started = Instant::now();
            let result = resolved
                .run(g, &mut ws)
                .map(Arc::new)
                .map_err(ServeError::from);
            // The serial reference has no distributed backend at all, so a
            // distributed route is by definition a recorded fallback.
            let routed_fallback = resolved.route == Some(BackendKind::Distributed);
            QueryResponse {
                id,
                request: resolved,
                result,
                backend: BackendKind::Local,
                routed_fallback,
                distributed: None,
                from_cache: false,
                worker: None,
                queue_wait: Duration::ZERO,
                compute: started.elapsed(),
                trace: None,
            }
        })
        .collect()
}

/// The serial reference executor for the single-node batch shape: a thin
/// wrapper over [`run_serial_requests`].
pub fn run_serial(g: &Graph, config: &ServeConfig, queries: &[NodeId]) -> Vec<QueryOutput> {
    let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
    run_serial_requests(g, config, &requests)
        .into_iter()
        .map(QueryOutput::from_response)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::Measure;
    use rtr_graph::toy::fig2_toy;
    use rtr_topk::TopKConfig;

    fn toy_engine(workers: usize) -> (ServeEngine, rtr_graph::toy::Fig2Ids) {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(workers)
            .with_topk(TopKConfig::toy());
        (ServeEngine::start(Arc::new(g), config), ids)
    }

    #[test]
    fn batch_outputs_align_with_inputs() {
        let (engine, ids) = toy_engine(3);
        let queries = vec![ids.t1, ids.v1, ids.t2, ids.v2];
        let outputs = engine.run_batch(&queries);
        assert_eq!(outputs.len(), queries.len());
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.id, i);
            assert_eq!(out.query, queries[i]);
            assert_eq!(out.result.as_ref().unwrap().ranking[0], queries[i]);
        }
    }

    #[test]
    fn pool_matches_serial_bit_for_bit() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(4)
            .with_topk(TopKConfig::toy());
        let queries: Vec<NodeId> = g.nodes().collect();
        let serial = run_serial(&g, &config, &queries);
        let engine = ServeEngine::start(Arc::new(g), config);
        let pooled = engine.run_batch(&queries);
        let _ = ids;
        for (s, p) in serial.iter().zip(&pooled) {
            let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
            assert_eq!(s.ranking, p.ranking);
            assert_eq!(s.bounds, p.bounds); // exact f64 equality
            assert_eq!(s.expansions, p.expansions);
        }
    }

    #[test]
    fn submit_ticket_joins_one_request() {
        let (engine, ids) = toy_engine(2);
        let ticket = engine.submit(QueryRequest::node(ids.t1).with_k(3));
        let response = ticket.wait();
        assert_eq!(response.id, 0);
        assert_eq!(response.request.topk.k, 3);
        assert!(!response.from_cache);
        let result = response.result.unwrap();
        assert_eq!(result.ranking.len(), 3);
        assert_eq!(result.ranking[0], ids.t1);
    }

    #[test]
    fn try_wait_eventually_yields_the_response() {
        let (engine, ids) = toy_engine(1);
        let mut ticket = engine.submit(QueryRequest::node(ids.t1));
        let response = loop {
            match ticket.try_wait() {
                Ok(response) => break response,
                Err(t) => {
                    ticket = t;
                    std::thread::yield_now();
                }
            }
        };
        assert!(response.result.is_ok());
    }

    #[test]
    fn heterogeneous_batch_reports_what_ran() {
        let (engine, ids) = toy_engine(2);
        let requests = vec![
            QueryRequest::node(ids.t1),
            QueryRequest::node(ids.t1)
                .with_measure(Measure::F)
                .with_k(2),
            QueryRequest::nodes(&[ids.t1, ids.t2]).with_measure(Measure::RtrPlus { beta: 0.7 }),
        ];
        let responses = engine.run_requests(&requests);
        assert_eq!(responses[0].request.measure, Measure::Rtr);
        assert_eq!(responses[1].request.measure, Measure::F);
        assert_eq!(responses[1].request.topk.k, 2);
        assert_eq!(responses[1].result.as_ref().unwrap().ranking.len(), 2);
        assert_eq!(responses[2].request.query.len(), 2);
        for r in &responses {
            assert!(r.result.is_ok());
        }
    }

    #[test]
    fn engine_survives_many_batches() {
        let (engine, ids) = toy_engine(2);
        let first = engine.run_batch(&[ids.t1]);
        for _ in 0..5 {
            let again = engine.run_batch(&[ids.t1]);
            assert_eq!(
                first[0].result.as_ref().unwrap().ranking,
                again[0].result.as_ref().unwrap().ranking
            );
        }
    }

    #[test]
    fn bad_query_reports_error_without_poisoning_batch() {
        let (engine, ids) = toy_engine(2);
        let outputs = engine.run_batch(&[ids.t1, NodeId(9999), ids.t2]);
        assert!(outputs[0].result.is_ok());
        assert!(matches!(
            outputs[1].result,
            Err(ServeError::Query(CoreError::NodeOutOfRange { .. }))
        ));
        assert!(outputs[2].result.is_ok());
    }

    #[test]
    fn bad_query_does_not_cost_the_worker_its_buffers() {
        // A rejected query must be answered from the same recycled
        // workspace path as a good one: running bad-good-bad-good serially
        // with one workspace must equal a fresh run of the good queries.
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy());
        let mixed = run_serial(&g, &config, &[ids.t1, NodeId(9999), ids.t2, NodeId(8888)]);
        let clean = run_serial(&g, &config, &[ids.t1, ids.t2]);
        assert_eq!(
            mixed[0].result.as_ref().unwrap().bounds,
            clean[0].result.as_ref().unwrap().bounds
        );
        assert_eq!(
            mixed[2].result.as_ref().unwrap().bounds,
            clean[1].result.as_ref().unwrap().bounds
        );
        assert!(mixed[1].result.is_err() && mixed[3].result.is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let (engine, _) = toy_engine(2);
        assert!(engine.run_batch(&[]).is_empty());
        assert!(engine.run_requests(&[]).is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let (engine, ids) = toy_engine(0);
        assert_eq!(engine.workers(), 1);
        let outputs = engine.run_batch(&[ids.t1]);
        assert!(outputs[0].result.is_ok());
    }

    #[test]
    fn explicit_shutdown_joins() {
        let (engine, ids) = toy_engine(2);
        let _ = engine.run_batch(&[ids.t1]);
        engine.shutdown(); // must not hang
    }

    #[test]
    fn duplicate_queries_in_one_batch_all_answered_identically() {
        // The same query node several times in one batch must yield one
        // output per occurrence, aligned by position, all bit-identical —
        // through the pool path, cache off and cache on.
        for capacity in [0usize, 64] {
            let (g, ids) = fig2_toy();
            let config = ServeConfig::default()
                .with_workers(4)
                .with_topk(TopKConfig::toy())
                .with_cache_capacity(capacity);
            let engine = ServeEngine::start(Arc::new(g), config);
            let queries = vec![ids.t1, ids.v1, ids.t1, ids.t1, ids.v1];
            let outputs = engine.run_batch(&queries);
            assert_eq!(outputs.len(), queries.len());
            let first = outputs[0].result.as_ref().unwrap();
            for dup in [2, 3] {
                let r = outputs[dup].result.as_ref().unwrap();
                assert_eq!(outputs[dup].query, ids.t1);
                assert_eq!(r.ranking, first.ranking, "capacity {capacity}");
                assert_eq!(r.bounds, first.bounds, "capacity {capacity}");
            }
            assert_eq!(
                outputs[4].result.as_ref().unwrap().ranking,
                outputs[1].result.as_ref().unwrap().ranking
            );
        }
    }

    #[test]
    fn k_zero_queries_through_the_pool() {
        // K = 0 short-circuits inside the engine; the pool (and the cache
        // path) must carry the empty result through unchanged.
        for capacity in [0usize, 64] {
            let (g, ids) = fig2_toy();
            let config = ServeConfig::default()
                .with_workers(3)
                .with_topk(TopKConfig {
                    k: 0,
                    ..TopKConfig::toy()
                })
                .with_cache_capacity(capacity);
            let engine = ServeEngine::start(Arc::new(g), config);
            let outputs = engine.run_batch(&[ids.t1, ids.v1, ids.t1]);
            for out in &outputs {
                let r = out.result.as_ref().unwrap();
                assert!(r.ranking.is_empty(), "capacity {capacity}");
                assert!(r.bounds.is_empty());
                assert!(r.converged);
            }
        }
    }

    #[test]
    fn cache_off_reports_no_stats_and_counts_every_computation() {
        let (engine, ids) = toy_engine(2);
        assert!(engine.cache_stats().is_none());
        let n = engine.run_batch(&[ids.t1, ids.t1, ids.t2]).len() as u64;
        assert_eq!(engine.computed_queries(), n);
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn cache_hits_repeated_batches_and_reports_from_cache() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(128);
        let engine = ServeEngine::start(Arc::new(g), config);
        let queries = vec![ids.t1, ids.t2, ids.v1];
        let cold = engine.run_batch(&queries);
        let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
        let warm = engine.run_requests(&requests);
        let stats = engine.cache_stats().expect("cache on");
        assert_eq!(stats.inserts, 3);
        assert!(stats.hits >= 3, "warm batch must hit, got {stats:?}");
        assert_eq!(engine.computed_queries(), 3);
        assert_eq!(engine.cache_len(), 3);
        for (c, w) in cold.iter().zip(&warm) {
            assert!(w.from_cache, "warm responses must be flagged cached");
            let (c, w) = (c.result.as_ref().unwrap(), w.result.as_ref().unwrap());
            assert_eq!(c.ranking, w.ranking);
            assert_eq!(c.bounds, w.bounds); // exact f64 equality
        }
    }

    #[test]
    fn distinct_measures_never_share_cache_entries() {
        // The same node under four measures: four cache entries, four
        // computations, no cross-measure aliasing even on a warm cache.
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(128);
        let engine = ServeEngine::start(Arc::new(g), config);
        let requests: Vec<QueryRequest> = [
            Measure::Rtr,
            Measure::F,
            Measure::T,
            Measure::RtrPlus { beta: 0.5 },
        ]
        .into_iter()
        .map(|m| QueryRequest::node(ids.t1).with_measure(m))
        .collect();
        let cold = engine.run_requests(&requests);
        let warm = engine.run_requests(&requests);
        assert_eq!(engine.computed_queries(), 4);
        assert_eq!(engine.cache_len(), 4);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(
                c.result.as_ref().unwrap().ranking,
                w.result.as_ref().unwrap().ranking
            );
        }
        // RTR and RTR+(0.5) rank alike but bound differently: both were
        // computed, not aliased.
        assert_ne!(
            cold[0].result.as_ref().unwrap().bounds,
            cold[3].result.as_ref().unwrap().bounds
        );
    }

    #[test]
    fn distributed_engine_matches_local_engine_bit_for_bit() {
        let (g, _) = fig2_toy();
        let g = Arc::new(g);
        let base = ServeConfig::default()
            .with_workers(3)
            .with_topk(TopKConfig::toy());
        let requests: Vec<QueryRequest> = g
            .nodes()
            .map(QueryRequest::node)
            .chain([
                QueryRequest::node(NodeId(0)).with_measure(Measure::F),
                QueryRequest::node(NodeId(1)).with_measure(Measure::RtrPlus { beta: 0.7 }),
                QueryRequest::nodes(&[NodeId(0), NodeId(3)]),
            ])
            .collect();
        let local = ServeEngine::start(Arc::clone(&g), base);
        let dist = ServeEngine::start(
            Arc::clone(&g),
            base.with_backend(Backend::Distributed { gps: 3 }),
        );
        assert_eq!(local.backend_kind(), BackendKind::Local);
        assert_eq!(dist.backend_kind(), BackendKind::Distributed);
        assert!(dist.distributed_backend().is_some());
        let a = local.run_requests(&requests);
        let b = dist.run_requests(&requests);
        for (l, d) in a.iter().zip(&b) {
            let (lr, dr) = (l.result.as_ref().unwrap(), d.result.as_ref().unwrap());
            assert_eq!(lr.ranking, dr.ranking);
            assert_eq!(lr.bounds, dr.bounds);
            assert_eq!(lr.expansions, dr.expansions);
            assert_eq!(l.backend, BackendKind::Local);
            // Single-node RTR/RTR+ runs distributed; F and the multi-node
            // query are recorded fallbacks.
            let genuinely_distributed = d.request.query.nodes().len() == 1
                && matches!(d.request.measure, Measure::Rtr | Measure::RtrPlus { .. });
            if genuinely_distributed {
                assert_eq!(d.backend, BackendKind::Distributed);
                // Wire bytes may be zero once the worker's block cache is
                // warm; the per-query active-set accounting always holds.
                let stats = d.distributed.unwrap();
                assert!(stats.active_nodes > 0);
                assert_eq!(
                    stats.blocks_fetched + stats.blocks_from_cache,
                    stats.active_nodes
                );
            } else {
                assert_eq!(d.backend, BackendKind::Local);
                assert!(d.distributed.is_none());
            }
        }
    }

    #[test]
    fn block_cache_limits_are_pure_performance_knobs() {
        // Starved limits (no prefetch, no cross-query residency) change
        // wire cost, never answers: every tuned response is bit-identical
        // to the serial local reference.
        let (g, _) = fig2_toy();
        let g = Arc::new(g);
        let base = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_backend(Backend::Distributed { gps: 2 });
        let requests: Vec<QueryRequest> = g.nodes().map(QueryRequest::node).collect();
        let reference = run_serial_requests(&g, &base, &requests);
        for (prefetch, blocks) in [(0, 0), (1, 2), (512, 1 << 20)] {
            let tuned = base.with_block_cache_limits(prefetch, blocks);
            let engine = ServeEngine::start(Arc::clone(&g), tuned);
            let served = engine.run_requests(&requests);
            for (s, r) in served.iter().zip(&reference) {
                let (sr, rr) = (s.result.as_ref().unwrap(), r.result.as_ref().unwrap());
                assert_eq!(sr.ranking, rr.ranking);
                assert_eq!(sr.bounds, rr.bounds);
            }
            engine.shutdown();
        }
    }

    #[test]
    fn cache_preserves_backend_provenance_across_routes() {
        // One engine on the distributed backend with a cache: a request
        // computed distributed then re-requested with a local route must
        // hit the same (backend-agnostic) entry and keep the original
        // provenance — including the wire cost the computation paid.
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_backend(Backend::Distributed { gps: 2 })
            .with_cache_capacity(64);
        let engine = ServeEngine::start(Arc::new(g), config);
        let cold = engine.submit(QueryRequest::node(ids.t1)).wait();
        assert!(!cold.from_cache);
        assert_eq!(cold.backend, BackendKind::Distributed);
        let cold_stats = cold.distributed.expect("wire cost recorded");
        assert!(cold_stats.bytes_transferred > 0);

        let warm = engine
            .submit(QueryRequest::node(ids.t1).with_backend(BackendKind::Local))
            .wait();
        assert!(warm.from_cache, "local-routed request must hit the entry");
        assert_eq!(warm.backend, BackendKind::Distributed, "provenance kept");
        assert_eq!(warm.distributed, Some(cold_stats));
        assert_eq!(engine.computed_queries(), 1);
        assert_eq!(cold.result.unwrap().ranking, warm.result.unwrap().ranking);
    }

    #[test]
    fn failed_queries_report_routed_backend() {
        let (g, _) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy())
            .with_backend(Backend::Distributed { gps: 2 });
        let engine = ServeEngine::start(Arc::new(g), config);
        let response = engine.submit(QueryRequest::node(NodeId(9999))).wait();
        assert!(response.result.is_err());
        assert_eq!(response.backend, BackendKind::Distributed);
        assert!(response.distributed.is_none());
    }

    #[test]
    fn distributed_route_on_local_engine_records_fallback() {
        // A local-only engine routed a Distributed request must serve it
        // locally AND say so: backend == Local, routed_fallback == true.
        let (engine, ids) = toy_engine(2);
        assert!(engine.distributed_backend().is_none());
        let response = engine
            .submit(QueryRequest::node(ids.t1).with_backend(BackendKind::Distributed))
            .wait();
        assert!(response.result.is_ok());
        assert_eq!(response.backend, BackendKind::Local);
        assert!(response.routed_fallback, "substitution must be recorded");
        // The same route through the serial reference is flagged too.
        let serial = run_serial_requests(
            engine.graph(),
            engine.config(),
            &[QueryRequest::node(ids.t1).with_backend(BackendKind::Distributed)],
        );
        assert!(serial[0].routed_fallback);
    }

    #[test]
    fn honored_routes_do_not_claim_fallback() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_backend(Backend::Distributed { gps: 2 });
        let engine = ServeEngine::start(Arc::new(g), config);
        for request in [
            QueryRequest::node(ids.t1),
            QueryRequest::node(ids.t1).with_backend(BackendKind::Distributed),
            QueryRequest::node(ids.t1).with_backend(BackendKind::Local),
        ] {
            let response = engine.submit(request).wait();
            assert!(response.result.is_ok());
            assert!(!response.routed_fallback, "route was honored");
        }
    }

    #[test]
    fn dead_gp_surfaces_as_backend_error_naming_it() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy())
            .with_backend(Backend::Distributed { gps: 2 });
        let engine = ServeEngine::start(Arc::new(g), config);
        engine
            .distributed_backend()
            .expect("distributed engine")
            .cluster()
            .kill_gp(1);
        // The toy graph's frontier spans both stripes, so the query must
        // hit the dead GP — and fail as a *backend* error naming it, not a
        // query error.
        let response = engine.submit(QueryRequest::node(ids.t1)).wait();
        match &response.result {
            Err(ServeError::Backend(msg)) => {
                assert!(msg.contains("graph processor 1"), "got: {msg}");
            }
            other => panic!("expected a backend error, got {other:?}"),
        }
        // The worker survived with usable buffers: a local-routed request
        // on the same worker still serves.
        let ok = engine
            .submit(QueryRequest::node(ids.t1).with_backend(BackendKind::Local))
            .wait();
        assert!(ok.result.is_ok());
        assert_eq!(ok.backend, BackendKind::Local);
        // Engine drop (GpCluster drop with a dead GP) must not hang.
        engine.shutdown();
    }

    #[test]
    fn failed_queries_are_not_cached() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(128);
        let engine = ServeEngine::start(Arc::new(g), config);
        let bad = NodeId(9999);
        let outputs = engine.run_batch(&[bad, ids.t1, bad]);
        assert!(outputs[0].result.is_err());
        assert!(outputs[1].result.is_ok());
        assert!(outputs[2].result.is_err());
        assert_eq!(engine.cache_len(), 1, "only the good query is cached");
        // Both bad occurrences computed (errors are never served stale).
        assert_eq!(engine.computed_queries(), 3);
    }

    #[test]
    fn cache_hits_serve_inline_on_the_submitting_thread() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(64);
        let engine = ServeEngine::start(Arc::new(g), config);
        let first = engine.submit(QueryRequest::node(ids.t1).with_k(3)).wait();
        assert!(first.worker.is_some(), "a cold miss goes through a worker");
        let hit = engine.submit(QueryRequest::node(ids.t1).with_k(3)).wait();
        assert!(hit.from_cache);
        assert_eq!(
            hit.worker, None,
            "a cache hit never queues under work stealing"
        );
        assert_eq!(hit.queue_wait, Duration::ZERO);
        assert_eq!(
            first.result.unwrap().ranking,
            hit.result.unwrap().ranking,
            "fast path serves the identical shared result"
        );
    }

    #[test]
    fn trivial_requests_serve_inline_even_without_a_cache() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(0);
        let engine = ServeEngine::start(Arc::new(g), config);
        let response = engine.submit(QueryRequest::node(ids.t1).with_k(0)).wait();
        assert_eq!(response.worker, None, "k = 0 completes on the submitter");
        assert!(!response.from_cache);
        let r = response.result.unwrap();
        assert!(r.ranking.is_empty());
        assert!(r.converged);
        // A real search still queues.
        let response = engine.submit(QueryRequest::node(ids.t1).with_k(3)).wait();
        assert!(response.worker.is_some());
        assert_eq!(response.result.unwrap().ranking.len(), 3);
    }

    #[test]
    fn shared_queue_mode_still_serves_and_reports_its_worker() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(64)
            .with_scheduler(SchedulerMode::SharedQueue);
        let engine = ServeEngine::start(Arc::new(g), config);
        // The legacy scheduler has no fast path: even hits cross the queue.
        for expect_hit in [false, true] {
            let r = engine.submit(QueryRequest::node(ids.t1).with_k(3)).wait();
            assert_eq!(r.from_cache, expect_hit);
            assert!(r.worker.is_some(), "shared queue serves on a worker");
            assert!(r.result.is_ok());
        }
    }

    #[test]
    fn both_schedulers_agree_bit_for_bit() {
        let (g, ids) = fig2_toy();
        let queries: Vec<NodeId> = g.nodes().collect();
        let _ = ids;
        let mut per_mode = Vec::new();
        let graph = Arc::new(g);
        for scheduler in [SchedulerMode::SharedQueue, SchedulerMode::WorkStealing] {
            let config = ServeConfig::default()
                .with_workers(3)
                .with_topk(TopKConfig::toy())
                .with_scheduler(scheduler);
            let engine = ServeEngine::start(Arc::clone(&graph), config);
            per_mode.push(engine.run_batch(&queries));
        }
        for (a, b) in per_mode[0].iter().zip(&per_mode[1]) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(a.ranking, b.ranking);
            assert_eq!(a.bounds, b.bounds); // exact f64 equality
            assert_eq!(a.expansions, b.expansions);
        }
    }

    #[test]
    fn metrics_snapshot_counts_responses_and_renders_prometheus() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_metrics(true);
        let engine = ServeEngine::start(Arc::new(g), config);
        let n = engine.run_batch(&[ids.t1, ids.t2, ids.v1]).len();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter_total("rtr_serve_responses_total"), n as u64);
        assert_eq!(
            snap.histogram_total("rtr_serve_latency_seconds").count(),
            n as u64,
            "every response lands in the latency histogram"
        );
        let text = snap.to_prometheus();
        for name in [
            "rtr_serve_responses_total",
            "rtr_serve_errors_total",
            "rtr_serve_routed_fallback_total",
            "rtr_serve_latency_seconds_bucket",
            "rtr_serve_injector_depth",
            "rtr_serve_cache_enabled",
            "rtr_dist_wire_bytes_total",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn metrics_off_still_snapshots_a_zeroed_catalog() {
        let (engine, ids) = toy_engine(2);
        let _ = engine.run_batch(&[ids.t1]);
        let snap = engine.metrics_snapshot();
        // Catalog present, nothing recorded.
        assert_eq!(snap.counter_total("rtr_serve_responses_total"), 0);
        assert!(snap.to_prometheus().contains("rtr_serve_responses_total"));
    }

    #[test]
    fn error_and_fallback_counters_record() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy())
            .with_metrics(true);
        let engine = ServeEngine::start(Arc::new(g), config);
        let bad = engine.submit(QueryRequest::node(NodeId(9999))).wait();
        assert!(bad.result.is_err());
        let fb = engine
            .submit(QueryRequest::node(ids.t1).with_backend(BackendKind::Distributed))
            .wait();
        assert!(fb.routed_fallback);
        let snap = engine.metrics_snapshot();
        assert_eq!(
            snap.counter_value("rtr_serve_errors_total", &[("kind", "query")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("rtr_serve_routed_fallback_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn tracing_off_attaches_no_trace() {
        let (engine, ids) = toy_engine(2);
        let response = engine.submit(QueryRequest::node(ids.t1)).wait();
        assert!(response.trace.is_none());
    }

    #[test]
    fn tracing_records_a_monotone_queued_timeline() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(64)
            .with_tracing(true);
        let engine = ServeEngine::start(Arc::new(g), config);
        let cold = engine.submit(QueryRequest::node(ids.t1).with_k(3)).wait();
        let trace = cold.trace.expect("tracing on");
        let stages: Vec<TraceStage> = trace.events().iter().map(|e| e.stage).collect();
        assert_eq!(stages.first(), Some(&TraceStage::Submit));
        assert_eq!(stages.last(), Some(&TraceStage::Respond));
        for need in [
            TraceStage::Enqueue,
            TraceStage::Dequeue,
            TraceStage::ComputeStart,
            TraceStage::CacheInsert,
            TraceStage::ComputeEnd,
        ] {
            assert!(stages.contains(&need), "missing {need:?} in {stages:?}");
        }
        assert!(!stages.contains(&TraceStage::FastPath), "cold miss queued");
        for pair in trace.events().windows(2) {
            assert!(pair[0].at <= pair[1].at, "stages must be monotone");
        }
        // A warm hit completes inline and says so.
        let warm = engine.submit(QueryRequest::node(ids.t1).with_k(3)).wait();
        let trace = warm.trace.expect("tracing on");
        let stages: Vec<TraceStage> = trace.events().iter().map(|e| e.stage).collect();
        assert!(stages.contains(&TraceStage::FastPath));
        assert_eq!(stages.last(), Some(&TraceStage::Respond));
    }

    #[test]
    fn cache_stats_distinguishes_disabled_from_idle() {
        // Disabled: no cache was constructed; None forever.
        let (off, ids) = toy_engine(1);
        assert!(off.cache_stats().is_none());
        assert_eq!(
            off.metrics_snapshot()
                .gauge_value("rtr_serve_cache_enabled", &[]),
            Some(0)
        );
        // Enabled but idle: stats exist and are all zero — not None.
        let (g, _) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(16);
        let idle = ServeEngine::start(Arc::new(g), config);
        let stats = idle.cache_stats().expect("cache exists before traffic");
        assert_eq!((stats.hits, stats.misses, stats.inserts), (0, 0, 0));
        assert_eq!(
            idle.metrics_snapshot()
                .gauge_value("rtr_serve_cache_enabled", &[]),
            Some(1)
        );
        let _ = ids;
    }

    #[test]
    fn stealing_keeps_all_workers_correct_under_a_skewed_burst() {
        // One hot query plus a long tail, submitted in one burst: whatever
        // interleaving of stealing, attaching, and fast-path serving
        // happens, every response must match the serial reference.
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(4)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(256);
        let mut requests = Vec::new();
        for round in 0..16 {
            requests.push(QueryRequest::node(ids.t1).with_k(3));
            if round % 2 == 0 {
                requests.push(QueryRequest::node(ids.v1).with_k(round % 5));
            }
        }
        let serial = run_serial_requests(
            &g,
            &ServeConfig::default().with_topk(TopKConfig::toy()),
            &requests,
        );
        let engine = ServeEngine::start(Arc::new(g), config);
        let pooled = engine.run_requests(&requests);
        for (s, p) in serial.iter().zip(&pooled) {
            let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
            assert_eq!(s.ranking, p.ranking);
            assert_eq!(s.bounds, p.bounds);
        }
    }
}
