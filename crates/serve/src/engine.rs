//! The worker pool.
//!
//! One [`ServeEngine`] owns `workers` long-lived threads. Each worker loops
//! on a shared crossbeam job queue, runs the query with
//! [`TwoSBound::run_with`] against its *own* persistent
//! [`TopKWorkspace`], and sends the output down the batch's reply channel.
//! The workspace is what makes steady-state serving allocation-free: the
//! sparse maps and scratch vectors are wiped in O(touched) between queries
//! and never freed while the worker lives.
//!
//! Shutdown is by hangup: dropping the engine drops the job sender, every
//! worker's `recv` errors out, and the threads are joined.

use crate::config::ServeConfig;
use crossbeam::channel::{self, Sender};
use rtr_core::CoreError;
use rtr_graph::{Graph, NodeId};
use rtr_topk::{TopKResult, TopKWorkspace, TwoSBound};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a served query produced no result. Workers survive *any* failing
/// query — including one that panics inside the engine — so a bad query
/// can never hang or poison the rest of its batch.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The engine rejected or failed the query (e.g. an out-of-range node
    /// id).
    Query(CoreError),
    /// The query panicked inside the engine; the worker caught it,
    /// discarded its (possibly mid-mutation) workspace, and kept serving.
    Panicked(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::Panicked(msg) => write!(f, "query panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Query(e)
    }
}

/// One served query's output.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Position of the query in its batch (outputs are returned sorted by
    /// this, so a batch's outputs align with its input slice).
    pub id: usize,
    /// The query node.
    pub query: NodeId,
    /// The top-K result, or the per-query error.
    pub result: Result<TopKResult, ServeError>,
    /// Wall-clock time the worker spent on this query.
    pub latency: Duration,
}

/// Human-readable payload of a caught panic.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A unit of work: which query to run and where to send the output.
struct Job {
    id: usize,
    query: NodeId,
    reply: Sender<QueryOutput>,
}

/// A fixed pool of query workers over a shared read-only graph.
///
/// See the [crate docs](crate) for an end-to-end example. Batches may be
/// submitted from multiple threads concurrently; each batch collects only
/// its own outputs.
pub struct ServeEngine {
    graph: Arc<Graph>,
    config: ServeConfig,
    job_tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Start `config.workers` (at least 1) worker threads over `graph`.
    pub fn start(graph: Arc<Graph>, config: ServeConfig) -> Self {
        let workers = config.workers.max(1);
        let runner = TwoSBound::with_scheme(config.params, config.topk, config.scheme);
        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let handles = (0..workers)
            .map(|_| {
                let rx = job_rx.clone();
                let g = Arc::clone(&graph);
                std::thread::spawn(move || {
                    // The worker's reusable workspace: allocated lazily on
                    // the first query, then recycled for every later one.
                    let mut ws = TopKWorkspace::new();
                    while let Ok(job) = rx.recv() {
                        let started = Instant::now();
                        // catch_unwind keeps the worker alive through a
                        // panicking query; a dead worker would strand the
                        // jobs still queued and hang their batches.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            runner.run_with(&g, job.query, &mut ws)
                        }));
                        let result = match result {
                            Ok(r) => r.map_err(ServeError::Query),
                            Err(panic) => {
                                // The workspace may have been mid-mutation
                                // when the panic unwound through it.
                                ws = TopKWorkspace::new();
                                Err(ServeError::Panicked(panic_message(&*panic)))
                            }
                        };
                        let out = QueryOutput {
                            id: job.id,
                            query: job.query,
                            result,
                            latency: started.elapsed(),
                        };
                        // A dropped reply receiver means the batch caller
                        // gave up; keep serving other batches.
                        let _ = job.reply.send(out);
                    }
                })
            })
            .collect();
        ServeEngine {
            graph,
            config,
            job_tx: Some(job_tx),
            handles,
        }
    }

    /// The shared graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of live worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Execute a batch of queries across the pool and return the outputs in
    /// input order. Blocks until the whole batch is done.
    ///
    /// Output values are bit-identical to [`run_serial`] at any worker
    /// count: queries are independent and every engine is deterministic.
    pub fn run_batch(&self, queries: &[NodeId]) -> Vec<QueryOutput> {
        let (reply_tx, reply_rx) = channel::unbounded::<QueryOutput>();
        let job_tx = self.job_tx.as_ref().expect("pool is running");
        for (id, &query) in queries.iter().enumerate() {
            job_tx
                .send(Job {
                    id,
                    query,
                    reply: reply_tx.clone(),
                })
                .expect("workers alive while engine exists");
        }
        // Drop our handle so the reply stream ends once every job replied.
        drop(reply_tx);
        let mut outputs: Vec<QueryOutput> = reply_rx.iter().collect();
        assert_eq!(
            outputs.len(),
            queries.len(),
            "worker died mid-batch (panicked query?)"
        );
        outputs.sort_unstable_by_key(|o| o.id);
        outputs
    }

    /// Stop the pool: hang up the job queue and join every worker. Called
    /// automatically on drop; explicit form for callers that want to
    /// observe the join.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.job_tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The serial reference executor: the same engine and workspace reuse as a
/// single pool worker, on the caller's thread. Batch serving at any worker
/// count must be bit-identical to this.
pub fn run_serial(g: &Graph, config: &ServeConfig, queries: &[NodeId]) -> Vec<QueryOutput> {
    let runner = TwoSBound::with_scheme(config.params, config.topk, config.scheme);
    let mut ws = TopKWorkspace::new();
    queries
        .iter()
        .enumerate()
        .map(|(id, &query)| {
            let started = Instant::now();
            let result = runner.run_with(g, query, &mut ws).map_err(ServeError::from);
            QueryOutput {
                id,
                query,
                result,
                latency: started.elapsed(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;
    use rtr_topk::TopKConfig;

    fn toy_engine(workers: usize) -> (ServeEngine, rtr_graph::toy::Fig2Ids) {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(workers)
            .with_topk(TopKConfig::toy());
        (ServeEngine::start(Arc::new(g), config), ids)
    }

    #[test]
    fn batch_outputs_align_with_inputs() {
        let (engine, ids) = toy_engine(3);
        let queries = vec![ids.t1, ids.v1, ids.t2, ids.v2];
        let outputs = engine.run_batch(&queries);
        assert_eq!(outputs.len(), queries.len());
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.id, i);
            assert_eq!(out.query, queries[i]);
            assert_eq!(out.result.as_ref().unwrap().ranking[0], queries[i]);
        }
    }

    #[test]
    fn pool_matches_serial_bit_for_bit() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(4)
            .with_topk(TopKConfig::toy());
        let queries: Vec<NodeId> = g.nodes().collect();
        let serial = run_serial(&g, &config, &queries);
        let engine = ServeEngine::start(Arc::new(g), config);
        let pooled = engine.run_batch(&queries);
        let _ = ids;
        for (s, p) in serial.iter().zip(&pooled) {
            let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
            assert_eq!(s.ranking, p.ranking);
            assert_eq!(s.bounds, p.bounds); // exact f64 equality
            assert_eq!(s.expansions, p.expansions);
        }
    }

    #[test]
    fn engine_survives_many_batches() {
        let (engine, ids) = toy_engine(2);
        let first = engine.run_batch(&[ids.t1]);
        for _ in 0..5 {
            let again = engine.run_batch(&[ids.t1]);
            assert_eq!(
                first[0].result.as_ref().unwrap().ranking,
                again[0].result.as_ref().unwrap().ranking
            );
        }
    }

    #[test]
    fn bad_query_reports_error_without_poisoning_batch() {
        let (engine, ids) = toy_engine(2);
        let outputs = engine.run_batch(&[ids.t1, NodeId(9999), ids.t2]);
        assert!(outputs[0].result.is_ok());
        assert!(matches!(
            outputs[1].result,
            Err(ServeError::Query(CoreError::NodeOutOfRange { .. }))
        ));
        assert!(outputs[2].result.is_ok());
    }

    #[test]
    fn bad_query_does_not_cost_the_worker_its_buffers() {
        // A rejected query must be answered from the same recycled
        // workspace path as a good one: running bad-good-bad-good serially
        // with one workspace must equal a fresh run of the good queries.
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy());
        let mixed = run_serial(&g, &config, &[ids.t1, NodeId(9999), ids.t2, NodeId(8888)]);
        let clean = run_serial(&g, &config, &[ids.t1, ids.t2]);
        assert_eq!(
            mixed[0].result.as_ref().unwrap().bounds,
            clean[0].result.as_ref().unwrap().bounds
        );
        assert_eq!(
            mixed[2].result.as_ref().unwrap().bounds,
            clean[1].result.as_ref().unwrap().bounds
        );
        assert!(mixed[1].result.is_err() && mixed[3].result.is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let (engine, _) = toy_engine(2);
        assert!(engine.run_batch(&[]).is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let (engine, ids) = toy_engine(0);
        assert_eq!(engine.workers(), 1);
        let outputs = engine.run_batch(&[ids.t1]);
        assert!(outputs[0].result.is_ok());
    }

    #[test]
    fn explicit_shutdown_joins() {
        let (engine, ids) = toy_engine(2);
        let _ = engine.run_batch(&[ids.t1]);
        engine.shutdown(); // must not hang
    }
}
