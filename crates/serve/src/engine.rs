//! The worker pool.
//!
//! One [`ServeEngine`] owns `workers` long-lived threads. Each worker loops
//! on a shared crossbeam job queue, runs the query with
//! [`TwoSBound::run_with`] against its *own* persistent
//! [`TopKWorkspace`], and sends the output down the batch's reply channel.
//! The workspace is what makes steady-state serving allocation-free: the
//! sparse maps and scratch vectors are wiped in O(touched) between queries
//! and never freed while the worker lives.
//!
//! Shutdown is by hangup: dropping the engine drops the job sender, every
//! worker's `recv` errors out, and the threads are joined.

use crate::config::ServeConfig;
use crate::flight::InFlight;
use crossbeam::channel::{self, Sender};
use rtr_cache::{CacheConfig, CacheKey, CacheStats, ResultCache};
use rtr_core::CoreError;
use rtr_graph::{Graph, NodeId};
use rtr_topk::{TopKResult, TopKWorkspace, TwoSBound};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a served query produced no result. Workers survive *any* failing
/// query — including one that panics inside the engine — so a bad query
/// can never hang or poison the rest of its batch.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The engine rejected or failed the query (e.g. an out-of-range node
    /// id).
    Query(CoreError),
    /// The query panicked inside the engine; the worker caught it,
    /// discarded its (possibly mid-mutation) workspace, and kept serving.
    Panicked(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::Panicked(msg) => write!(f, "query panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Query(e)
    }
}

/// One served query's output.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Position of the query in its batch (outputs are returned sorted by
    /// this, so a batch's outputs align with its input slice).
    pub id: usize,
    /// The query node.
    pub query: NodeId,
    /// The top-K result, or the per-query error.
    pub result: Result<TopKResult, ServeError>,
    /// Wall-clock time the worker spent on this query.
    pub latency: Duration,
}

/// Human-readable payload of a caught panic.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A unit of work: which query to run and where to send the output.
struct Job {
    id: usize,
    query: NodeId,
    reply: Sender<QueryOutput>,
}

/// State every worker shares: the graph, the runner, and (when caching is
/// on) the result cache, the single-flight table, and the computation
/// counter the single-flight tests assert on.
struct Shared {
    graph: Arc<Graph>,
    config: ServeConfig,
    runner: TwoSBound,
    cache: Option<ResultCache>,
    flight: InFlight<CacheKey>,
    /// Queries that actually ran an engine (as opposed to being answered
    /// from the cache or a shared in-flight computation).
    computed: AtomicU64,
}

impl Shared {
    /// Run one query against the engine, recycling `ws`. Catches panics so
    /// a bad query can never kill the worker, and counts the computation.
    fn compute(&self, query: NodeId, ws: &mut TopKWorkspace) -> Result<TopKResult, ServeError> {
        self.computed.fetch_add(1, Ordering::Relaxed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.runner.run_with(&self.graph, query, ws)
        }));
        match result {
            Ok(r) => r.map_err(ServeError::Query),
            Err(panic) => {
                // The workspace may have been mid-mutation when the panic
                // unwound through it.
                *ws = TopKWorkspace::new();
                Err(ServeError::Panicked(panic_message(&*panic)))
            }
        }
    }

    /// The full serving path for one query: cache lookup, single-flight
    /// deduplication, compute, insert. With the cache off this is exactly
    /// one [`Shared::compute`] call — the pre-cache behavior.
    fn serve(&self, query: NodeId, ws: &mut TopKWorkspace) -> Result<TopKResult, ServeError> {
        let Some(cache) = &self.cache else {
            return self.compute(query, ws);
        };
        let key = CacheKey::new(
            query,
            self.graph.epoch(),
            &self.config.params,
            &self.config.topk,
            self.config.scheme,
        );
        loop {
            if let Some(hit) = cache.get(&key) {
                // Engines are deterministic and every output-relevant input
                // is in the key, so the cached ranking is bit-identical to
                // what a fresh run would produce.
                return Ok((*hit).clone());
            }
            if !self.config.single_flight {
                let result = self.compute(query, ws);
                if let Ok(r) = &result {
                    cache.insert(key, Arc::new(r.clone()));
                }
                return result;
            }
            if self.flight.begin(&key) {
                // Double-check while owning the key: between our miss above
                // and our claim, the previous owner may have inserted and
                // finished — computing now would break compute-exactly-once.
                // Every insert happens under ownership of the key, so an
                // owner's recheck-miss is authoritative.
                let result = match cache.recheck(&key) {
                    Some(hit) => Ok((*hit).clone()),
                    None => {
                        let result = self.compute(query, ws);
                        if let Ok(r) = &result {
                            cache.insert(key, Arc::new(r.clone()));
                        }
                        result
                    }
                };
                // Failed queries are not cached (and are cheap to redo);
                // release the key on every path so waiters never strand.
                self.flight.finish(&key);
                return result;
            }
            // Someone else is computing this exact key: wait for them,
            // then re-check the cache (hit unless their run failed).
            self.flight.wait(&key);
        }
    }
}

/// A fixed pool of query workers over a shared read-only graph.
///
/// See the [crate docs](crate) for an end-to-end example. Batches may be
/// submitted from multiple threads concurrently; each batch collects only
/// its own outputs.
pub struct ServeEngine {
    shared: Arc<Shared>,
    job_tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Start `config.workers` (at least 1) worker threads over `graph`.
    pub fn start(graph: Arc<Graph>, config: ServeConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            runner: TwoSBound::with_scheme(config.params, config.topk, config.scheme),
            cache: config.cache_enabled().then(|| {
                ResultCache::new(CacheConfig {
                    capacity: config.cache_capacity,
                    shards: config.cache_shards,
                })
            }),
            flight: InFlight::new(),
            computed: AtomicU64::new(0),
            graph,
            config,
        });
        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let handles = (0..workers)
            .map(|_| {
                let rx = job_rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // The worker's reusable workspace: allocated lazily on
                    // the first query, then recycled for every later one.
                    // Panics inside a query are caught in Shared::compute;
                    // a dead worker would strand the jobs still queued and
                    // hang their batches.
                    let mut ws = TopKWorkspace::new();
                    while let Ok(job) = rx.recv() {
                        let started = Instant::now();
                        let result = shared.serve(job.query, &mut ws);
                        let out = QueryOutput {
                            id: job.id,
                            query: job.query,
                            result,
                            latency: started.elapsed(),
                        };
                        // A dropped reply receiver means the batch caller
                        // gave up; keep serving other batches.
                        let _ = job.reply.send(out);
                    }
                })
            })
            .collect();
        ServeEngine {
            shared,
            job_tx: Some(job_tx),
            handles,
        }
    }

    /// The shared graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.shared.graph
    }

    /// Result-cache traffic counters, or `None` when the cache is off.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.cache.as_ref().map(|c| c.stats())
    }

    /// Entries currently resident in the result cache (0 when off).
    pub fn cache_len(&self) -> usize {
        self.shared.cache.as_ref().map_or(0, |c| c.len())
    }

    /// How many queries actually ran an engine, as opposed to being served
    /// from the cache or a shared in-flight computation. With single-flight
    /// on, a batch of M copies of one (new) query advances this by exactly
    /// 1 — the `single_flight` stress suite pins that.
    pub fn computed_queries(&self) -> u64 {
        self.shared.computed.load(Ordering::Relaxed)
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Number of live worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Execute a batch of queries across the pool and return the outputs in
    /// input order. Blocks until the whole batch is done.
    ///
    /// Output values are bit-identical to [`run_serial`] at any worker
    /// count: queries are independent and every engine is deterministic.
    pub fn run_batch(&self, queries: &[NodeId]) -> Vec<QueryOutput> {
        let (reply_tx, reply_rx) = channel::unbounded::<QueryOutput>();
        let job_tx = self.job_tx.as_ref().expect("pool is running");
        for (id, &query) in queries.iter().enumerate() {
            job_tx
                .send(Job {
                    id,
                    query,
                    reply: reply_tx.clone(),
                })
                .expect("workers alive while engine exists");
        }
        // Drop our handle so the reply stream ends once every job replied.
        drop(reply_tx);
        let mut outputs: Vec<QueryOutput> = reply_rx.iter().collect();
        assert_eq!(
            outputs.len(),
            queries.len(),
            "worker died mid-batch (panicked query?)"
        );
        outputs.sort_unstable_by_key(|o| o.id);
        outputs
    }

    /// Stop the pool: hang up the job queue and join every worker. Called
    /// automatically on drop; explicit form for callers that want to
    /// observe the join.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.job_tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The serial reference executor: the same engine and workspace reuse as a
/// single pool worker, on the caller's thread. Batch serving at any worker
/// count must be bit-identical to this.
pub fn run_serial(g: &Graph, config: &ServeConfig, queries: &[NodeId]) -> Vec<QueryOutput> {
    let runner = TwoSBound::with_scheme(config.params, config.topk, config.scheme);
    let mut ws = TopKWorkspace::new();
    queries
        .iter()
        .enumerate()
        .map(|(id, &query)| {
            let started = Instant::now();
            let result = runner.run_with(g, query, &mut ws).map_err(ServeError::from);
            QueryOutput {
                id,
                query,
                result,
                latency: started.elapsed(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;
    use rtr_topk::TopKConfig;

    fn toy_engine(workers: usize) -> (ServeEngine, rtr_graph::toy::Fig2Ids) {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(workers)
            .with_topk(TopKConfig::toy());
        (ServeEngine::start(Arc::new(g), config), ids)
    }

    #[test]
    fn batch_outputs_align_with_inputs() {
        let (engine, ids) = toy_engine(3);
        let queries = vec![ids.t1, ids.v1, ids.t2, ids.v2];
        let outputs = engine.run_batch(&queries);
        assert_eq!(outputs.len(), queries.len());
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.id, i);
            assert_eq!(out.query, queries[i]);
            assert_eq!(out.result.as_ref().unwrap().ranking[0], queries[i]);
        }
    }

    #[test]
    fn pool_matches_serial_bit_for_bit() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(4)
            .with_topk(TopKConfig::toy());
        let queries: Vec<NodeId> = g.nodes().collect();
        let serial = run_serial(&g, &config, &queries);
        let engine = ServeEngine::start(Arc::new(g), config);
        let pooled = engine.run_batch(&queries);
        let _ = ids;
        for (s, p) in serial.iter().zip(&pooled) {
            let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
            assert_eq!(s.ranking, p.ranking);
            assert_eq!(s.bounds, p.bounds); // exact f64 equality
            assert_eq!(s.expansions, p.expansions);
        }
    }

    #[test]
    fn engine_survives_many_batches() {
        let (engine, ids) = toy_engine(2);
        let first = engine.run_batch(&[ids.t1]);
        for _ in 0..5 {
            let again = engine.run_batch(&[ids.t1]);
            assert_eq!(
                first[0].result.as_ref().unwrap().ranking,
                again[0].result.as_ref().unwrap().ranking
            );
        }
    }

    #[test]
    fn bad_query_reports_error_without_poisoning_batch() {
        let (engine, ids) = toy_engine(2);
        let outputs = engine.run_batch(&[ids.t1, NodeId(9999), ids.t2]);
        assert!(outputs[0].result.is_ok());
        assert!(matches!(
            outputs[1].result,
            Err(ServeError::Query(CoreError::NodeOutOfRange { .. }))
        ));
        assert!(outputs[2].result.is_ok());
    }

    #[test]
    fn bad_query_does_not_cost_the_worker_its_buffers() {
        // A rejected query must be answered from the same recycled
        // workspace path as a good one: running bad-good-bad-good serially
        // with one workspace must equal a fresh run of the good queries.
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy());
        let mixed = run_serial(&g, &config, &[ids.t1, NodeId(9999), ids.t2, NodeId(8888)]);
        let clean = run_serial(&g, &config, &[ids.t1, ids.t2]);
        assert_eq!(
            mixed[0].result.as_ref().unwrap().bounds,
            clean[0].result.as_ref().unwrap().bounds
        );
        assert_eq!(
            mixed[2].result.as_ref().unwrap().bounds,
            clean[1].result.as_ref().unwrap().bounds
        );
        assert!(mixed[1].result.is_err() && mixed[3].result.is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let (engine, _) = toy_engine(2);
        assert!(engine.run_batch(&[]).is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let (engine, ids) = toy_engine(0);
        assert_eq!(engine.workers(), 1);
        let outputs = engine.run_batch(&[ids.t1]);
        assert!(outputs[0].result.is_ok());
    }

    #[test]
    fn explicit_shutdown_joins() {
        let (engine, ids) = toy_engine(2);
        let _ = engine.run_batch(&[ids.t1]);
        engine.shutdown(); // must not hang
    }

    #[test]
    fn duplicate_queries_in_one_batch_all_answered_identically() {
        // The same query node several times in one batch must yield one
        // output per occurrence, aligned by position, all bit-identical —
        // through the pool path, cache off and cache on.
        for capacity in [0usize, 64] {
            let (g, ids) = fig2_toy();
            let config = ServeConfig::default()
                .with_workers(4)
                .with_topk(TopKConfig::toy())
                .with_cache_capacity(capacity);
            let engine = ServeEngine::start(Arc::new(g), config);
            let queries = vec![ids.t1, ids.v1, ids.t1, ids.t1, ids.v1];
            let outputs = engine.run_batch(&queries);
            assert_eq!(outputs.len(), queries.len());
            let first = outputs[0].result.as_ref().unwrap();
            for dup in [2, 3] {
                let r = outputs[dup].result.as_ref().unwrap();
                assert_eq!(outputs[dup].query, ids.t1);
                assert_eq!(r.ranking, first.ranking, "capacity {capacity}");
                assert_eq!(r.bounds, first.bounds, "capacity {capacity}");
            }
            assert_eq!(
                outputs[4].result.as_ref().unwrap().ranking,
                outputs[1].result.as_ref().unwrap().ranking
            );
        }
    }

    #[test]
    fn k_zero_queries_through_the_pool() {
        // K = 0 short-circuits inside the engine; the pool (and the cache
        // path) must carry the empty result through unchanged.
        for capacity in [0usize, 64] {
            let (g, ids) = fig2_toy();
            let config = ServeConfig::default()
                .with_workers(3)
                .with_topk(TopKConfig {
                    k: 0,
                    ..TopKConfig::toy()
                })
                .with_cache_capacity(capacity);
            let engine = ServeEngine::start(Arc::new(g), config);
            let outputs = engine.run_batch(&[ids.t1, ids.v1, ids.t1]);
            for out in &outputs {
                let r = out.result.as_ref().unwrap();
                assert!(r.ranking.is_empty(), "capacity {capacity}");
                assert!(r.bounds.is_empty());
                assert!(r.converged);
            }
        }
    }

    #[test]
    fn cache_off_reports_no_stats_and_counts_every_computation() {
        let (engine, ids) = toy_engine(2);
        assert!(engine.cache_stats().is_none());
        let n = engine.run_batch(&[ids.t1, ids.t1, ids.t2]).len() as u64;
        assert_eq!(engine.computed_queries(), n);
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn cache_hits_repeated_batches() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(2)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(128);
        let engine = ServeEngine::start(Arc::new(g), config);
        let queries = vec![ids.t1, ids.t2, ids.v1];
        let cold = engine.run_batch(&queries);
        let warm = engine.run_batch(&queries);
        let stats = engine.cache_stats().expect("cache on");
        assert_eq!(stats.inserts, 3);
        assert!(stats.hits >= 3, "warm batch must hit, got {stats:?}");
        assert_eq!(engine.computed_queries(), 3);
        assert_eq!(engine.cache_len(), 3);
        for (c, w) in cold.iter().zip(&warm) {
            let (c, w) = (c.result.as_ref().unwrap(), w.result.as_ref().unwrap());
            assert_eq!(c.ranking, w.ranking);
            assert_eq!(c.bounds, w.bounds); // exact f64 equality
        }
    }

    #[test]
    fn failed_queries_are_not_cached() {
        let (g, ids) = fig2_toy();
        let config = ServeConfig::default()
            .with_workers(1)
            .with_topk(TopKConfig::toy())
            .with_cache_capacity(128);
        let engine = ServeEngine::start(Arc::new(g), config);
        let bad = NodeId(9999);
        let outputs = engine.run_batch(&[bad, ids.t1, bad]);
        assert!(outputs[0].result.is_err());
        assert!(outputs[1].result.is_ok());
        assert!(outputs[2].result.is_err());
        assert_eq!(engine.cache_len(), 1, "only the good query is cached");
        // Both bad occurrences computed (errors are never served stale).
        assert_eq!(engine.computed_queries(), 3);
    }
}
