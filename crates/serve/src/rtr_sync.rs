//! Synchronization-primitive facade for this crate's hot concurrency
//! protocols (single-flight, scheduler parking, shutdown/stat atomics).
//!
//! Production builds (`rtr_check` off, the default and the only
//! configuration tier-1 ever builds) re-export plain `std::sync` — zero
//! overhead, byte-identical behavior. Under the `rtr_check` feature the
//! same names resolve to `loom_shim`'s instrumented types, so
//! `rtr-check` model suites can exhaustively explore every interleaving
//! of these protocols. Code in this crate imports sync primitives from
//! here, never from `std::sync` directly (enforced by convention; the
//! modeled modules are `flight` and `engine`).

#[cfg(feature = "rtr_check")]
pub(crate) use loom_shim::sync::{Condvar, Mutex};
#[cfg(not(feature = "rtr_check"))]
pub(crate) use std::sync::{Condvar, Mutex};

/// Atomic types routed through the facade; `Ordering` is always the real
/// `std` enum (loom-shim re-exports it unchanged).
pub(crate) mod atomic {
    #[cfg(feature = "rtr_check")]
    pub(crate) use loom_shim::sync::atomic::{AtomicBool, AtomicU64};
    #[cfg(not(feature = "rtr_check"))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64};

    pub(crate) use std::sync::atomic::Ordering;
}
