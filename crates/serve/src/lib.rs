//! # rtr-serve — concurrent query serving for every RoundTripRank measure
//!
//! The paper builds 2SBound so that top-K RoundTripRank queries are cheap
//! enough for *online* use; this crate is the layer that actually serves
//! them online — and not just RoundTripRank: one engine serves the full
//! measure space (F-Rank, T-Rank, RTR, RTR+β), with per-request k,
//! parameters, and scheme. It pairs
//!
//! * **self-describing requests** ([`QueryRequest`]: single- or weighted
//!   multi-node query, [`rtr_core::Measure`], optional k /
//!   [`rtr_core::RankParams`] / [`rtr_topk::TopKConfig`] /
//!   [`rtr_topk::Scheme`] / backend-routing overrides falling back to the
//!   engine's [`ServeConfig`] defaults), dispatched per measure to the
//!   right engine path (bound search for single-node RTR/RTR+, exact
//!   iteration for F/T and the multi-node linearity reduction), executed
//!   by
//! * a **pluggable execution backend** ([`ExecBackend`]):
//!   [`LocalBackend`] runs the in-process workspace engines;
//!   [`DistributedBackend`] runs the paper's AP/GP architecture — the
//!   graph striped across GP threads, each worker an active processor
//!   fetching node blocks on demand — with a recorded, deterministic
//!   local fallback for the shapes the protocol doesn't cover. Backends
//!   are bit-identical mirrors, so routing (engine-wide via
//!   [`ServeConfig::backend`], per request via
//!   [`QueryRequest::with_backend`]) changes where work happens and what
//!   the response can observe ([`QueryResponse::backend`],
//!   [`DistributedStats`] wire costs) — never the answers — over
//! * a **shared read-only graph** (`Arc<Graph>` — the frozen dual-CSR is
//!   `Send + Sync`, so queries need no locks), served by
//! * a **fixed pool of worker threads**, each owning one reusable
//!   [`ServeWorkspace`] so that steady-state serving performs zero
//!   per-query allocation on the bound paths, fed through
//! * **crossbeam channels** as the job and reply queues (workers compete
//!   for jobs on a shared queue; each submission gets its own reply
//!   channel, so concurrent batches never interleave results).
//!
//! Submission is non-blocking: [`ServeEngine::submit`] returns a
//! [`QueryTicket`] to join later, and [`ServeEngine::run_requests`] /
//! [`ServeEngine::run_batch`] are the blocking batch forms. Every
//! [`QueryResponse`] reports the request as it actually ran, a
//! `from_cache` flag, and its latency split into queue-wait and compute.
//!
//! Concurrency never changes answers: every request is independent and
//! every engine path deterministic, so a batch executed at any worker
//! count is bit-identical to the serial reference
//! ([`run_serial_requests`]) — the `serve_determinism` and
//! `serve_requests` integration suites enforce this at 1, 2, and 8
//! workers, for heterogeneous measure mixes.
//!
//! **Caching.** Real traffic is Zipf-skewed, so the engine can optionally
//! front the pool with an `rtr-cache` sharded result cache
//! ([`ServeConfig::cache_capacity`] > 0): workers look up the full request
//! identity — canonicalized query, measure (β bits included), graph epoch,
//! params, top-K config, scheme — before dispatch and insert on
//! completion, and **single-flight deduplication**
//! ([`ServeConfig::single_flight`]) collapses M concurrent identical
//! requests into one computation whose result all M share. Because every
//! output-relevant input is part of the cache key and the engines are
//! deterministic, cached serving stays bit-identical to
//! [`run_serial_requests`] even under heterogeneous traffic — the
//! `serve_cache_determinism` suite enforces that too. The key is
//! **backend-agnostic** (routing is not identity): an entry computed by
//! either backend answers both, and a hit preserves the computing run's
//! provenance and wire cost. With the cache off (the default) the engine
//! behaves exactly as an uncached pool.
//!
//! ```
//! use std::sync::Arc;
//! use rtr_core::Measure;
//! use rtr_graph::toy::fig2_toy;
//! use rtr_serve::{QueryRequest, ServeConfig, ServeEngine};
//!
//! let (g, ids) = fig2_toy();
//! let engine = ServeEngine::start(Arc::new(g), ServeConfig::default().with_workers(2));
//! // One pool, four kinds of proximity query.
//! let responses = engine.run_requests(&[
//!     QueryRequest::node(ids.t1),                                        // RoundTripRank
//!     QueryRequest::node(ids.t1).with_measure(Measure::F).with_k(3),     // importance, top-3
//!     QueryRequest::node(ids.t2).with_measure(Measure::RtrPlus { beta: 0.8 }),
//!     QueryRequest::nodes(&[ids.t1, ids.t2]),                            // multi-node query
//! ]);
//! assert_eq!(responses.len(), 4);
//! // Responses come back in request order and say what actually ran.
//! assert_eq!(responses[1].request.topk.k, 3);
//! assert_eq!(responses[0].result.as_ref().unwrap().ranking[0], ids.t1);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod config;
pub mod engine;
mod flight;
mod metrics;
pub mod request;
pub mod response;
mod rtr_sync;

/// Internals re-exported for the `rtr-check` model suites — only under
/// the `rtr_check` feature, which production builds never enable.
///
/// Exposes the two hot protocols this crate hand-reasons about:
/// [`check_api::InFlight`] (single-flight attach/claim/wait/finish) and
/// [`check_api::Park`] (the scheduler's generation-counted parking lot),
/// both built on the [`loom_shim`]-instrumented facade so a model run
/// can drive every interleaving.
#[cfg(feature = "rtr_check")]
pub mod check_api {
    pub use crate::engine::Park;
    pub use crate::flight::InFlight;
}

pub use backend::{
    Backend, BackendKind, DistributedBackend, ExecBackend, ExecOutcome, LocalBackend,
};
pub use config::{SchedulerMode, ServeConfig, ServeConfigBuilder, ServeConfigError};
pub use engine::{run_serial, run_serial_requests, QueryOutput, ServeEngine, ServeError};
pub use request::{QueryRequest, ResolvedRequest, ServeWorkspace};
pub use response::{QueryResponse, QueryTicket};
// Re-exported so callers reading `ServeEngine::cache_stats`, building
// requests, or inspecting distributed wire costs need no direct
// rtr-cache / rtr-core / rtr-distributed dependency.
pub use rtr_cache::CacheStats;
pub use rtr_core::Measure;
pub use rtr_distributed::DistributedStats;
// Observability types surfaced by the engine: `metrics_snapshot()`
// returns a `MetricsSnapshot`, traced responses carry a `QueryTrace`.
pub use rtr_obs::{MetricsSnapshot, QueryTrace, Registry, TraceEvent, TraceStage};
