//! # rtr-serve — concurrent query serving for RoundTripRank top-K
//!
//! The paper builds 2SBound so that top-K RoundTripRank queries are cheap
//! enough for *online* use; this crate is the layer that actually serves
//! them online. It pairs
//!
//! * a **shared read-only graph** (`Arc<Graph>` — the frozen dual-CSR is
//!   `Send + Sync`, so queries need no locks), with
//! * a **fixed pool of worker threads**, each owning one reusable
//!   [`rtr_topk::TopKWorkspace`] so that steady-state serving performs
//!   zero per-query allocation on the hot path, fed through
//! * **crossbeam channels** as the job and result queues (workers compete
//!   for jobs on a shared queue; each batch gets its own reply channel, so
//!   concurrent batches never interleave results).
//!
//! Concurrency never changes answers: every query is independent and every
//! engine deterministic, so a batch executed at any worker count is
//! bit-identical to the serial reference ([`run_serial`]) — the
//! `serve_determinism` integration suite enforces this at 1, 2, and 8
//! workers.
//!
//! **Caching.** Real traffic is Zipf-skewed, so the engine can optionally
//! front the pool with an `rtr-cache` sharded top-K result cache
//! ([`ServeConfig::cache_capacity`] > 0): workers look up
//! `(query, graph epoch, params, config, scheme)` before dispatch and
//! insert on completion, and **single-flight deduplication**
//! ([`ServeConfig::single_flight`]) collapses M concurrent identical
//! queries into one computation whose result all M share. Because every
//! output-relevant input is part of the cache key and the engines are
//! deterministic, cached serving stays bit-identical to [`run_serial`] —
//! the `serve_cache_determinism` suite enforces that too. With the cache
//! off (the default) the engine behaves exactly as it did before the cache
//! existed.
//!
//! ```
//! use std::sync::Arc;
//! use rtr_graph::toy::fig2_toy;
//! use rtr_serve::{ServeConfig, ServeEngine};
//!
//! let (g, ids) = fig2_toy();
//! let engine = ServeEngine::start(Arc::new(g), ServeConfig::default().with_workers(2));
//! let outputs = engine.run_batch(&[ids.t1, ids.t2]);
//! assert_eq!(outputs.len(), 2);
//! // Results come back in request order regardless of completion order.
//! assert_eq!(outputs[0].query, ids.t1);
//! assert_eq!(outputs[0].result.as_ref().unwrap().ranking[0], ids.t1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod engine;
mod flight;

pub use config::ServeConfig;
pub use engine::{run_serial, QueryOutput, ServeEngine, ServeError};
// Re-exported so callers reading `ServeEngine::cache_stats` need no direct
// rtr-cache dependency.
pub use rtr_cache::CacheStats;
