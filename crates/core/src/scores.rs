//! Dense score vectors and ranking utilities.

use rtr_graph::{Graph, NodeId, NodeTypeId};
use serde::{Deserialize, Serialize};

/// A dense per-node score vector produced by a proximity measure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoreVec {
    values: Vec<f64>,
}

impl ScoreVec {
    /// All-zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        ScoreVec {
            values: vec![0.0; n],
        }
    }

    /// Wrap an existing vector.
    pub fn from_vec(values: Vec<f64>) -> Self {
        ScoreVec { values }
    }

    /// Length (graph node count).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Score of a node.
    #[inline]
    pub fn score(&self, v: NodeId) -> f64 {
        self.values[v.index()]
    }

    /// Mutable score of a node.
    #[inline]
    pub fn score_mut(&mut self, v: NodeId) -> &mut f64 {
        &mut self.values[v.index()]
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Consume into the raw vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// Sum of all scores (for probability vectors this is ≤ 1 on
    /// substochastic graphs, = 1 on irreducible ones).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Element-wise product — the basic computational model of
    /// RoundTripRank: `r ∝ f ⊙ t` (paper Eq. 7).
    pub fn hadamard(&self, other: &ScoreVec) -> ScoreVec {
        assert_eq!(self.len(), other.len(), "score length mismatch");
        ScoreVec {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Weighted geometric combination `self^(1-β) ⊙ other^β`
    /// (RoundTripRank+, paper Eq. 12).
    pub fn geometric_blend(&self, other: &ScoreVec, beta: f64) -> ScoreVec {
        assert_eq!(self.len(), other.len(), "score length mismatch");
        ScoreVec {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| a.powf(1.0 - beta) * b.powf(beta))
                .collect(),
        }
    }

    /// Linear combination `w1·self + w2·other` (multi-node queries;
    /// arithmetic-mean baseline).
    pub fn linear_blend(&self, other: &ScoreVec, w1: f64, w2: f64) -> ScoreVec {
        assert_eq!(self.len(), other.len(), "score length mismatch");
        ScoreVec {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| w1 * a + w2 * b)
                .collect(),
        }
    }

    /// Add `w · other` into `self` in place.
    pub fn accumulate(&mut self, other: &ScoreVec, w: f64) {
        assert_eq!(self.len(), other.len(), "score length mismatch");
        for (a, &b) in self.values.iter_mut().zip(&other.values) {
            *a += w * b;
        }
    }

    /// Full ranking: node ids sorted by descending score, ties broken by
    /// ascending node id for determinism.
    pub fn ranking(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (0..self.values.len() as u32).map(NodeId).collect();
        ids.sort_by(|&a, &b| {
            self.values[b.index()]
                .partial_cmp(&self.values[a.index()])
                // invariant: scores are sums/products of finite inputs
                // (validated at query parse time) — never NaN.
                .expect("NaN score")
                .then(a.cmp(&b))
        });
        ids
    }

    /// Top-k node ids by descending score (deterministic tie-break).
    pub fn top_k(&self, k: usize) -> Vec<NodeId> {
        let mut ranking = self.ranking();
        ranking.truncate(k);
        ranking
    }

    /// Ranking restricted to nodes of a given type, excluding a set of
    /// excluded nodes (the paper's evaluation filters: "we filter out the
    /// query node itself and nodes not of the target type", Sect. VI-A).
    pub fn filtered_ranking(
        &self,
        g: &Graph,
        target_type: NodeTypeId,
        exclude: &[NodeId],
    ) -> Vec<NodeId> {
        self.ranking()
            .into_iter()
            .filter(|&v| g.node_type(v) == target_type && !exclude.contains(&v))
            .collect()
    }

    /// L∞ distance to another score vector (convergence checks in tests).
    pub fn linf_distance(&self, other: &ScoreVec) -> f64 {
        assert_eq!(self.len(), other.len(), "score length mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` if the two vectors induce the same ranking over all nodes.
    pub fn rank_equivalent(&self, other: &ScoreVec) -> bool {
        self.ranking() == other.ranking()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn ranking_descending_deterministic() {
        let s = ScoreVec::from_vec(vec![0.1, 0.5, 0.5, 0.0]);
        let r = s.ranking();
        assert_eq!(r, vec![NodeId(1), NodeId(2), NodeId(0), NodeId(3)]);
        assert_eq!(s.top_k(2), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn hadamard_is_elementwise_product() {
        let a = ScoreVec::from_vec(vec![0.5, 2.0]);
        let b = ScoreVec::from_vec(vec![4.0, 0.25]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2.0, 0.5]);
    }

    #[test]
    fn geometric_blend_special_cases() {
        let a = ScoreVec::from_vec(vec![0.5, 2.0, 1.0]);
        let b = ScoreVec::from_vec(vec![4.0, 0.25, 1.0]);
        assert_eq!(a.geometric_blend(&b, 0.0).as_slice(), a.as_slice());
        assert_eq!(a.geometric_blend(&b, 1.0).as_slice(), b.as_slice());
        // β = 0.5 is the geometric mean, rank-equivalent to hadamard.
        let g = a.geometric_blend(&b, 0.5);
        let h = a.hadamard(&b);
        assert!(g.rank_equivalent(&h));
    }

    #[test]
    fn linear_blend_and_accumulate_agree() {
        let a = ScoreVec::from_vec(vec![1.0, 2.0]);
        let b = ScoreVec::from_vec(vec![3.0, 5.0]);
        let blended = a.linear_blend(&b, 0.25, 0.75);
        let mut acc = ScoreVec::zeros(2);
        acc.accumulate(&a, 0.25);
        acc.accumulate(&b, 0.75);
        assert!(blended.linf_distance(&acc) < 1e-15);
    }

    #[test]
    fn filtered_ranking_respects_type_and_exclusion() {
        let (g, ids) = fig2_toy();
        let mut s = ScoreVec::zeros(g.node_count());
        *s.score_mut(ids.v1) = 0.3;
        *s.score_mut(ids.v2) = 0.9;
        *s.score_mut(ids.v3) = 0.5;
        *s.score_mut(ids.p[0]) = 1.0; // highest, but wrong type
        let venue_ty = g.types().get("venue").unwrap();
        let r = s.filtered_ranking(&g, venue_ty, &[ids.v3]);
        assert_eq!(r, vec![ids.v2, ids.v1]);
    }

    #[test]
    fn linf_distance() {
        let a = ScoreVec::from_vec(vec![0.0, 1.0]);
        let b = ScoreVec::from_vec(vec![0.5, 0.75]);
        assert!((a.linf_distance(&b) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hadamard_length_mismatch_panics() {
        let a = ScoreVec::zeros(2);
        let b = ScoreVec::zeros(3);
        let _ = a.hadamard(&b);
    }
}
