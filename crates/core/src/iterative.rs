//! The exact fixed-point iterations of paper Eq. 5 (F-Rank) and Eq. 8
//! (T-Rank) — the "Naive" computational scheme of the efficiency study
//! (Sect. VI-B): "One simple method applies iterative computation, which is
//! linear in the number of nodes and edges."
//!
//! Each iteration is one `O(|V| + |E|)` pass; convergence is geometric with
//! rate `1-α` on any graph (the iteration map is a contraction in L∞),
//! irreducible or not, so the default tolerance of 1e-10 converges in well
//! under 100 passes at α = 0.25.

use crate::error::CoreError;
use crate::params::RankParams;
use crate::query::Query;
use crate::scores::ScoreVec;
use crate::workspace::IterWorkspace;
use rtr_graph::Graph;

/// Statistics of an iterative computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final L∞ change between consecutive iterates.
    pub final_residual: f64,
}

/// Which direction the fixed point walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// F-Rank: gather over **in**-neighbors with `M[v'][v]` (paper Eq. 5).
    Forward,
    /// T-Rank: gather over **out**-neighbors with `M[v][v']` (paper Eq. 8).
    Backward,
}

/// Run the fixed-point iteration to convergence.
///
/// The start distribution generalizes the indicator `I(q,v)` of Eq. 5/8 to a
/// weighted multi-node query (Linearity Theorem): `s(v) = w_v` for query
/// nodes, 0 elsewhere.
pub fn iterate(
    g: &Graph,
    query: &Query,
    params: &RankParams,
    direction: Direction,
) -> Result<(ScoreVec, IterationStats), CoreError> {
    iterate_with(&mut IterWorkspace::default(), g, query, params, direction)
}

/// [`iterate`] reusing `ws`'s dense vectors. The returned [`ScoreVec`]
/// necessarily takes ownership of the converged iterate's buffer, so one
/// `|V|`-sized allocation per query remains; the start and scratch
/// vectors (two of the three) are recycled.
pub fn iterate_with(
    ws: &mut IterWorkspace,
    g: &Graph,
    query: &Query,
    params: &RankParams,
    direction: Direction,
) -> Result<(ScoreVec, IterationStats), CoreError> {
    params.validate()?;
    query.validate(g)?;

    let n = g.node_count();
    let alpha = params.alpha;
    ws.reset(n);
    let IterWorkspace { start, cur, next } = ws;
    for (node, w) in query.iter() {
        start[node.index()] += w;
    }

    let mut stats = IterationStats {
        iterations: 0,
        final_residual: f64::INFINITY,
    };

    for it in 1..=params.max_iterations {
        match direction {
            Direction::Forward => {
                // next[v] = α·s(v) + (1-α) Σ_{v' ∈ In(v)} M[v'][v] · cur[v']
                for v in g.nodes() {
                    let mut acc = 0.0;
                    for (src, prob) in g.in_edges(v) {
                        acc += prob * cur[src.index()];
                    }
                    next[v.index()] = alpha * start[v.index()] + (1.0 - alpha) * acc;
                }
            }
            Direction::Backward => {
                // next[v] = α·s(v) + (1-α) Σ_{v' ∈ Out(v)} M[v][v'] · cur[v']
                for v in g.nodes() {
                    let mut acc = 0.0;
                    for (dst, prob) in g.out_edges(v) {
                        acc += prob * cur[dst.index()];
                    }
                    next[v.index()] = alpha * start[v.index()] + (1.0 - alpha) * acc;
                }
            }
        }
        let residual = cur
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        std::mem::swap(cur, next);
        stats.iterations = it;
        stats.final_residual = residual;
        if residual < params.tolerance {
            return Ok((ws.take_result(), stats));
        }
    }
    Err(CoreError::NoConvergence {
        iterations: stats.iterations,
        residual: stats.final_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;
    use rtr_graph::{GraphBuilder, NodeId};

    #[test]
    fn frank_converges_on_toy() {
        let (g, ids) = fig2_toy();
        let (f, stats) = iterate(
            &g,
            &Query::single(ids.t1),
            &RankParams::default(),
            Direction::Forward,
        )
        .unwrap();
        assert!(stats.iterations < 200);
        // Probability mass: on a strongly connected graph f sums to 1.
        assert!((f.total() - 1.0).abs() < 1e-6, "total = {}", f.total());
        // The query node itself has at least the teleport mass α.
        assert!(f.score(ids.t1) >= 0.25);
    }

    #[test]
    fn trank_converges_on_toy() {
        let (g, ids) = fig2_toy();
        let (t, _) = iterate(
            &g,
            &Query::single(ids.t1),
            &RankParams::default(),
            Direction::Backward,
        )
        .unwrap();
        // t(q, q) ≥ α (zero-step trip).
        assert!(t.score(ids.t1) >= 0.25);
        // Every node reaches t1 on this connected graph.
        for v in g.nodes() {
            assert!(t.score(v) > 0.0, "{v:?} has zero T-Rank");
        }
    }

    #[test]
    fn frank_importance_ordering_matches_paper() {
        // "from q it is easier to reach v1 or v2 than v3" (Sect. III-A).
        let (g, ids) = fig2_toy();
        let (f, _) = iterate(
            &g,
            &Query::single(ids.t1),
            &RankParams::default(),
            Direction::Forward,
        )
        .unwrap();
        assert!(f.score(ids.v1) > f.score(ids.v3));
        assert!(f.score(ids.v2) > f.score(ids.v3));
    }

    #[test]
    fn trank_specificity_ordering_matches_paper() {
        // "it is more likely to reach t1 from v2 or v3 than from v1".
        let (g, ids) = fig2_toy();
        let (t, _) = iterate(
            &g,
            &Query::single(ids.t1),
            &RankParams::default(),
            Direction::Backward,
        )
        .unwrap();
        assert!(t.score(ids.v2) > t.score(ids.v1));
        assert!(t.score(ids.v3) > t.score(ids.v1));
    }

    #[test]
    fn frank_and_trank_coincide_on_symmetric_graph() {
        // On an undirected (symmetric-weight) regular cycle, reaching v from q
        // and q from v are mirror events, so f and t agree.
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let nodes: Vec<_> = (0..6).map(|_| b.add_node(ty)).collect();
        for i in 0..6 {
            b.add_undirected_edge(nodes[i], nodes[(i + 1) % 6], 1.0);
        }
        let g = b.build();
        let q = Query::single(nodes[0]);
        let p = RankParams::default();
        let (f, _) = iterate(&g, &q, &p, Direction::Forward).unwrap();
        let (t, _) = iterate(&g, &q, &p, Direction::Backward).unwrap();
        assert!(f.linf_distance(&t) < 1e-8);
    }

    #[test]
    fn dangling_graph_is_substochastic() {
        // a -> b, b dangling: forward mass leaks but iteration still converges.
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let a = b.add_node(ty);
        let c = b.add_node(ty);
        b.add_edge(a, c, 1.0);
        let g = b.build();
        let (f, _) = iterate(
            &g,
            &Query::single(a),
            &RankParams::default(),
            Direction::Forward,
        )
        .unwrap();
        assert!(f.total() < 1.0);
        assert!(f.score(c) > 0.0);
    }

    #[test]
    fn multi_node_query_is_linear() {
        // Linearity: f(Q, ·) with uniform Q equals the average of per-node f.
        let (g, ids) = fig2_toy();
        let p = RankParams::default();
        let (fa, _) = iterate(&g, &Query::single(ids.t1), &p, Direction::Forward).unwrap();
        let (fb, _) = iterate(&g, &Query::single(ids.t2), &p, Direction::Forward).unwrap();
        let (fq, _) = iterate(
            &g,
            &Query::uniform(&[ids.t1, ids.t2]),
            &p,
            Direction::Forward,
        )
        .unwrap();
        let expected = fa.linear_blend(&fb, 0.5, 0.5);
        assert!(fq.linf_distance(&expected) < 1e-8);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let (g, ids) = fig2_toy();
        let err = iterate(
            &g,
            &Query::single(ids.t1),
            &RankParams::with_alpha(0.0),
            Direction::Forward,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidAlpha(_)));
    }

    #[test]
    fn out_of_range_query_rejected() {
        let (g, _) = fig2_toy();
        let err = iterate(
            &g,
            &Query::single(NodeId(1000)),
            &RankParams::default(),
            Direction::Forward,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::NodeOutOfRange { .. }));
    }

    #[test]
    fn no_convergence_with_tiny_cap() {
        let (g, ids) = fig2_toy();
        let params = RankParams {
            max_iterations: 1,
            tolerance: 1e-15,
            ..RankParams::default()
        };
        let err = iterate(&g, &Query::single(ids.t1), &params, Direction::Forward).unwrap_err();
        assert!(matches!(err, CoreError::NoConvergence { .. }));
    }

    #[test]
    fn alpha_sensitivity_is_smooth() {
        // Rankings should be stable for a wide α range (paper: 0.1–0.5).
        let (g, ids) = fig2_toy();
        let mut prev_rank: Option<Vec<NodeId>> = None;
        for &alpha in &[0.1, 0.25, 0.5] {
            let (f, _) = iterate(
                &g,
                &Query::single(ids.t1),
                &RankParams::with_alpha(alpha),
                Direction::Forward,
            )
            .unwrap();
            let venues = vec![
                (ids.v1, f.score(ids.v1)),
                (ids.v2, f.score(ids.v2)),
                (ids.v3, f.score(ids.v3)),
            ];
            let mut order: Vec<NodeId> = {
                let mut vs = venues.clone();
                vs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                vs.into_iter().map(|(v, _)| v).collect()
            };
            // v1 and v2 tie exactly by symmetry; normalize the tie order.
            if order[0] == ids.v2 && order[1] == ids.v1 {
                order.swap(0, 1);
            }
            if let Some(prev) = &prev_rank {
                assert_eq!(prev, &order, "venue order changed at α={alpha}");
            }
            prev_rank = Some(order);
        }
    }
}
