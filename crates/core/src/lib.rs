#![deny(missing_docs)]
//! # rtr-core — RoundTripRank, RoundTripRank+ and their computational models
//!
//! This crate implements the primary contribution of
//!
//! > Fang, Chang, Lauw. *RoundTripRank: Graph-based Proximity with Importance
//! > and Specificity.* ICDE 2013.
//!
//! ## The measures
//!
//! * **F-Rank** `f(q,v) = p(W_L = v | W_0 = q)` — reachability *from* the
//!   query; with geometric walk length `L ~ Geo(α)` it equals Personalized
//!   PageRank (paper Prop. 1). Captures **importance**. Module [`frank`].
//! * **T-Rank** `t(q,v) = p(W_L' = q | W_0 = v)` — reachability *to* the
//!   query. Captures **specificity**. Module [`trank`].
//! * **RoundTripRank** `r(q,v) ∝ f(q,v) · t(q,v)` (paper Prop. 2) — the
//!   probability that a completed round trip `q → v → q` has target `v`.
//!   Module [`rtr`].
//! * **RoundTripRank+** `r_β(q,v) ∝ f(q,v)^{1-β} · t(q,v)^β` (paper Eq. 12) —
//!   hybrid random surfers with a *specificity bias* β. β=0 ≡ F-Rank,
//!   β=1 ≡ T-Rank, β=0.5 rank-equivalent to RoundTripRank. Module
//!   [`rtr_plus`].
//!
//! ## The engines
//!
//! * [`iterative`] — the exact fixed-point iterations of paper Eq. 5 and 8
//!   (the "Naive" scheme of the efficiency study).
//! * [`bca`] — the Bookmark-Coloring Algorithm [Berkhin 2006] with residual
//!   tracking, which Stage I of 2SBound builds on (paper Sect. V-A3), plus
//!   the paper's improved unseen upper bound (Prop. 4).
//! * [`enumerate`] — exact round-trip enumeration on tiny graphs with
//!   constant walk lengths, validating the by-hand numbers of paper Fig. 4.
//! * [`workspace`] — reusable per-query workspaces ([`BcaWorkspace`],
//!   [`IterWorkspace`]) so serving workers run queries with zero
//!   steady-state allocation.
//!
//! ## Queries
//!
//! [`query::Query`] supports single- and multi-node queries; multi-node
//! scores are linear combinations of per-node scores (the paper invokes the
//! Linearity Theorem of Jeh & Widom for this reduction).
//!
//! ## Quick example
//!
//! ```
//! use rtr_graph::toy::fig2_toy;
//! use rtr_core::prelude::*;
//!
//! let (g, ids) = fig2_toy();
//! let params = RankParams::default(); // α = 0.25, as in the paper's experiments
//! let scores = RoundTripRank::new(params).compute(&g, &Query::single(ids.t1)).unwrap();
//! // v2 is both important and specific, so it beats v1 and v3 (paper Sect. III-A).
//! assert!(scores.score(ids.v2) > scores.score(ids.v1));
//! assert!(scores.score(ids.v2) > scores.score(ids.v3));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bca;
pub mod enumerate;
pub mod error;
pub mod frank;
pub mod iterative;
pub mod measure;
pub mod params;
pub mod query;
pub mod rtr;
pub mod rtr_plus;
pub mod scores;
pub mod trank;
pub mod walk;
pub mod workspace;

pub use error::CoreError;
pub use measure::{Measure, MeasureKey};
pub use params::{RankParams, RankParamsKey};
pub use query::{Query, QueryCacheKey};
pub use scores::ScoreVec;
pub use workspace::{BcaWorkspace, IterWorkspace};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::bca::Bca;
    pub use crate::error::CoreError;
    pub use crate::frank::FRank;
    pub use crate::measure::Measure;
    pub use crate::params::RankParams;
    pub use crate::query::Query;
    pub use crate::rtr::RoundTripRank;
    pub use crate::rtr_plus::RoundTripRankPlus;
    pub use crate::scores::ScoreVec;
    pub use crate::trank::TRank;
    pub use crate::walk::WalkLength;
    pub use crate::workspace::{BcaWorkspace, IterWorkspace};
}
