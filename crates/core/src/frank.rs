//! F-Rank: rank by reachability **from** the query (importance).
//!
//! `f(q,v) ≜ p(W_L = v | W_0 = q)` with `L ~ Geo(α)` (paper Eq. 1). By
//! Prop. 1 (from Fogaras et al.) this equals Personalized PageRank with
//! teleport probability α, so [`FRank`] doubles as the paper's PPR baseline
//! in the effectiveness study (Fig. 5 row "F-Rank/PPR").

use crate::error::CoreError;
use crate::iterative::{iterate, Direction, IterationStats};
use crate::params::RankParams;
use crate::query::Query;
use crate::scores::ScoreVec;
use rtr_graph::Graph;

/// Importance-based proximity: Personalized PageRank / F-Rank.
#[derive(Clone, Copy, Debug)]
pub struct FRank {
    params: RankParams,
}

impl FRank {
    /// Create with the given parameters.
    pub fn new(params: RankParams) -> Self {
        FRank { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &RankParams {
        &self.params
    }

    /// Compute `f(q, ·)` for all nodes.
    pub fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        Ok(self.compute_with_stats(g, query)?.0)
    }

    /// Compute, also returning iteration statistics.
    pub fn compute_with_stats(
        &self,
        g: &Graph,
        query: &Query,
    ) -> Result<(ScoreVec, IterationStats), CoreError> {
        iterate(g, query, &self.params, Direction::Forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use rtr_graph::toy::fig2_toy;
    use rtr_graph::NodeId;

    /// Monte-Carlo PPR: simulate trips with geometric length and count
    /// endpoint frequencies. Validates Prop. 1 (F-Rank ≡ PPR) empirically.
    fn monte_carlo_frank(
        g: &rtr_graph::Graph,
        q: NodeId,
        alpha: f64,
        trips: usize,
        seed: u64,
    ) -> ScoreVec {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = vec![0usize; g.node_count()];
        for _ in 0..trips {
            let mut cur = q;
            // Walk until the geometric coin says stop (p = alpha each step).
            loop {
                if rng.gen_bool(alpha) {
                    break;
                }
                let edges: Vec<(NodeId, f64)> = g.out_edges(cur).collect();
                if edges.is_empty() {
                    break; // dangling: walk dies (substochastic)
                }
                let r: f64 = rng.gen();
                let mut acc = 0.0;
                let mut chosen = edges[edges.len() - 1].0;
                for (dst, p) in &edges {
                    acc += p;
                    if r < acc {
                        chosen = *dst;
                        break;
                    }
                }
                cur = chosen;
            }
            counts[cur.index()] += 1;
        }
        ScoreVec::from_vec(
            counts
                .into_iter()
                .map(|c| c as f64 / trips as f64)
                .collect(),
        )
    }

    #[test]
    fn iterative_matches_monte_carlo() {
        let (g, ids) = fig2_toy();
        let exact = FRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        let mc = monte_carlo_frank(&g, ids.t1, 0.25, 200_000, 7);
        // 200k trips give ~2-3 decimal places of accuracy.
        assert!(
            exact.linf_distance(&mc) < 0.01,
            "L∞ = {}",
            exact.linf_distance(&mc)
        );
    }

    #[test]
    fn frank_favors_better_connected_venue() {
        let (g, ids) = fig2_toy();
        let f = FRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        // v1, v2 each have two papers on t1; v3 has one.
        assert!(f.score(ids.v1) > f.score(ids.v3));
        assert!(f.score(ids.v2) > f.score(ids.v3));
        // Multi-hop paths through the off-topic papers p6, p7 feed extra
        // mass back into the hub v1, so importance slightly favors v1 —
        // exactly the popularity effect the paper criticizes F-Rank for.
        assert!(f.score(ids.v1) > f.score(ids.v2));
    }

    #[test]
    fn scores_are_probabilities() {
        let (g, ids) = fig2_toy();
        let f = FRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        for v in g.nodes() {
            let s = f.score(v);
            assert!((0.0..=1.0).contains(&s), "{v:?}: {s}");
        }
        assert!((f.total() - 1.0).abs() < 1e-6);
    }
}
