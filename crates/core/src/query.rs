//! Query specification: one node or a weighted set of nodes.
//!
//! The paper (Sect. III-A): "More generally, a query can consist of multiple
//! nodes, and the round trip can start from any of them. Similar to the
//! Linearity Theorem for PPR, RoundTripRank for a multi-node query can be
//! equivalently expressed as a linear function of RoundTripRank for each node
//! in the query." The venue-ranking queries of Figs. 6–7 are exactly such
//! multi-term queries ("spatio temporal data" = three term nodes).

use crate::error::CoreError;
use rtr_graph::{Graph, NodeId};

/// A ranking query: one or more graph nodes with normalized weights.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    nodes: Vec<NodeId>,
    weights: Vec<f64>,
}

impl Query {
    /// A single-node query.
    pub fn single(q: NodeId) -> Self {
        Query {
            nodes: vec![q],
            weights: vec![1.0],
        }
    }

    /// A uniform multi-node query (each node weighted `1/|Q|`).
    pub fn uniform(nodes: &[NodeId]) -> Self {
        let w = 1.0 / nodes.len().max(1) as f64;
        Query {
            nodes: nodes.to_vec(),
            weights: vec![w; nodes.len()],
        }
    }

    /// A weighted multi-node query; weights are normalized to sum to 1.
    pub fn weighted(pairs: &[(NodeId, f64)]) -> Result<Self, CoreError> {
        if pairs.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        // NaN weights must be rejected, so test for the valid case and negate.
        let weights_valid = pairs.iter().all(|&(_, w)| w.is_finite() && w >= 0.0);
        if !weights_valid || total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::BadQueryWeights(
                "weights must be non-negative, finite, and sum to > 0".into(),
            ));
        }
        Ok(Query {
            nodes: pairs.iter().map(|&(n, _)| n).collect(),
            weights: pairs.iter().map(|&(_, w)| w / total).collect(),
        })
    }

    /// The query nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The normalized weights (same order as [`Self::nodes`], sums to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `(node, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.nodes.iter().copied().zip(self.weights.iter().copied())
    }

    /// Number of query nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the query has no nodes (invalid; constructors prevent this
    /// except `uniform(&[])`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether a node belongs to the query (used by result filtering: "we
    /// filter out the query node itself", paper Sect. VI-A).
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Validate the query against a graph.
    pub fn validate(&self, g: &Graph) -> Result<(), CoreError> {
        if self.nodes.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        for &n in &self.nodes {
            if n.index() >= g.node_count() {
                return Err(CoreError::NodeOutOfRange {
                    node: n,
                    node_count: g.node_count(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn single_query() {
        let q = Query::single(NodeId(3));
        assert_eq!(q.len(), 1);
        assert_eq!(q.weights(), &[1.0]);
        assert!(q.contains(NodeId(3)));
        assert!(!q.contains(NodeId(4)));
    }

    #[test]
    fn uniform_query_weights() {
        let q = Query::uniform(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(q.len(), 3);
        for &w in q.weights() {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_query_normalizes() {
        let q = Query::weighted(&[(NodeId(0), 2.0), (NodeId(1), 6.0)]).unwrap();
        assert!((q.weights()[0] - 0.25).abs() < 1e-12);
        assert!((q.weights()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_rejects_bad_weights() {
        assert!(Query::weighted(&[]).is_err());
        assert!(Query::weighted(&[(NodeId(0), -1.0)]).is_err());
        assert!(Query::weighted(&[(NodeId(0), 0.0)]).is_err());
        assert!(Query::weighted(&[(NodeId(0), f64::NAN)]).is_err());
    }

    #[test]
    fn validate_against_graph() {
        let (g, ids) = fig2_toy();
        assert!(Query::single(ids.t1).validate(&g).is_ok());
        let bad = Query::single(NodeId(999));
        assert!(matches!(
            bad.validate(&g),
            Err(CoreError::NodeOutOfRange { .. })
        ));
        assert_eq!(Query::uniform(&[]).validate(&g), Err(CoreError::EmptyQuery));
    }
}
