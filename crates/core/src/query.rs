//! Query specification: one node or a weighted set of nodes.
//!
//! The paper (Sect. III-A): "More generally, a query can consist of multiple
//! nodes, and the round trip can start from any of them. Similar to the
//! Linearity Theorem for PPR, RoundTripRank for a multi-node query can be
//! equivalently expressed as a linear function of RoundTripRank for each node
//! in the query." The venue-ranking queries of Figs. 6–7 are exactly such
//! multi-term queries ("spatio temporal data" = three term nodes).

use crate::error::CoreError;
use rtr_graph::{Graph, NodeId};

/// A ranking query: one or more graph nodes with normalized weights.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    nodes: Vec<NodeId>,
    weights: Vec<f64>,
}

impl Query {
    /// A single-node query.
    pub fn single(q: NodeId) -> Self {
        Query {
            nodes: vec![q],
            weights: vec![1.0],
        }
    }

    /// A uniform multi-node query (each node weighted `1/|Q|`).
    pub fn uniform(nodes: &[NodeId]) -> Self {
        let w = 1.0 / nodes.len().max(1) as f64;
        Query {
            nodes: nodes.to_vec(),
            weights: vec![w; nodes.len()],
        }
    }

    /// A weighted multi-node query; weights are normalized to sum to 1.
    ///
    /// The normalization total is summed in a canonical (sorted) order, so
    /// two permutations of one pair list normalize to bit-identical
    /// weights — which is what lets [`Query::canonicalize`] map them to
    /// the *same* query (f64 addition is not order-independent; summing in
    /// input order would leave an ulp of permutation residue).
    pub fn weighted(pairs: &[(NodeId, f64)]) -> Result<Self, CoreError> {
        if pairs.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        let total: f64 = {
            let mut ws: Vec<f64> = pairs.iter().map(|&(_, w)| w).collect();
            ws.sort_by(f64::total_cmp);
            ws.iter().sum()
        };
        // NaN weights must be rejected, so test for the valid case and negate.
        let weights_valid = pairs.iter().all(|&(_, w)| w.is_finite() && w >= 0.0);
        if !weights_valid || total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::BadQueryWeights(
                "weights must be non-negative, finite, and sum to > 0".into(),
            ));
        }
        Ok(Query {
            nodes: pairs.iter().map(|&(n, _)| n).collect(),
            weights: pairs.iter().map(|&(_, w)| w / total).collect(),
        })
    }

    /// Reconstruct a query from pairs whose weights are **already
    /// normalized** (they sum to 1), preserving the weight bits exactly.
    ///
    /// This is the wire-codec constructor: [`Query::weighted`] re-divides
    /// by the pair total, and dividing an already-normalized weight set by
    /// its ~1.0 sum perturbs the low bits — enough to break the serving
    /// layer's bit-identity contract across an encode/decode round trip.
    /// Weights are validated (finite, non-negative, summing to 1 within an
    /// ulp-scale tolerance) but never rescaled.
    pub fn from_normalized(pairs: &[(NodeId, f64)]) -> Result<Self, CoreError> {
        if pairs.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        if !pairs.iter().all(|&(_, w)| w.is_finite() && w >= 0.0) {
            return Err(CoreError::BadQueryWeights(
                "weights must be non-negative and finite".into(),
            ));
        }
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        // Tolerance: canonical weights come from one division per pair, so
        // any legitimate sum sits within a few ulps of 1; 1e-9 is far
        // beyond that while still rejecting un-normalized input.
        if (total - 1.0).abs() > 1e-9 {
            return Err(CoreError::BadQueryWeights(format!(
                "weights must already sum to 1 (got {total})"
            )));
        }
        Ok(Query {
            nodes: pairs.iter().map(|&(n, _)| n).collect(),
            weights: pairs.iter().map(|&(_, w)| w).collect(),
        })
    }

    /// The query nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The normalized weights (same order as [`Self::nodes`], sums to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `(node, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.nodes.iter().copied().zip(self.weights.iter().copied())
    }

    /// Number of query nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the query has no nodes (invalid; constructors prevent this
    /// except `uniform(&[])`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether a node belongs to the query (used by result filtering: "we
    /// filter out the query node itself", paper Sect. VI-A).
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// The canonical form of this query: pairs sorted by node id (weight
    /// bits as tie-break), duplicate nodes merged by summing their weights
    /// in that order.
    ///
    /// Two queries with the same node/weight multiset canonicalize to the
    /// *same* pair sequence, so computing the canonical form is the same
    /// computation bit for bit — which is what lets a result cache treat
    /// order-permuted multi-node queries as one entry. The serving layer
    /// canonicalizes every request at construction; weights are **not**
    /// re-normalized (they already sum to 1, and dividing by ~1.0 would
    /// perturb the bits).
    pub fn canonicalize(&self) -> Query {
        let mut pairs: Vec<(NodeId, f64)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut nodes: Vec<NodeId> = Vec::with_capacity(pairs.len());
        let mut weights: Vec<f64> = Vec::with_capacity(pairs.len());
        for (n, w) in pairs {
            if nodes.last() == Some(&n) {
                // invariant: nodes and weights are pushed in lockstep, so
                // a non-empty nodes means a non-empty weights.
                *weights.last_mut().expect("nodes and weights align") += w;
            } else {
                nodes.push(n);
                weights.push(w);
            }
        }
        Query { nodes, weights }
    }

    /// A stable, hashable identity of this query for result-cache keys:
    /// the `(node, weight-bits)` pairs in their current order.
    ///
    /// Deliberately order-*preserving*: multi-node engines accumulate
    /// per-node scores in query order, and `f64` addition is not
    /// associative, so permuted queries are not bit-equivalent in general.
    /// Canonicalize first ([`Query::canonicalize`]) when permutations
    /// should share an identity — the serving layer does.
    pub fn cache_key(&self) -> QueryCacheKey {
        // Single-node queries — the dominant serving traffic — get an
        // inline key so building (and cloning) one never allocates.
        if let ([n], [w]) = (self.nodes.as_slice(), self.weights.as_slice()) {
            QueryCacheKey::Single(n.0, w.to_bits())
        } else {
            QueryCacheKey::Multi(self.iter().map(|(n, w)| (n.0, w.to_bits())).collect())
        }
    }

    /// Validate the query against a graph.
    pub fn validate(&self, g: &Graph) -> Result<(), CoreError> {
        if self.nodes.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        for &n in &self.nodes {
            if n.index() >= g.node_count() {
                return Err(CoreError::NodeOutOfRange {
                    node: n,
                    node_count: g.node_count(),
                });
            }
        }
        Ok(())
    }
}

/// Hashable identity of a [`Query`] (see [`Query::cache_key`]).
/// Deliberately opaque: consumers treat it as a key component only.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueryCacheKey {
    /// A single `(node, weight-bits)` pair, held inline so the hot
    /// single-node serving path builds and clones keys without touching
    /// the heap.
    Single(u32, u64),
    /// The general weighted multi-node pair list.
    Multi(Vec<(u32, u64)>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn canonicalize_sorts_and_merges() {
        let q = Query::weighted(&[(NodeId(5), 1.0), (NodeId(2), 2.0), (NodeId(5), 1.0)]).unwrap();
        let c = q.canonicalize();
        assert_eq!(c.nodes(), &[NodeId(2), NodeId(5)]);
        assert!((c.weights()[0] - 0.5).abs() < 1e-12);
        assert!((c.weights()[1] - 0.5).abs() < 1e-12);
        // Weight mass is preserved exactly, not re-normalized.
        assert_eq!(c.weights().iter().sum::<f64>(), q.weights().iter().sum());
    }

    #[test]
    fn permuted_queries_share_a_canonical_cache_key() {
        let a = Query::weighted(&[(NodeId(1), 1.0), (NodeId(4), 3.0)]).unwrap();
        let b = Query::weighted(&[(NodeId(4), 3.0), (NodeId(1), 1.0)]).unwrap();
        // Raw keys are order-preserving and differ...
        assert_ne!(a.cache_key(), b.cache_key());
        // ...canonical keys agree.
        assert_eq!(a.canonicalize().cache_key(), b.canonicalize().cache_key());
    }

    #[test]
    fn cache_key_distinguishes_nodes_and_weights() {
        let base = Query::weighted(&[(NodeId(1), 1.0), (NodeId(2), 3.0)]).unwrap();
        let other_node = Query::weighted(&[(NodeId(1), 1.0), (NodeId(3), 3.0)]).unwrap();
        let other_weight = Query::weighted(&[(NodeId(1), 1.0), (NodeId(2), 2.0)]).unwrap();
        assert_ne!(base.cache_key(), other_node.cache_key());
        assert_ne!(base.cache_key(), other_weight.cache_key());
        assert_ne!(base.cache_key(), Query::single(NodeId(1)).cache_key());
    }

    #[test]
    fn single_node_keys_are_inline_and_construction_independent() {
        // A one-pair weighted query normalizes to weight 1.0 and must key
        // identically to Query::single — both via the inline variant.
        let a = Query::single(NodeId(7)).cache_key();
        let b = Query::weighted(&[(NodeId(7), 5.0)]).unwrap().cache_key();
        assert_eq!(a, b);
        assert!(matches!(a, QueryCacheKey::Single(7, _)));
    }

    #[test]
    fn single_query() {
        let q = Query::single(NodeId(3));
        assert_eq!(q.len(), 1);
        assert_eq!(q.weights(), &[1.0]);
        assert!(q.contains(NodeId(3)));
        assert!(!q.contains(NodeId(4)));
    }

    #[test]
    fn uniform_query_weights() {
        let q = Query::uniform(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(q.len(), 3);
        for &w in q.weights() {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_query_normalizes() {
        let q = Query::weighted(&[(NodeId(0), 2.0), (NodeId(1), 6.0)]).unwrap();
        assert!((q.weights()[0] - 0.25).abs() < 1e-12);
        assert!((q.weights()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_rejects_bad_weights() {
        assert!(Query::weighted(&[]).is_err());
        assert!(Query::weighted(&[(NodeId(0), -1.0)]).is_err());
        assert!(Query::weighted(&[(NodeId(0), 0.0)]).is_err());
        assert!(Query::weighted(&[(NodeId(0), f64::NAN)]).is_err());
    }

    #[test]
    fn from_normalized_preserves_weight_bits() {
        let q = Query::weighted(&[(NodeId(1), 1.0), (NodeId(2), 1.0), (NodeId(3), 1.0)]).unwrap();
        let pairs: Vec<(NodeId, f64)> = q.iter().collect();
        let back = Query::from_normalized(&pairs).unwrap();
        assert_eq!(back, q, "round trip is bit-exact, no re-normalization");
        // Query::weighted would perturb the bits: 3×(1/3) sums to
        // 0.999…; from_normalized must not divide by that.
        assert_eq!(back.weights(), q.weights());
    }

    #[test]
    fn from_normalized_rejects_bad_weights() {
        assert!(Query::from_normalized(&[]).is_err());
        assert!(Query::from_normalized(&[(NodeId(0), 0.4)]).is_err());
        assert!(Query::from_normalized(&[(NodeId(0), f64::NAN)]).is_err());
        assert!(Query::from_normalized(&[(NodeId(0), -0.5), (NodeId(1), 1.5)]).is_err());
        assert!(Query::from_normalized(&[(NodeId(0), 1.0)]).is_ok());
    }

    #[test]
    fn validate_against_graph() {
        let (g, ids) = fig2_toy();
        assert!(Query::single(ids.t1).validate(&g).is_ok());
        let bad = Query::single(NodeId(999));
        assert!(matches!(
            bad.validate(&g),
            Err(CoreError::NodeOutOfRange { .. })
        ));
        assert_eq!(Query::uniform(&[]).validate(&g), Err(CoreError::EmptyQuery));
    }
}
