//! RoundTripRank: importance and specificity in one round trip.
//!
//! Definition (paper Def. 2): given that a surfer starting at `q` completes a
//! round trip of `L + L'` steps (`W_0 = W_{L+L'} = q`), RoundTripRank of `v`
//! is the probability that the round trip's *target* (the node after the
//! first `L` steps) is `v`.
//!
//! By Prop. 2 the exponential space of round trips decomposes into two
//! independently computable units with rank equivalence:
//!
//! ```text
//! r(q,v) ∝ f(q,v) · t(q,v)
//! ```
//!
//! This module computes exactly that product; the exponential enumeration is
//! only ever materialized by [`crate::enumerate`] on toy graphs to validate
//! the decomposition.

use crate::error::CoreError;
use crate::frank::FRank;
use crate::params::RankParams;
use crate::query::Query;
use crate::scores::ScoreVec;
use crate::trank::TRank;
use rtr_graph::Graph;

/// The dual-sensed RoundTripRank measure.
#[derive(Clone, Copy, Debug)]
pub struct RoundTripRank {
    params: RankParams,
}

/// The three score vectors of one RoundTripRank evaluation; exposing `f` and
/// `t` lets callers reuse them (the evaluation harness feeds the same `f,t`
/// into the mean-combination baselines).
#[derive(Clone, Debug)]
pub struct RtrParts {
    /// F-Rank `f(q,·)` (importance).
    pub f: ScoreVec,
    /// T-Rank `t(q,·)` (specificity).
    pub t: ScoreVec,
    /// RoundTripRank `r(q,·) ∝ f ⊙ t`.
    pub r: ScoreVec,
}

impl RoundTripRank {
    /// Create with the given parameters.
    pub fn new(params: RankParams) -> Self {
        RoundTripRank { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &RankParams {
        &self.params
    }

    /// Compute `r(q, ·)` for all nodes.
    pub fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        Ok(self.compute_parts(g, query)?.r)
    }

    /// Compute `r` along with the `f` and `t` factors.
    ///
    /// For a multi-node query, the paper reduces RoundTripRank to a linear
    /// function of single-node RoundTripRank (Sect. III-A); accordingly we
    /// return `r = Σ_q w_q · f(q,·) ⊙ t(q,·)` and the query-weighted `f`, `t`
    /// (whose product equals `r` exactly in the single-node case).
    pub fn compute_parts(&self, g: &Graph, query: &Query) -> Result<RtrParts, CoreError> {
        query.validate(g)?;
        let frank = FRank::new(self.params);
        let trank = TRank::new(self.params);
        if query.len() == 1 {
            let f = frank.compute(g, query)?;
            let t = trank.compute(g, query)?;
            let r = f.hadamard(&t);
            return Ok(RtrParts { f, t, r });
        }
        let n = g.node_count();
        let mut f_acc = ScoreVec::zeros(n);
        let mut t_acc = ScoreVec::zeros(n);
        let mut r_acc = ScoreVec::zeros(n);
        for (node, w) in query.iter() {
            let single = Query::single(node);
            let f = frank.compute(g, &single)?;
            let t = trank.compute(g, &single)?;
            r_acc.accumulate(&f.hadamard(&t), w);
            f_acc.accumulate(&f, w);
            t_acc.accumulate(&t, w);
        }
        Ok(RtrParts {
            f: f_acc,
            t: t_acc,
            r: r_acc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn toy_ordering_matches_paper_analysis() {
        // Paper Sect. III-A: v2 beats both v1 (more specific) and v3 (more
        // important); t1 itself has the largest score (self-proximity).
        let (g, ids) = fig2_toy();
        let r = RoundTripRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        assert!(r.score(ids.v2) > r.score(ids.v1));
        assert!(r.score(ids.v2) > r.score(ids.v3));
        let top = r.top_k(1);
        assert_eq!(top[0], ids.t1, "self-proximity should rank first");
    }

    #[test]
    fn rtr_is_product_of_parts() {
        let (g, ids) = fig2_toy();
        let parts = RoundTripRank::new(RankParams::default())
            .compute_parts(&g, &Query::single(ids.t1))
            .unwrap();
        let prod = parts.f.hadamard(&parts.t);
        assert!(parts.r.linf_distance(&prod) < 1e-15);
    }

    #[test]
    fn multi_node_is_linear_in_single_node_rtr() {
        let (g, ids) = fig2_toy();
        let measure = RoundTripRank::new(RankParams::default());
        let r1 = measure.compute(&g, &Query::single(ids.t1)).unwrap();
        let r2 = measure.compute(&g, &Query::single(ids.t2)).unwrap();
        let rq = measure
            .compute(&g, &Query::uniform(&[ids.t1, ids.t2]))
            .unwrap();
        let expected = r1.linear_blend(&r2, 0.5, 0.5);
        assert!(rq.linf_distance(&expected) < 1e-12);
    }

    #[test]
    fn weighted_multi_node_respects_weights() {
        let (g, ids) = fig2_toy();
        let measure = RoundTripRank::new(RankParams::default());
        let r1 = measure.compute(&g, &Query::single(ids.t1)).unwrap();
        let r2 = measure.compute(&g, &Query::single(ids.t2)).unwrap();
        let q = Query::weighted(&[(ids.t1, 3.0), (ids.t2, 1.0)]).unwrap();
        let rq = measure.compute(&g, &q).unwrap();
        let expected = r1.linear_blend(&r2, 0.75, 0.25);
        assert!(rq.linf_distance(&expected) < 1e-12);
    }

    #[test]
    fn zero_trank_zeroes_rtr() {
        // The "minor caveat": unreachable-back nodes get r = 0.
        let mut b = rtr_graph::GraphBuilder::new();
        let ty = b.register_type("n");
        let q = b.add_node(ty);
        let x = b.add_node(ty);
        b.add_edge(q, x, 1.0);
        b.add_edge(x, x, 1.0);
        let g = b.build();
        let parts = RoundTripRank::new(RankParams::default())
            .compute_parts(&g, &Query::single(q))
            .unwrap();
        assert!(parts.f.score(x) > 0.0);
        assert_eq!(parts.t.score(x), 0.0);
        assert_eq!(parts.r.score(x), 0.0);
    }
}
