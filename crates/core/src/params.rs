//! Shared parameters of the random-walk computations.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// Parameters controlling the random-walk fixed-point computations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankParams {
    /// Teleport probability α; walk length is `Geo(α)` (paper Prop. 1).
    /// The paper uses α = 0.25 throughout its experiments and reports stable
    /// rankings for α ∈ [0.1, 0.5].
    pub alpha: f64,
    /// Convergence tolerance: iteration stops when the L∞ change of the
    /// score vector drops below this.
    pub tolerance: f64,
    /// Hard cap on iterations (geometric convergence makes ~`ln(tol)/ln(1-α)`
    /// iterations sufficient; the cap guards degenerate inputs).
    pub max_iterations: usize,
}

impl Default for RankParams {
    fn default() -> Self {
        Self {
            alpha: 0.25,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

impl RankParams {
    /// Construct with a custom α, keeping default tolerance/cap.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha,
            ..Self::default()
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(CoreError::InvalidAlpha(self.alpha));
        }
        Ok(())
    }

    /// A stable, hashable identity of these parameters for result-cache
    /// keys. Floats are keyed by their IEEE-754 bits: two parameter sets
    /// compare equal exactly when runs under them are bit-identical.
    pub fn cache_key(&self) -> RankParamsKey {
        RankParamsKey {
            alpha_bits: self.alpha.to_bits(),
            tolerance_bits: self.tolerance.to_bits(),
            max_iterations: self.max_iterations,
        }
    }
}

/// Hashable identity of a [`RankParams`] (see [`RankParams::cache_key`]).
/// Deliberately opaque: consumers treat it as a key component only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RankParamsKey {
    alpha_bits: u64,
    tolerance_bits: u64,
    max_iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let p = RankParams::default();
        assert_eq!(p.alpha, 0.25);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn cache_key_distinguishes_every_field() {
        let base = RankParams::default();
        assert_eq!(base.cache_key(), base.cache_key());
        let variants = [
            RankParams::with_alpha(0.5),
            RankParams {
                tolerance: 1e-9,
                ..base
            },
            RankParams {
                max_iterations: 5,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(v.cache_key(), base.cache_key(), "{v:?} collided");
        }
    }

    #[test]
    fn validation_bounds() {
        assert!(RankParams::with_alpha(0.0).validate().is_err());
        assert!(RankParams::with_alpha(1.0).validate().is_err());
        assert!(RankParams::with_alpha(-0.5).validate().is_err());
        assert!(RankParams::with_alpha(f64::NAN).validate().is_err());
        assert!(RankParams::with_alpha(0.5).validate().is_ok());
    }
}
