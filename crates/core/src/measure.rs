//! The proximity measure a query asks for.
//!
//! One graph answers four kinds of proximity queries (the paper's whole
//! framework): F-Rank (importance, Eq. 1), T-Rank (specificity, Eq. 2),
//! RoundTripRank (their product, Prop. 2), and RoundTripRank+ with a
//! per-query specificity bias β (Eq. 12). A serving layer that freezes the
//! measure at construction needs one engine per measure; [`Measure`] makes
//! the measure part of the *request* instead, so a single pool covers the
//! whole space.
//!
//! Because β is an `f64`, `Measure` cannot derive `Eq`/`Hash`; result
//! caches key on [`MeasureKey`], which hashes β by its IEEE-754 bits — two
//! measures share cache entries exactly when runs under them are
//! bit-identical.

use crate::error::CoreError;
use std::fmt;

/// Which proximity measure a query should be ranked by.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Measure {
    /// F-Rank / Personalized PageRank: reachability *from* the query
    /// (importance).
    F,
    /// T-Rank: reachability *to* the query (specificity).
    T,
    /// RoundTripRank: `r ∝ f · t` (balanced, the paper's headline measure).
    Rtr,
    /// RoundTripRank+: `r_β ∝ f^(1-β) · t^β` with specificity bias
    /// `beta ∈ [0, 1]` (β=0 ranks like F, β=1 like T, β=0.5 like RTR).
    RtrPlus {
        /// The specificity bias β of paper Eq. 12.
        beta: f64,
    },
}

impl Measure {
    /// Validate measure-level parameters (β range for RTR+; the other
    /// measures are parameterless).
    pub fn validate(&self) -> Result<(), CoreError> {
        match *self {
            Measure::RtrPlus { beta } if !(0.0..=1.0).contains(&beta) || beta.is_nan() => {
                Err(CoreError::InvalidBeta(beta))
            }
            _ => Ok(()),
        }
    }

    /// A stable, hashable identity of this measure for result-cache keys.
    pub fn cache_key(&self) -> MeasureKey {
        match *self {
            Measure::F => MeasureKey {
                tag: 0,
                beta_bits: 0,
            },
            Measure::T => MeasureKey {
                tag: 1,
                beta_bits: 0,
            },
            Measure::Rtr => MeasureKey {
                tag: 2,
                beta_bits: 0,
            },
            Measure::RtrPlus { beta } => MeasureKey {
                tag: 3,
                beta_bits: beta.to_bits(),
            },
        }
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Measure::F => write!(f, "F-Rank"),
            Measure::T => write!(f, "T-Rank"),
            Measure::Rtr => write!(f, "RoundTripRank"),
            Measure::RtrPlus { beta } => write!(f, "RoundTripRank+(β={beta})"),
        }
    }
}

/// Hashable identity of a [`Measure`] (see [`Measure::cache_key`]). β is
/// keyed by its IEEE-754 bits: measures compare equal exactly when runs
/// under them are bit-identical (`RtrPlus` at `-0.0` vs `0.0` hash
/// differently, which is merely a missed dedup, never a wrong answer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MeasureKey {
    tag: u8,
    beta_bits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_in_range_betas() {
        for m in [
            Measure::F,
            Measure::T,
            Measure::Rtr,
            Measure::RtrPlus { beta: 0.0 },
            Measure::RtrPlus { beta: 0.5 },
            Measure::RtrPlus { beta: 1.0 },
        ] {
            assert!(m.validate().is_ok(), "{m} should be valid");
        }
    }

    #[test]
    fn validate_rejects_bad_betas() {
        for beta in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Measure::RtrPlus { beta }.validate(),
                Err(CoreError::InvalidBeta(_))
            ));
        }
    }

    #[test]
    fn cache_keys_separate_measures() {
        let keys = [
            Measure::F.cache_key(),
            Measure::T.cache_key(),
            Measure::Rtr.cache_key(),
            Measure::RtrPlus { beta: 0.3 }.cache_key(),
            Measure::RtrPlus { beta: 0.7 }.cache_key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn beta_keys_by_bit_pattern() {
        let a = Measure::RtrPlus { beta: 0.5 }.cache_key();
        let b = Measure::RtrPlus { beta: 0.5 }.cache_key();
        assert_eq!(a, b);
        // -0.0 and 0.0 are distinct bit patterns: distinct keys.
        assert_ne!(
            Measure::RtrPlus { beta: 0.0 }.cache_key(),
            Measure::RtrPlus { beta: -0.0 }.cache_key()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Measure::F.to_string(), "F-Rank");
        assert_eq!(
            Measure::RtrPlus { beta: 0.5 }.to_string(),
            "RoundTripRank+(β=0.5)"
        );
    }
}
