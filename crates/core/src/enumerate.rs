//! Exact round-trip enumeration and truncated-walk computations.
//!
//! The paper introduces RoundTripRank by enumerating every round trip on the
//! Fig. 2 toy graph (Fig. 4, constant `L = L' = 2`) before deriving the
//! practical decomposition `r ∝ f · t` (Prop. 2). This module materializes
//! both views so tests can verify the decomposition against brute force:
//!
//! * [`round_trips`] — explicit DFS enumeration of all round trips (their
//!   node sequences and probabilities), exponential and only for tiny
//!   graphs;
//! * [`rtr_constant`] — `p_L(q→v) · p_L'(v→q)` via dense step vectors, the
//!   polynomial-time equivalent;
//! * [`frank_truncated`] / [`trank_truncated`] — F-Rank/T-Rank as explicit
//!   mixtures over walk lengths `Σ_ℓ p(L=ℓ) · p_ℓ(·)`, an independent
//!   cross-check of the fixed-point engines for any [`WalkLength`].

use crate::scores::ScoreVec;
use crate::walk::WalkLength;
use rtr_graph::{Graph, NodeId};

/// One explicit round trip: its visited nodes and probability.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundTrip {
    /// The visited node sequence `W_0, ..., W_{L+L'}` (first == last).
    pub nodes: Vec<NodeId>,
    /// The trip's target `W_L`.
    pub target: NodeId,
    /// Product of transition probabilities along the trip.
    pub probability: f64,
}

/// Probability of a specific walk (product of step probabilities; 0 if any
/// step is not an edge).
pub fn path_probability(g: &Graph, path: &[NodeId]) -> f64 {
    path.windows(2)
        .map(|w| g.transition_prob(w[0], w[1]))
        .product()
}

/// One forward diffusion step: `next[d] = Σ_s dist[s] · M[s][d]`.
pub fn step_forward(g: &Graph, dist: &[f64]) -> Vec<f64> {
    let mut next = vec![0.0; g.node_count()];
    for v in g.nodes() {
        let mass = dist[v.index()];
        if mass == 0.0 {
            continue;
        }
        for (dst, prob) in g.out_edges(v) {
            next[dst.index()] += mass * prob;
        }
    }
    next
}

/// One backward absorption step: if `cur[v] = p(reach q in exactly ℓ steps
/// from v)`, returns `p(reach q in exactly ℓ+1 steps from v)`:
/// `next[v] = Σ_{v'} M[v][v'] · cur[v']`.
pub fn step_backward(g: &Graph, cur: &[f64]) -> Vec<f64> {
    let mut next = vec![0.0; g.node_count()];
    for v in g.nodes() {
        let mut acc = 0.0;
        for (dst, prob) in g.out_edges(v) {
            acc += prob * cur[dst.index()];
        }
        next[v.index()] = acc;
    }
    next
}

/// `p(W_ℓ = v | W_0 = q)` for all `v`: the distribution after exactly `steps`
/// steps from `q`.
pub fn constant_forward(g: &Graph, q: NodeId, steps: usize) -> Vec<f64> {
    let mut dist = vec![0.0; g.node_count()];
    dist[q.index()] = 1.0;
    for _ in 0..steps {
        dist = step_forward(g, &dist);
    }
    dist
}

/// `p(W_ℓ = q | W_0 = v)` for all `v`: the probability of landing exactly on
/// `q` after `steps` steps, per start node.
pub fn constant_backward(g: &Graph, q: NodeId, steps: usize) -> Vec<f64> {
    let mut cur = vec![0.0; g.node_count()];
    cur[q.index()] = 1.0;
    for _ in 0..steps {
        cur = step_backward(g, &cur);
    }
    cur
}

/// Unnormalized RoundTripRank with constant walk lengths (paper Fig. 4):
/// `r(q,v) ∝ p_L(q→v) · p_L'(v→q)`.
pub fn rtr_constant(g: &Graph, q: NodeId, l: usize, l_prime: usize) -> ScoreVec {
    let fwd = constant_forward(g, q, l);
    let bwd = constant_backward(g, q, l_prime);
    ScoreVec::from_vec(fwd.iter().zip(&bwd).map(|(a, b)| a * b).collect())
}

/// Explicitly enumerate every round trip `q →(l steps)→ v →(l' steps)→ q`
/// with non-zero probability. Exponential in `l + l'`; intended for toy
/// graphs only (Fig. 4 validation).
pub fn round_trips(g: &Graph, q: NodeId, l: usize, l_prime: usize) -> Vec<RoundTrip> {
    let mut outgoing: Vec<(Vec<NodeId>, f64)> = Vec::new();
    dfs_paths(g, q, l, &mut vec![q], 1.0, &mut outgoing);
    let mut trips = Vec::new();
    for (out_path, out_prob) in outgoing {
        // invariant: dfs_paths only emits paths seeded with the start
        // node, so every emitted path is non-empty (×2 below).
        let target = *out_path.last().expect("non-empty path");
        let mut returning: Vec<(Vec<NodeId>, f64)> = Vec::new();
        dfs_paths(g, target, l_prime, &mut vec![target], 1.0, &mut returning);
        for (ret_path, ret_prob) in returning {
            // invariant: see above — dfs_paths paths are non-empty.
            if *ret_path.last().expect("non-empty path") != q {
                continue;
            }
            let mut nodes = out_path.clone();
            nodes.extend_from_slice(&ret_path[1..]);
            trips.push(RoundTrip {
                nodes,
                target,
                probability: out_prob * ret_prob,
            });
        }
    }
    trips
}

fn dfs_paths(
    g: &Graph,
    cur: NodeId,
    remaining: usize,
    path: &mut Vec<NodeId>,
    prob: f64,
    out: &mut Vec<(Vec<NodeId>, f64)>,
) {
    if remaining == 0 {
        out.push((path.clone(), prob));
        return;
    }
    for (dst, p) in g.out_edges(cur) {
        path.push(dst);
        dfs_paths(g, dst, remaining - 1, path, prob * p, out);
        path.pop();
    }
}

/// Sum enumerated round trips per target — the brute-force RoundTripRank
/// numerator of Fig. 4.
pub fn rtr_by_enumeration(g: &Graph, q: NodeId, l: usize, l_prime: usize) -> ScoreVec {
    let mut scores = ScoreVec::zeros(g.node_count());
    for trip in round_trips(g, q, l, l_prime) {
        *scores.score_mut(trip.target) += trip.probability;
    }
    scores
}

/// F-Rank as an explicit truncated mixture over walk lengths:
/// `f(q,v) ≈ Σ_{ℓ=0}^{H} p(L=ℓ) · p_ℓ(q→v)` with `H` chosen so the neglected
/// tail is at most `tail`.
pub fn frank_truncated(g: &Graph, q: NodeId, walk: WalkLength, tail: f64) -> ScoreVec {
    let horizon = walk.truncation_horizon(tail);
    let mut dist = vec![0.0; g.node_count()];
    dist[q.index()] = 1.0;
    let mut acc = vec![0.0; g.node_count()];
    for l in 0..=horizon {
        let w = walk.pmf(l);
        if w > 0.0 {
            for (a, d) in acc.iter_mut().zip(&dist) {
                *a += w * d;
            }
        }
        if l < horizon {
            dist = step_forward(g, &dist);
        }
    }
    ScoreVec::from_vec(acc)
}

/// T-Rank as an explicit truncated mixture over walk lengths:
/// `t(q,v) ≈ Σ_{ℓ=0}^{H} p(L'=ℓ) · p_ℓ(v→q)`.
pub fn trank_truncated(g: &Graph, q: NodeId, walk: WalkLength, tail: f64) -> ScoreVec {
    let horizon = walk.truncation_horizon(tail);
    let mut cur = vec![0.0; g.node_count()];
    cur[q.index()] = 1.0;
    let mut acc = vec![0.0; g.node_count()];
    for l in 0..=horizon {
        let w = walk.pmf(l);
        if w > 0.0 {
            for (a, c) in acc.iter_mut().zip(&cur) {
                *a += w * c;
            }
        }
        if l < horizon {
            cur = step_backward(g, &cur);
        }
    }
    ScoreVec::from_vec(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank::FRank;
    use crate::params::RankParams;
    use crate::query::Query;
    use crate::trank::TRank;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn fig4_trip_probabilities() {
        // Every number in paper Fig. 4, by explicit enumeration.
        let (g, ids) = fig2_toy();
        let trips = round_trips(&g, ids.t1, 2, 2);

        let sum_for = |target: NodeId| -> f64 {
            trips
                .iter()
                .filter(|t| t.target == target)
                .map(|t| t.probability)
                .sum()
        };
        let count_for =
            |target: NodeId| -> usize { trips.iter().filter(|t| t.target == target).count() };

        // v1: 4 trips × 0.0125 = 0.05
        assert_eq!(count_for(ids.v1), 4);
        assert!((sum_for(ids.v1) - 0.05).abs() < 1e-12);
        // v2: 4 trips × 0.025 = 0.1
        assert_eq!(count_for(ids.v2), 4);
        assert!((sum_for(ids.v2) - 0.1).abs() < 1e-12);
        // v3: 1 trip × 0.05
        assert_eq!(count_for(ids.v3), 1);
        assert!((sum_for(ids.v3) - 0.05).abs() < 1e-12);
        // t1: 25 trips × 0.01 = 0.25
        assert_eq!(count_for(ids.t1), 25);
        assert!((sum_for(ids.t1) - 0.25).abs() < 1e-12);
        // papers can never be targets of a 2-step trip from t1
        for &p in &ids.p {
            assert_eq!(count_for(p), 0);
        }
    }

    #[test]
    fn fig4_individual_trip_probability() {
        let (g, ids) = fig2_toy();
        // p(t1→p1→v1→p1→t1) = 1/5·1/2·1/4·1/2 = 0.0125
        let p = path_probability(&g, &[ids.t1, ids.p[0], ids.v1, ids.p[0], ids.t1]);
        assert!((p - 0.0125).abs() < 1e-12);
        // p(t1→p3→v2→p3→t1) = 1/5·1/2·1/2·1/2 = 0.025
        let p = path_probability(&g, &[ids.t1, ids.p[2], ids.v2, ids.p[2], ids.t1]);
        assert!((p - 0.025).abs() < 1e-12);
        // p(t1→p5→v3→p5→t1) = 1/5·1/2·1·1/2 = 0.05
        let p = path_probability(&g, &[ids.t1, ids.p[4], ids.v3, ids.p[4], ids.t1]);
        assert!((p - 0.05).abs() < 1e-12);
        // Non-path has zero probability.
        let p = path_probability(&g, &[ids.t1, ids.v1]);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn decomposition_equals_enumeration() {
        // Prop. 2 on the toy graph with constant lengths: the product view
        // and brute-force enumeration must agree per target.
        let (g, ids) = fig2_toy();
        let by_product = rtr_constant(&g, ids.t1, 2, 2);
        let by_enum = rtr_by_enumeration(&g, ids.t1, 2, 2);
        assert!(
            by_product.linf_distance(&by_enum) < 1e-12,
            "L∞ = {}",
            by_product.linf_distance(&by_enum)
        );
    }

    #[test]
    fn truncated_frank_matches_fixed_point() {
        let (g, ids) = fig2_toy();
        let walk = WalkLength::Geometric { alpha: 0.25 };
        let truncated = frank_truncated(&g, ids.t1, walk, 1e-12);
        let exact = FRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        assert!(
            truncated.linf_distance(&exact) < 1e-9,
            "L∞ = {}",
            truncated.linf_distance(&exact)
        );
    }

    #[test]
    fn truncated_trank_matches_fixed_point() {
        let (g, ids) = fig2_toy();
        let walk = WalkLength::Geometric { alpha: 0.25 };
        let truncated = trank_truncated(&g, ids.t1, walk, 1e-12);
        let exact = TRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        assert!(
            truncated.linf_distance(&exact) < 1e-9,
            "L∞ = {}",
            truncated.linf_distance(&exact)
        );
    }

    #[test]
    fn forward_step_preserves_mass_on_connected_graph() {
        let (g, ids) = fig2_toy();
        let d0 = constant_forward(&g, ids.t1, 0);
        assert!((d0.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let d3 = constant_forward(&g, ids.t1, 3);
        assert!((d3.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backward_zero_steps_is_indicator() {
        let (g, ids) = fig2_toy();
        let b0 = constant_backward(&g, ids.t1, 0);
        for v in g.nodes() {
            let expected = if v == ids.t1 { 1.0 } else { 0.0 };
            assert_eq!(b0[v.index()], expected);
        }
    }

    #[test]
    fn round_trip_count_grows_with_length() {
        let (g, ids) = fig2_toy();
        let short = round_trips(&g, ids.t1, 2, 2).len();
        let long = round_trips(&g, ids.t1, 4, 2).len();
        assert!(long > short, "{long} !> {short}");
    }

    #[test]
    fn trips_start_and_end_at_query() {
        let (g, ids) = fig2_toy();
        for trip in round_trips(&g, ids.t1, 2, 2) {
            assert_eq!(trip.nodes.first(), Some(&ids.t1));
            assert_eq!(trip.nodes.last(), Some(&ids.t1));
            assert_eq!(trip.nodes.len(), 5); // L + L' + 1 nodes
            assert_eq!(trip.nodes[2], trip.target);
            assert!(trip.probability > 0.0);
        }
    }
}
