//! Walk-length distributions.
//!
//! The trip-view of PPR (paper Sect. III-A) parameterizes a trip by a random
//! walk length `L`. The paper uses two instances:
//!
//! * `L ~ Geo(α)`: `p(L = ℓ) = (1-α)^ℓ · α` — the default, equivalent to PPR
//!   with teleport probability α (Prop. 1);
//! * constant `L = ℓ₀` — used in the toy example of Fig. 4 (`L = L' = 2`).

use serde::{Deserialize, Serialize};

/// Distribution of the number of steps in a trip.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalkLength {
    /// Geometric with success probability α: `p(ℓ) = (1-α)^ℓ α`, ℓ ≥ 0.
    Geometric {
        /// Teleport probability α ∈ (0,1).
        alpha: f64,
    },
    /// Deterministic length ℓ₀.
    Constant {
        /// The fixed number of steps.
        steps: usize,
    },
}

impl WalkLength {
    /// Probability mass at length `l`.
    pub fn pmf(&self, l: usize) -> f64 {
        match *self {
            WalkLength::Geometric { alpha } => (1.0 - alpha).powi(l as i32) * alpha,
            WalkLength::Constant { steps } => {
                if l == steps {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Survival function `p(L > l)` — the probability the walk continues
    /// past step `l`. Used to truncate enumerations.
    pub fn survival(&self, l: usize) -> f64 {
        match *self {
            WalkLength::Geometric { alpha } => (1.0 - alpha).powi(l as i32 + 1),
            WalkLength::Constant { steps } => {
                if l < steps {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Expected length `E[L]`: `(1-α)/α` for geometric, ℓ₀ for constant.
    pub fn mean(&self) -> f64 {
        match *self {
            WalkLength::Geometric { alpha } => (1.0 - alpha) / alpha,
            WalkLength::Constant { steps } => steps as f64,
        }
    }

    /// Smallest `l` such that `p(L > l) ≤ tail` (∞-safe truncation horizon).
    pub fn truncation_horizon(&self, tail: f64) -> usize {
        match *self {
            WalkLength::Geometric { alpha } => {
                // (1-α)^(l+1) <= tail  =>  l >= ln(tail)/ln(1-α) - 1
                let l = (tail.ln() / (1.0 - alpha).ln() - 1.0).ceil();
                l.max(0.0) as usize
            }
            WalkLength::Constant { steps } => steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_pmf_sums_to_one() {
        let w = WalkLength::Geometric { alpha: 0.25 };
        let total: f64 = (0..500).map(|l| w.pmf(l)).sum();
        assert!((total - 1.0).abs() < 1e-12, "sum = {total}");
    }

    #[test]
    fn geometric_pmf_decreasing() {
        // "a geometric L is effective as it gives longer walk lengths smaller
        //  probabilities" (paper Sect. III-A).
        let w = WalkLength::Geometric { alpha: 0.25 };
        for l in 0..20 {
            assert!(w.pmf(l) > w.pmf(l + 1));
        }
    }

    #[test]
    fn geometric_mean() {
        let w = WalkLength::Geometric { alpha: 0.25 };
        assert!((w.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_survival_consistent_with_pmf() {
        let w = WalkLength::Geometric { alpha: 0.3 };
        for l in 0..10 {
            let tail: f64 = (l + 1..200).map(|k| w.pmf(k)).sum();
            assert!((w.survival(l) - tail).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_pmf_is_point_mass() {
        let w = WalkLength::Constant { steps: 2 };
        assert_eq!(w.pmf(2), 1.0);
        assert_eq!(w.pmf(1), 0.0);
        assert_eq!(w.pmf(3), 0.0);
        assert_eq!(w.mean(), 2.0);
        assert_eq!(w.survival(1), 1.0);
        assert_eq!(w.survival(2), 0.0);
    }

    #[test]
    fn truncation_horizon_bounds_tail() {
        let w = WalkLength::Geometric { alpha: 0.25 };
        let h = w.truncation_horizon(1e-6);
        assert!(w.survival(h) <= 1e-6);
        assert!(h == 0 || w.survival(h - 1) > 1e-6);
        let c = WalkLength::Constant { steps: 5 };
        assert_eq!(c.truncation_horizon(1e-6), 5);
    }
}
