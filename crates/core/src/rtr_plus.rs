//! RoundTripRank+: customizable importance/specificity trade-off via hybrid
//! random surfers.
//!
//! The paper's Def. 3 posits a population Ω of surfers in three groups:
//! Ω11 (regular round trips, both senses), Ω10 (shortcut the return leg —
//! importance only), Ω01 (shortcut the outgoing leg — specificity only).
//! Prop. 3 collapses the composition into a single *specificity bias*
//!
//! ```text
//! β = (|Ω11| + |Ω01|) / (|Ω| + |Ω11|)   ∈ [0, 1]
//! r_β(q,v) ∝ f(q,v)^(1-β) · t(q,v)^β       (Eq. 12)
//! ```
//!
//! Special cases: β=0 ≡ F-Rank, β=1 ≡ T-Rank, β=0.5 rank-equivalent to
//! RoundTripRank. The paper's default fallback is β = 0.5.

use crate::error::CoreError;
use crate::params::RankParams;
use crate::query::Query;
use crate::rtr::RoundTripRank;
use crate::scores::ScoreVec;
use rtr_graph::Graph;

/// A concrete composition of hybrid random surfers (paper Sect. IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridSurfers {
    /// Surfers taking regular round trips (balanced).
    pub balanced: usize,
    /// Surfers shortcutting the return leg (importance-seeking, Ω10).
    pub importance: usize,
    /// Surfers shortcutting the outgoing leg (specificity-seeking, Ω01).
    pub specificity: usize,
}

impl HybridSurfers {
    /// The specificity bias β this composition induces (paper Eq. 11–12):
    /// `β = (|Ω11| + |Ω01|) / (|Ω| + |Ω11|)`.
    pub fn beta(&self) -> f64 {
        let total = self.balanced + self.importance + self.specificity;
        assert!(total > 0, "surfer population must be non-empty");
        (self.balanced + self.specificity) as f64 / (total + self.balanced) as f64
    }
}

/// RoundTripRank+ with specificity bias β.
#[derive(Clone, Copy, Debug)]
pub struct RoundTripRankPlus {
    params: RankParams,
    beta: f64,
}

impl RoundTripRankPlus {
    /// Create with explicit β ∈ [0, 1].
    pub fn new(params: RankParams, beta: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
            return Err(CoreError::InvalidBeta(beta));
        }
        Ok(RoundTripRankPlus { params, beta })
    }

    /// Create from a surfer composition (Def. 3 route).
    pub fn from_surfers(params: RankParams, surfers: HybridSurfers) -> Self {
        RoundTripRankPlus {
            params,
            beta: surfers.beta(),
        }
    }

    /// The paper's default fallback β = 0.5 ("which outperforms the extreme
    /// cases of β = 0 or 1 in our experiments").
    pub fn balanced(params: RankParams) -> Self {
        RoundTripRankPlus { params, beta: 0.5 }
    }

    /// The specificity bias in use.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The parameters in use.
    pub fn params(&self) -> &RankParams {
        &self.params
    }

    /// Compute `r_β(q, ·)` for all nodes.
    ///
    /// Multi-node queries follow the same linear reduction as RoundTripRank:
    /// per-query-node blends combined by query weight.
    pub fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        query.validate(g)?;
        let rtr = RoundTripRank::new(self.params);
        if query.len() == 1 {
            let parts = rtr.compute_parts(g, query)?;
            return Ok(parts.f.geometric_blend(&parts.t, self.beta));
        }
        let mut acc = ScoreVec::zeros(g.node_count());
        for (node, w) in query.iter() {
            let parts = rtr.compute_parts(g, &Query::single(node))?;
            acc.accumulate(&parts.f.geometric_blend(&parts.t, self.beta), w);
        }
        Ok(acc)
    }

    /// Compute `r_β` reusing precomputed `f` and `t` vectors (the β-sweep of
    /// Fig. 8 evaluates many β per query; `f`/`t` are computed once).
    pub fn blend(&self, f: &ScoreVec, t: &ScoreVec) -> ScoreVec {
        f.geometric_blend(t, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank::FRank;
    use crate::trank::TRank;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn beta_zero_rank_matches_frank() {
        let (g, ids) = fig2_toy();
        let q = Query::single(ids.t1);
        let p = RankParams::default();
        let plus = RoundTripRankPlus::new(p, 0.0).unwrap();
        let r0 = plus.compute(&g, &q).unwrap();
        let f = FRank::new(p).compute(&g, &q).unwrap();
        assert!(r0.rank_equivalent(&f), "β=0 must reduce to F-Rank");
    }

    #[test]
    fn beta_one_rank_matches_trank() {
        let (g, ids) = fig2_toy();
        let q = Query::single(ids.t1);
        let p = RankParams::default();
        let plus = RoundTripRankPlus::new(p, 1.0).unwrap();
        let r1 = plus.compute(&g, &q).unwrap();
        let t = TRank::new(p).compute(&g, &q).unwrap();
        assert!(r1.rank_equivalent(&t), "β=1 must reduce to T-Rank");
    }

    #[test]
    fn beta_half_rank_matches_rtr() {
        let (g, ids) = fig2_toy();
        let q = Query::single(ids.t1);
        let p = RankParams::default();
        let half = RoundTripRankPlus::balanced(p).compute(&g, &q).unwrap();
        let rtr = RoundTripRank::new(p).compute(&g, &q).unwrap();
        assert!(half.rank_equivalent(&rtr), "β=0.5 must rank like RTR");
    }

    #[test]
    fn invalid_beta_rejected() {
        let p = RankParams::default();
        assert!(RoundTripRankPlus::new(p, -0.1).is_err());
        assert!(RoundTripRankPlus::new(p, 1.1).is_err());
        assert!(RoundTripRankPlus::new(p, f64::NAN).is_err());
    }

    #[test]
    fn surfer_composition_betas() {
        // Ω = Ω11 only: β = |Ω11| / (|Ω| + |Ω11|) = n / 2n = 0.5.
        let balanced = HybridSurfers {
            balanced: 10,
            importance: 0,
            specificity: 0,
        };
        assert!((balanced.beta() - 0.5).abs() < 1e-12);
        // Ω = Ω10 only: β = 0 (pure importance).
        let imp = HybridSurfers {
            balanced: 0,
            importance: 5,
            specificity: 0,
        };
        assert_eq!(imp.beta(), 0.0);
        // Ω = Ω01 only: β = 1 (pure specificity).
        let spec = HybridSurfers {
            balanced: 0,
            importance: 0,
            specificity: 5,
        };
        assert_eq!(spec.beta(), 1.0);
        // Mixed: 2 balanced, 1 importance, 1 specificity:
        // β = (2+1)/(4+2) = 0.5.
        let mixed = HybridSurfers {
            balanced: 2,
            importance: 1,
            specificity: 1,
        };
        assert!((mixed.beta() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn beta_slides_between_senses() {
        // As β grows, the specific venue v3 must overtake the important v1.
        let (g, ids) = fig2_toy();
        let q = Query::single(ids.t1);
        let p = RankParams::default();
        let f = FRank::new(p).compute(&g, &q).unwrap();
        let t = TRank::new(p).compute(&g, &q).unwrap();
        let low = RoundTripRankPlus::new(p, 0.05).unwrap().blend(&f, &t);
        let high = RoundTripRankPlus::new(p, 0.95).unwrap().blend(&f, &t);
        assert!(low.score(ids.v1) > low.score(ids.v3), "low β favors v1");
        assert!(high.score(ids.v3) > high.score(ids.v1), "high β favors v3");
    }

    #[test]
    fn blend_matches_compute() {
        let (g, ids) = fig2_toy();
        let q = Query::single(ids.t1);
        let p = RankParams::default();
        let plus = RoundTripRankPlus::new(p, 0.3).unwrap();
        let via_compute = plus.compute(&g, &q).unwrap();
        let f = FRank::new(p).compute(&g, &q).unwrap();
        let t = TRank::new(p).compute(&g, &q).unwrap();
        let via_blend = plus.blend(&f, &t);
        assert!(via_compute.linf_distance(&via_blend) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_surfer_population_panics() {
        HybridSurfers {
            balanced: 0,
            importance: 0,
            specificity: 0,
        }
        .beta();
    }
}
