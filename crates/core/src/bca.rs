//! Bookmark-Coloring Algorithm (BCA) with residual tracking.
//!
//! BCA [Berkhin 2006, ref. 19 in the paper] computes PPR by spreading one
//! unit of *residual* from the query over the graph: processing a node moves
//! an α fraction of its residual into its PPR estimate `ρ` and pushes the
//! remaining `1-α` to its out-neighbors. The invariant
//!
//! ```text
//! f(q,v) = ρ(q,v) + Σ_u µ(q,u) · f(u,v)      (for every v)
//! ```
//!
//! makes `ρ(q,v)` a lower bound at all times, and the total residual an
//! upper-bound budget. Stage I of 2SBound's F-Rank realization (paper
//! Sect. V-A3) is BCA with two extensions implemented here:
//!
//! * **batched expansion** — instead of the single max-residual node, pick up
//!   to `m` nodes by *benefit* `µ(q,v)/|Out(v)|` (the paper's criterion
//!   balancing residual reduction against processing cost; `m = 100` in the
//!   paper's experiments);
//! * **the improved unseen upper bound of Prop. 4** —
//!   `f̂(q) = α/(2-α)·max_u µ(q,u) + (1-α)/(2-α)·Σ_u µ(q,u)`, which accounts
//!   for residual repeatedly returning to a node, vs. the weaker
//!   first-arrival bound of Gupta et al. \[16\] (also provided, for the
//!   `Gupta`/`G+S` baseline schemes of Fig. 11a).

use crate::error::CoreError;
use crate::params::RankParams;
use crate::workspace::BcaWorkspace;
use rtr_graph::{AdjacencyAccess, AdjacencyError, FetchHint, NodeId};

/// BCA state for one query node.
///
/// The per-query `ρ`/`µ` maps live in a [`BcaWorkspace`] (dense-backed
/// sparse maps with O(touched) clearing). [`Bca::new`] allocates a fresh
/// one; a serving worker instead threads one workspace through
/// [`Bca::with_workspace`] / [`Bca::into_workspace`] so steady-state
/// queries allocate nothing.
///
/// The graph is not captured: every processing step takes the
/// [`AdjacencyAccess`] it runs against, so the *same* BCA drives both the
/// in-memory graph and the distributed active graph. Before each batch the
/// full residual frontier is announced via
/// [`ensure`](AdjacencyAccess::ensure) with [`FetchHint::OutFrontier`],
/// which is where a paged adjacency does its demand fetch + prefetch.
#[derive(Clone, Debug)]
pub struct Bca {
    alpha: f64,
    /// Captured at init: whether the graph has self-loops (Prop. 4 check).
    loops: bool,
    /// The `ρ` / `µ` maps and selection scratch.
    ws: BcaWorkspace,
    /// Incrementally maintained `Σ_u µ(q,u)`.
    total_residual: f64,
    /// Number of node-processing operations performed.
    processed: usize,
}

impl Bca {
    /// Initialize for query node `q`: one unit of residual at `q`, all
    /// estimates zero (the precondition of the original BCA). Allocates a
    /// fresh workspace; see [`Bca::with_workspace`] for the reusing variant.
    pub fn new<A: AdjacencyAccess>(
        a: &A,
        q: NodeId,
        params: &RankParams,
    ) -> Result<Self, CoreError> {
        Self::with_workspace(a, q, params, BcaWorkspace::default())
    }

    /// Initialize like [`Bca::new`] but reusing `ws`'s buffers (cleared in
    /// O(entries touched by the previous query)). Recover the workspace with
    /// [`Bca::into_workspace`] when the run is over. Touches no adjacency —
    /// a paged source fetches nothing until the first batch runs.
    pub fn with_workspace<A: AdjacencyAccess>(
        a: &A,
        q: NodeId,
        params: &RankParams,
        mut ws: BcaWorkspace,
    ) -> Result<Self, CoreError> {
        params.validate()?;
        if q.index() >= a.node_count() {
            return Err(CoreError::NodeOutOfRange {
                node: q,
                node_count: a.node_count(),
            });
        }
        ws.reset(a.node_count());
        ws.mu.insert(q.0, 1.0);
        Ok(Bca {
            alpha: params.alpha,
            loops: a.has_self_loops(),
            ws,
            total_residual: 1.0,
            processed: 0,
        })
    }

    /// Dissolve into the workspace so its buffers serve the next query.
    pub fn into_workspace(self) -> BcaWorkspace {
        self.ws
    }

    /// Current estimate `ρ(q,v)` (a lower bound on `f(q,v)`).
    pub fn rho(&self, v: NodeId) -> f64 {
        self.ws.rho.score(v.0)
    }

    /// Current residual `µ(q,v)`.
    pub fn mu(&self, v: NodeId) -> f64 {
        self.ws.mu.score(v.0)
    }

    /// `Σ_u µ(q,u)` — the remaining residual budget.
    pub fn total_residual(&self) -> f64 {
        self.total_residual.max(0.0)
    }

    /// `max_u µ(q,u)` (0 when no residual remains).
    pub fn max_residual(&self) -> f64 {
        self.ws.mu.values().fold(0.0, f64::max)
    }

    /// Number of processing operations performed so far.
    pub fn processed_count(&self) -> usize {
        self.processed
    }

    /// Nodes with non-zero estimated PPR — the paper's f-neighborhood
    /// `S_f = {v : ρ(q,v) > 0}`.
    pub fn seen(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.ws.rho.iter().map(|(v, r)| (NodeId(v), r))
    }

    /// Number of seen nodes `|S_f|`.
    pub fn seen_count(&self) -> usize {
        self.ws.rho.len()
    }

    /// Apply BCA processing to one node (paper Sect. V-A3):
    /// α·µ moves into ρ, (1-α)·µ spreads to out-neighbors, µ resets to 0.
    ///
    /// On a dangling node the (1-α) portion has nowhere to go and is lost —
    /// consistent with the substochastic F-Rank a dangling graph defines.
    ///
    /// `v`'s adjacency must be resident in `a` (any node is, for an
    /// in-memory graph; for a paged source, pass through
    /// [`Bca::process_batch`], which announces the frontier first).
    pub fn process<A: AdjacencyAccess>(&mut self, a: &A, v: NodeId) {
        let Some(residual) = self.ws.mu.remove(v.0) else {
            return;
        };
        if residual <= 0.0 {
            return;
        }
        self.processed += 1;
        self.ws.rho.add(v.0, self.alpha * residual);
        let spread = (1.0 - self.alpha) * residual;
        let mut spread_out = 0.0;
        for (dst, prob) in a.out_edges(v) {
            let amt = spread * prob;
            self.ws.mu.add(dst.0, amt);
            spread_out += amt;
        }
        // total -= consumed-by-rho + lost-on-dangling
        self.total_residual -= residual - spread_out;
    }

    /// One Stage-I expansion: pick up to `m` nodes with the largest non-zero
    /// *benefit* `µ(q,v)/|Out(v)|` and process them. Returns the processed
    /// nodes (the first expansion returns just the query node, matching the
    /// paper's observation). Allocation-free serving paths use
    /// [`Bca::process_batch_count`] instead.
    pub fn process_batch<A: AdjacencyAccess>(
        &mut self,
        a: &mut A,
        m: usize,
    ) -> Result<Vec<NodeId>, AdjacencyError> {
        let picked = self.process_batch_count(a, m)?;
        Ok(self.ws.candidates[..picked]
            .iter()
            .map(|&(v, _)| NodeId(v))
            .collect())
    }

    /// [`Bca::process_batch`] without materializing the picked nodes:
    /// returns only how many were processed. The selection scratch lives in
    /// the workspace, so this performs no allocation in steady state.
    pub fn process_batch_count<A: AdjacencyAccess>(
        &mut self,
        a: &mut A,
        m: usize,
    ) -> Result<usize, AdjacencyError> {
        self.ws.candidates.clear();
        if m == 0 || self.ws.mu.is_empty() {
            return Ok(0);
        }
        // Announce the whole residual frontier before reading any degree:
        // a paged adjacency demand-fetches the missing blocks here (and may
        // prefetch the next frontier); the in-memory graph does nothing.
        self.ws.ensure_ids.clear();
        for (v, r) in self.ws.mu.iter() {
            if r > 0.0 {
                self.ws.ensure_ids.push(v);
            }
        }
        if self.ws.ensure_ids.is_empty() {
            return Ok(0);
        }
        self.ws.ensure_ids.sort_unstable();
        a.ensure(&self.ws.ensure_ids, FetchHint::OutFrontier)?;
        for (v, r) in self.ws.mu.iter() {
            if r > 0.0 {
                let out = a.out_degree(NodeId(v)).max(1);
                self.ws.candidates.push((v, r / out as f64));
            }
        }
        let take = m.min(self.ws.candidates.len());
        // Partial selection of the top-m benefits; ties break by node id so
        // runs are reproducible regardless of map iteration order.
        self.ws
            .candidates
            .select_nth_unstable_by(take.saturating_sub(1), |a, b| {
                b.1.partial_cmp(&a.1)
                    // invariant: benefits are products of finite
                    // probabilities and scores — never NaN.
                    .expect("NaN benefit")
                    .then(a.0.cmp(&b.0))
            });
        self.ws.candidates.truncate(take);
        // Process in ascending id order so state evolution is independent of
        // map iteration order.
        self.ws.candidates.sort_unstable_by_key(|&(v, _)| v);
        for i in 0..take {
            let v = NodeId(self.ws.candidates[i].0);
            self.process(a, v);
        }
        Ok(take)
    }

    /// Run batched processing until the total residual drops to `eps`
    /// (asymptotic termination of the original BCA, truncated at `eps`).
    pub fn run_to_residual<A: AdjacencyAccess>(
        &mut self,
        a: &mut A,
        eps: f64,
        m: usize,
    ) -> Result<(), AdjacencyError> {
        while self.total_residual() > eps {
            if self.process_batch_count(a, m)? == 0 {
                break; // no residual left anywhere (all dangling-lost)
            }
        }
        Ok(())
    }

    /// The paper's improved unseen upper bound (Prop. 4, Eq. 19):
    /// `f̂(q) = α/(2-α)·max_u µ(q,u) + (1-α)/(2-α)·Σ_u µ(q,u)`.
    ///
    /// Valid for *any* node: `f(q,v) ≤ ρ(q,v) + f̂(q)` (Eq. 21), and in
    /// particular `f(q,v) ≤ f̂(q)` for unseen nodes (ρ = 0).
    pub fn unseen_upper_bound(&self) -> f64 {
        if self.loops {
            // Prop. 4's derivation assumes a returning walk needs at least
            // two steps (damping (1-α)² per revisit); a self-loop returns
            // residual in one step and the 1/(2-α) factor becomes unsound.
            // Fall back to the always-valid first-arrival bound.
            return self.gupta_upper_bound();
        }
        let a = self.alpha;
        a / (2.0 - a) * self.max_residual() + (1.0 - a) / (2.0 - a) * self.total_residual()
    }

    /// The weaker first-arrival bound in the style of Gupta et al. \[16\]:
    /// all remaining residual could, in the limit, deposit onto one node, so
    /// `f(q,v) ≤ ρ(q,v) + Σ_u µ(q,u)`. Used by the `Gupta` and `G+S`
    /// baseline schemes of the efficiency study (Fig. 11a).
    pub fn gupta_upper_bound(&self) -> f64 {
        self.total_residual()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank::FRank;
    use crate::query::Query;
    use rtr_graph::toy::fig2_toy;
    use rtr_graph::Graph;

    fn exact_frank(g: &Graph, q: NodeId) -> crate::scores::ScoreVec {
        FRank::new(RankParams::default())
            .compute(g, &Query::single(q))
            .unwrap()
    }

    #[test]
    fn first_batch_processes_query_only() {
        let (g, ids) = fig2_toy();
        let mut bca = Bca::new(&g, ids.t1, &RankParams::default()).unwrap();
        let picked = bca.process_batch(&mut &g, 100).unwrap();
        assert_eq!(picked, vec![ids.t1]);
        assert!((bca.rho(ids.t1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn residual_decreases_monotonically() {
        let (g, ids) = fig2_toy();
        let mut bca = Bca::new(&g, ids.t1, &RankParams::default()).unwrap();
        let mut prev = bca.total_residual();
        for _ in 0..20 {
            bca.process_batch(&mut &g, 10).unwrap();
            let cur = bca.total_residual();
            assert!(cur <= prev + 1e-12, "residual increased {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn converges_to_exact_frank() {
        let (g, ids) = fig2_toy();
        let exact = exact_frank(&g, ids.t1);
        let mut bca = Bca::new(&g, ids.t1, &RankParams::default()).unwrap();
        bca.run_to_residual(&mut &g, 1e-9, 50).unwrap();
        for v in g.nodes() {
            assert!(
                (bca.rho(v) - exact.score(v)).abs() < 1e-7,
                "{v:?}: bca {} vs exact {}",
                bca.rho(v),
                exact.score(v)
            );
        }
    }

    #[test]
    fn rho_is_always_a_lower_bound() {
        let (g, ids) = fig2_toy();
        let exact = exact_frank(&g, ids.t1);
        let mut bca = Bca::new(&g, ids.t1, &RankParams::default()).unwrap();
        for _ in 0..30 {
            bca.process_batch(&mut &g, 3).unwrap();
            for v in g.nodes() {
                assert!(
                    bca.rho(v) <= exact.score(v) + 1e-12,
                    "ρ exceeded exact at {v:?}"
                );
            }
        }
    }

    #[test]
    fn prop4_bound_is_valid_and_tighter_than_gupta() {
        let (g, ids) = fig2_toy();
        let exact = exact_frank(&g, ids.t1);
        let mut bca = Bca::new(&g, ids.t1, &RankParams::default()).unwrap();
        for _ in 0..15 {
            bca.process_batch(&mut &g, 2).unwrap();
            let ub = bca.unseen_upper_bound();
            let gupta = bca.gupta_upper_bound();
            // Prop. 4 must still be an upper bound...
            for v in g.nodes() {
                assert!(
                    exact.score(v) <= bca.rho(v) + ub + 1e-12,
                    "bound violated at {v:?}"
                );
            }
            // ...and strictly tighter than the first-arrival bound
            // (while residual remains).
            if bca.total_residual() > 1e-12 {
                assert!(ub < gupta, "Prop.4 {ub} not tighter than Gupta {gupta}");
            }
        }
    }

    #[test]
    fn mass_conservation() {
        // ρ total + residual total = 1 on a dangling-free graph.
        let (g, ids) = fig2_toy();
        let mut bca = Bca::new(&g, ids.t1, &RankParams::default()).unwrap();
        for _ in 0..10 {
            bca.process_batch(&mut &g, 5).unwrap();
            let rho_total: f64 = bca.seen().map(|(_, r)| r).sum();
            assert!(
                (rho_total + bca.total_residual() - 1.0).abs() < 1e-9,
                "mass leaked: ρ={rho_total}, µ={}",
                bca.total_residual()
            );
        }
    }

    #[test]
    fn dangling_node_loses_mass() {
        let mut b = rtr_graph::GraphBuilder::new();
        let ty = b.register_type("n");
        let q = b.add_node(ty);
        let x = b.add_node(ty);
        b.add_edge(q, x, 1.0); // x dangling
        let g = b.build();
        let mut bca = Bca::new(&g, q, &RankParams::default()).unwrap();
        bca.run_to_residual(&mut &g, 1e-12, 10).unwrap();
        let rho_total: f64 = bca.seen().map(|(_, r)| r).sum();
        assert!(rho_total < 1.0, "dangling graph must be substochastic");
        // ρ(q) = α, ρ(x) = (1-α)·α.
        assert!((bca.rho(q) - 0.25).abs() < 1e-12);
        assert!((bca.rho(x) - 0.75 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn processing_node_without_residual_is_noop() {
        let (g, ids) = fig2_toy();
        let mut bca = Bca::new(&g, ids.t1, &RankParams::default()).unwrap();
        bca.process(&g, ids.v1); // v1 has no residual yet
        assert_eq!(bca.processed_count(), 0);
        assert_eq!(bca.rho(ids.v1), 0.0);
        assert_eq!(bca.total_residual(), 1.0);
    }

    #[test]
    fn benefit_prefers_cheap_high_residual_nodes() {
        // After the first expansion, residual sits on t1's 5 papers equally;
        // each paper has out-degree 2, so all have equal benefit, and a batch
        // of size 2 should pick exactly 2 of them.
        let (g, ids) = fig2_toy();
        let mut bca = Bca::new(&g, ids.t1, &RankParams::default()).unwrap();
        bca.process_batch(&mut &g, 1).unwrap();
        let picked = bca.process_batch(&mut &g, 2).unwrap();
        assert_eq!(picked.len(), 2);
        for v in picked {
            assert!(ids.p.contains(&v), "expected a paper, got {v:?}");
        }
    }

    #[test]
    fn out_of_range_query_rejected() {
        let (g, _) = fig2_toy();
        assert!(matches!(
            Bca::new(&g, NodeId(999), &RankParams::default()),
            Err(CoreError::NodeOutOfRange { .. })
        ));
    }
}
