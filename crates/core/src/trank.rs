//! T-Rank: rank by reachability **to** the query (specificity).
//!
//! `t(q,v) ≜ p(W_L' = q | W_0 = v)` with `L' ~ Geo(α)` (paper Sect. III-B).
//! A node is specific to the query when walks started *at the node* find
//! their way back to the query easily — a focused venue's papers all lead
//! back to the query topic, while a broad venue leaks walks to off-topic
//! regions. Computed by the symmetric iteration of paper Eq. 8 (gather over
//! out-neighbors), one dense vector for all `v` simultaneously.

use crate::error::CoreError;
use crate::iterative::{iterate, Direction, IterationStats};
use crate::params::RankParams;
use crate::query::Query;
use crate::scores::ScoreVec;
use rtr_graph::Graph;

/// Specificity-based proximity: T-Rank (a.k.a. backward random walk /
/// Inverse-ObjectRank-style reachability to the query).
#[derive(Clone, Copy, Debug)]
pub struct TRank {
    params: RankParams,
}

impl TRank {
    /// Create with the given parameters.
    pub fn new(params: RankParams) -> Self {
        TRank { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &RankParams {
        &self.params
    }

    /// Compute `t(q, ·)` for all nodes.
    pub fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        Ok(self.compute_with_stats(g, query)?.0)
    }

    /// Compute, also returning iteration statistics.
    pub fn compute_with_stats(
        &self,
        g: &Graph,
        query: &Query,
    ) -> Result<(ScoreVec, IterationStats), CoreError> {
        iterate(g, query, &self.params, Direction::Backward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use rtr_graph::toy::fig2_toy;
    use rtr_graph::NodeId;

    /// Monte-Carlo T-Rank: from each start node, simulate geometric-length
    /// walks and count how often they end exactly at q.
    fn monte_carlo_trank(
        g: &rtr_graph::Graph,
        q: NodeId,
        start: NodeId,
        alpha: f64,
        trips: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut hits = 0usize;
        for _ in 0..trips {
            let mut cur = start;
            loop {
                if rng.gen_bool(alpha) {
                    break;
                }
                let edges: Vec<(NodeId, f64)> = g.out_edges(cur).collect();
                if edges.is_empty() {
                    // Dangling: the walk cannot complete; it never "ends at"
                    // any node under the substochastic convention.
                    cur = NodeId(u32::MAX);
                    break;
                }
                let r: f64 = rng.gen();
                let mut acc = 0.0;
                let mut chosen = edges[edges.len() - 1].0;
                for (dst, p) in &edges {
                    acc += p;
                    if r < acc {
                        chosen = *dst;
                        break;
                    }
                }
                cur = chosen;
            }
            if cur == q {
                hits += 1;
            }
        }
        hits as f64 / trips as f64
    }

    #[test]
    fn iterative_matches_monte_carlo() {
        let (g, ids) = fig2_toy();
        let exact = TRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        for &v in &[ids.v1, ids.v2, ids.v3] {
            let mc = monte_carlo_trank(&g, ids.t1, v, 0.25, 200_000, 13);
            assert!(
                (exact.score(v) - mc).abs() < 0.01,
                "{v:?}: exact {} vs mc {mc}",
                exact.score(v)
            );
        }
    }

    #[test]
    fn trank_favors_focused_venue() {
        let (g, ids) = fig2_toy();
        let t = TRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        // v1 accepts off-topic papers p6, p7 so walks from v1 leak away.
        assert!(t.score(ids.v2) > t.score(ids.v1));
        assert!(t.score(ids.v3) > t.score(ids.v1));
    }

    #[test]
    fn trank_zero_when_query_unreachable() {
        // a -> q exists, but x has no path to q: t(q, x) = 0 while f(q, x)
        // may be positive — the "minor caveat" of paper Sect. III-B.
        let mut b = rtr_graph::GraphBuilder::new();
        let ty = b.register_type("n");
        let q = b.add_node(ty);
        let a = b.add_node(ty);
        let x = b.add_node(ty);
        b.add_edge(a, q, 1.0);
        b.add_edge(q, x, 1.0); // reachable from q...
        b.add_edge(x, x, 1.0); // ...but x never returns
        let g = b.build();
        let t = TRank::new(RankParams::default())
            .compute(&g, &Query::single(q))
            .unwrap();
        assert!(t.score(a) > 0.0);
        assert_eq!(t.score(x), 0.0);
    }

    #[test]
    fn trank_self_score_includes_teleport_mass() {
        let (g, ids) = fig2_toy();
        let t = TRank::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        // Zero-length return trip has probability α.
        assert!(t.score(ids.t1) >= 0.25);
    }
}
