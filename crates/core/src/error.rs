//! Error type for ranking computations.

use rtr_graph::{AdjacencyError, NodeId};
use std::fmt;

/// Errors surfaced by the ranking APIs.
///
/// Programmer errors (e.g. indexing with a node id from a different graph
/// that happens to be in range) cannot always be detected; the checks here
/// cover everything detectable at the API boundary.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// A query node id exceeds the graph's node count.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The graph's node count.
        node_count: usize,
    },
    /// The query contains no nodes.
    EmptyQuery,
    /// A multi-node query's weights don't match its node list or are invalid.
    BadQueryWeights(String),
    /// The teleport probability α is outside `(0, 1)`.
    InvalidAlpha(f64),
    /// The specificity bias β is outside `[0, 1]`.
    InvalidBeta(f64),
    /// An iterative computation failed to converge within the iteration cap.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual change at the last iteration.
        residual: f64,
    },
    /// The adjacency source backing the run became unavailable mid-query
    /// (e.g. a graph-processor thread died). Carries the source's own
    /// diagnosis, which names the failed component.
    Adjacency(AdjacencyError),
}

impl From<AdjacencyError> for CoreError {
    fn from(e: AdjacencyError) -> Self {
        CoreError::Adjacency(e)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            CoreError::EmptyQuery => write!(f, "query contains no nodes"),
            CoreError::BadQueryWeights(msg) => write!(f, "bad query weights: {msg}"),
            CoreError::InvalidAlpha(a) => {
                write!(f, "teleport probability α must be in (0,1), got {a}")
            }
            CoreError::InvalidBeta(b) => {
                write!(f, "specificity bias β must be in [0,1], got {b}")
            }
            CoreError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CoreError::Adjacency(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::NodeOutOfRange {
            node: NodeId(9),
            node_count: 3,
        };
        assert!(e.to_string().contains("out of range"));
        assert!(CoreError::EmptyQuery.to_string().contains("no nodes"));
        assert!(CoreError::InvalidAlpha(1.5).to_string().contains("1.5"));
        assert!(CoreError::InvalidBeta(-0.1).to_string().contains("-0.1"));
        let e = CoreError::NoConvergence {
            iterations: 10,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("10"));
        let e = CoreError::from(AdjacencyError::SourceUnavailable {
            detail: "graph processor 1 is not running".into(),
        });
        assert!(e.to_string().contains("graph processor 1"));
    }
}
