//! Reusable per-query workspaces for the core engines.
//!
//! Online serving runs the same engines over and over against one shared
//! graph. The engines' per-query state — BCA's `ρ`/`µ` score maps, the
//! dense vectors of the exact iteration — is identical in shape from query
//! to query, so a worker that keeps a workspace alive between queries pays
//! the allocation cost once and thereafter only the O(touched) cost of
//! wiping the previous query's entries.
//!
//! Each engine exposes a `*_with` / `with_workspace` entry point that
//! borrows or consumes a workspace, and keeps its original allocating API
//! as a thin wrapper over a freshly created workspace, so results are
//! identical either way (the determinism suite in `tests/` enforces
//! bit-identity).

use crate::scores::ScoreVec;
use rtr_graph::ScoreMap;

/// Reusable state for one [`crate::bca::Bca`] run: the `ρ` / `µ` score maps
/// plus the Stage-I selection scratch.
///
/// Obtain one with [`BcaWorkspace::default`], pass it to
/// [`crate::bca::Bca::with_workspace`], and recover it afterwards with
/// [`crate::bca::Bca::into_workspace`]:
///
/// ```
/// use rtr_core::prelude::*;
/// use rtr_core::workspace::BcaWorkspace;
/// use rtr_graph::toy::fig2_toy;
///
/// let (g, ids) = fig2_toy();
/// let mut ws = BcaWorkspace::default();
/// for q in [ids.t1, ids.t2] {
///     let mut bca = Bca::with_workspace(&g, q, &RankParams::default(), ws).unwrap();
///     bca.run_to_residual(&mut &g, 1e-6, 100).unwrap();
///     assert!(bca.rho(q) > 0.0);
///     ws = bca.into_workspace(); // buffers survive for the next query
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct BcaWorkspace {
    /// Estimated PPR `ρ(q,·)`.
    pub(crate) rho: ScoreMap,
    /// Residual `µ(q,·)`.
    pub(crate) mu: ScoreMap,
    /// Stage-I benefit-selection scratch.
    pub(crate) candidates: Vec<(u32, f64)>,
    /// Sorted frontier ids announced to `AdjacencyAccess::ensure` before
    /// each batch (demand-paging / prefetch scratch).
    pub(crate) ensure_ids: Vec<u32>,
}

impl BcaWorkspace {
    /// A workspace pre-sized for graphs of `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        BcaWorkspace {
            rho: ScoreMap::with_capacity(n),
            mu: ScoreMap::with_capacity(n),
            candidates: Vec::new(),
            ensure_ids: Vec::new(),
        }
    }

    /// Wipe previous-query state (O(touched)) and admit node ids `0..n`.
    pub(crate) fn reset(&mut self, n: usize) {
        self.rho.ensure_capacity(n);
        self.mu.ensure_capacity(n);
        self.rho.clear();
        self.mu.clear();
        self.candidates.clear();
        self.ensure_ids.clear();
    }
}

/// Reusable dense vectors for [`crate::iterative::iterate_with`]: the start
/// distribution and the two iterates the fixed point ping-pongs between.
///
/// The exact engines ([`crate::frank::FRank`], [`crate::trank::TRank`]) are
/// O(|V|) in state; re-serving them from a warm workspace avoids two of
/// the three `|V|`-sized allocations per query (the returned
/// [`ScoreVec`] necessarily owns the third — the converged iterate's
/// buffer).
#[derive(Clone, Debug, Default)]
pub struct IterWorkspace {
    pub(crate) start: Vec<f64>,
    pub(crate) cur: Vec<f64>,
    pub(crate) next: Vec<f64>,
}

impl IterWorkspace {
    /// A workspace pre-sized for graphs of `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        IterWorkspace {
            start: Vec::with_capacity(n),
            cur: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
        }
    }

    /// Zero all three vectors at length `n` (retaining their allocations).
    pub(crate) fn reset(&mut self, n: usize) {
        for v in [&mut self.start, &mut self.cur, &mut self.next] {
            v.clear();
            v.resize(n, 0.0);
        }
    }

    /// Move the converged iterate out as a [`ScoreVec`], leaving an empty
    /// (but still allocated) slot behind.
    pub(crate) fn take_result(&mut self) -> ScoreVec {
        ScoreVec::from_vec(std::mem::take(&mut self.cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bca_workspace_reset_clears_state() {
        let mut ws = BcaWorkspace::with_capacity(4);
        ws.rho.insert(1, 0.5);
        ws.mu.insert(2, 0.5);
        ws.candidates.push((1, 0.5));
        ws.reset(8);
        assert!(ws.rho.is_empty());
        assert!(ws.mu.is_empty());
        assert!(ws.candidates.is_empty());
        assert!(ws.rho.capacity() >= 8);
    }

    #[test]
    fn iter_workspace_reset_zeroes() {
        let mut ws = IterWorkspace::with_capacity(2);
        ws.reset(3);
        ws.cur[1] = 9.0;
        ws.reset(3);
        assert_eq!(ws.cur, vec![0.0; 3]);
        assert_eq!(ws.start.len(), 3);
        assert_eq!(ws.next.len(), 3);
    }
}
