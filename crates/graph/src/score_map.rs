//! Dense-backed sparse per-query state — the serving hot path's workspace
//! primitive.
//!
//! Every online query touches a small *neighborhood* of a large graph: BCA
//! residuals, neighborhood bounds, active-set membership. Hash maps make
//! those touches cheap to write but costly to serve at rate: every query
//! re-allocates buckets, re-hashes keys, and walks cache-hostile memory.
//! [`SparseMap`] replaces them with the classic sparse-set layout
//! (Briggs & Torczon):
//!
//! * `sparse` — one `u32` slot per node of the graph, mapping a node id to
//!   its position in the dense arrays (or a sentinel when absent);
//! * `keys` / `vals` — densely packed touched entries, iterated without
//!   visiting untouched nodes.
//!
//! All operations are O(1); [`SparseMap::clear`] is **O(touched)**, not
//! O(capacity), which is what lets a per-worker workspace be wiped between
//! queries for free and re-used for the next query with zero allocation
//! (the `sparse` slab is allocated once per worker, sized to the graph).
//!
//! Iteration order is the dense insertion order: deterministic for a
//! deterministic operation sequence (no hashing), but *not* sorted —
//! callers that need a canonical order (e.g. Gauss-Seidel sweeps) sort the
//! key list exactly as they previously did with hash maps.

/// Sentinel marking an absent key in the sparse index.
const ABSENT: u32 = u32::MAX;

/// A map from node ids (`u32`) to `Copy` values, backed by a dense
/// sparse-set so that clearing costs O(touched entries).
///
/// Keys must be below the configured capacity (the graph's node count);
/// inserting beyond it panics, mirroring the slice-indexing convention of
/// [`crate::Graph`] adjacency accessors.
#[derive(Clone, Debug)]
pub struct SparseMap<T> {
    sparse: Vec<u32>,
    keys: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Copy> SparseMap<T> {
    /// An empty map with zero capacity (grow with
    /// [`SparseMap::ensure_capacity`]).
    pub fn new() -> Self {
        SparseMap {
            sparse: Vec::new(),
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// An empty map admitting keys `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut m = Self::new();
        m.ensure_capacity(capacity);
        m
    }

    /// Grow the key universe to at least `capacity` (never shrinks).
    /// Existing entries are preserved; the new slots start absent.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.sparse.len() < capacity {
            self.sparse.resize(capacity, ABSENT);
        }
    }

    /// The key universe size (valid keys are `0..capacity`).
    pub fn capacity(&self) -> usize {
        self.sparse.len()
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no entry is present.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.sparse
            .get(key as usize)
            .is_some_and(|&pos| pos != ABSENT)
    }

    /// The value at `key`, if present.
    #[inline]
    pub fn get(&self, key: u32) -> Option<T> {
        match self.sparse.get(key as usize) {
            Some(&pos) if pos != ABSENT => Some(self.vals[pos as usize]),
            _ => None,
        }
    }

    /// Mutable access to the value at `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        match self.sparse.get(key as usize) {
            Some(&pos) if pos != ABSENT => Some(&mut self.vals[pos as usize]),
            _ => None,
        }
    }

    /// Insert or overwrite, returning the previous value if any.
    /// Panics if `key >= capacity`.
    #[inline]
    pub fn insert(&mut self, key: u32, value: T) -> Option<T> {
        let pos = self.sparse[key as usize];
        if pos != ABSENT {
            let slot = &mut self.vals[pos as usize];
            let old = *slot;
            *slot = value;
            Some(old)
        } else {
            self.push_entry(key, value);
            None
        }
    }

    /// Insert only if vacant; returns `true` when the insert happened.
    /// Panics if `key >= capacity`.
    #[inline]
    pub fn insert_if_vacant(&mut self, key: u32, value: T) -> bool {
        if self.sparse[key as usize] != ABSENT {
            return false;
        }
        self.push_entry(key, value);
        true
    }

    /// Mutable access to the value at `key`, inserting `default` first when
    /// absent. Panics if `key >= capacity`.
    #[inline]
    pub fn get_or_insert(&mut self, key: u32, default: T) -> &mut T {
        let pos = self.sparse[key as usize];
        let pos = if pos != ABSENT {
            pos as usize
        } else {
            self.push_entry(key, default);
            self.vals.len() - 1
        };
        &mut self.vals[pos]
    }

    /// Remove `key`, returning its value if it was present (swap-remove:
    /// O(1), dense order of the last entry changes).
    #[inline]
    pub fn remove(&mut self, key: u32) -> Option<T> {
        let pos = *self.sparse.get(key as usize)?;
        if pos == ABSENT {
            return None;
        }
        let pos = pos as usize;
        let value = self.vals.swap_remove(pos);
        self.keys.swap_remove(pos);
        self.sparse[key as usize] = ABSENT;
        if let Some(&moved) = self.keys.get(pos) {
            self.sparse[moved as usize] = pos as u32;
        }
        Some(value)
    }

    /// Remove all entries in O(touched); capacity is retained.
    pub fn clear(&mut self) {
        for &k in &self.keys {
            self.sparse[k as usize] = ABSENT;
        }
        self.keys.clear();
        self.vals.clear();
    }

    /// Present keys, in dense (insertion-ish) order.
    pub fn keys(&self) -> impl Iterator<Item = u32> + '_ {
        self.keys.iter().copied()
    }

    /// Present `(key, value)` pairs, in dense order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, T)> + '_ {
        self.keys.iter().copied().zip(self.vals.iter().copied())
    }

    /// Present values, in dense order.
    pub fn values(&self) -> impl Iterator<Item = T> + '_ {
        self.vals.iter().copied()
    }

    #[inline]
    fn push_entry(&mut self, key: u32, value: T) {
        self.sparse[key as usize] = self.keys.len() as u32;
        self.keys.push(key);
        self.vals.push(value);
    }
}

impl<T: Copy> Default for SparseMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Sparse score accumulator — the workspace replacement for the per-query
/// `HashMap<u32, f64>` state of BCA (`ρ`, `µ`) and friends.
pub type ScoreMap = SparseMap<f64>;

impl ScoreMap {
    /// The score at `key`, defaulting to 0 when absent (matching the
    /// "only non-zero entries are stored" convention of sparse PPR state).
    #[inline]
    pub fn score(&self, key: u32) -> f64 {
        self.get(key).unwrap_or(0.0)
    }

    /// Add `delta` to the score at `key` (inserting it when absent).
    /// Panics if `key >= capacity`.
    #[inline]
    pub fn add(&mut self, key: u32, delta: f64) {
        *self.get_or_insert(key, 0.0) += delta;
    }

    /// Sum of all present scores.
    pub fn total(&self) -> f64 {
        self.values().sum()
    }
}

/// A set of node ids with O(touched) clearing — the workspace replacement
/// for the active-set `HashSet<u32>`.
#[derive(Clone, Debug, Default)]
pub struct NodeSet {
    map: SparseMap<()>,
}

impl NodeSet {
    /// An empty set with zero capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set admitting ids `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeSet {
            map: SparseMap::with_capacity(capacity),
        }
    }

    /// Grow the id universe to at least `capacity`.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        self.map.ensure_capacity(capacity);
    }

    /// Insert `id`; returns `true` if it was not already present.
    /// Panics if `id >= capacity`.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        self.map.insert_if_vacant(id, ())
    }

    /// Whether `id` is present.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.map.contains(id)
    }

    /// Number of present ids.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Remove all ids in O(touched).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Present ids, in dense (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.map.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m: ScoreMap = SparseMap::with_capacity(8);
        assert_eq!(m.insert(3, 1.5), None);
        assert_eq!(m.insert(3, 2.5), Some(1.5));
        assert_eq!(m.get(3), Some(2.5));
        assert_eq!(m.get(4), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_swaps_and_unlinks() {
        let mut m: ScoreMap = SparseMap::with_capacity(8);
        m.insert(1, 10.0);
        m.insert(2, 20.0);
        m.insert(3, 30.0);
        assert_eq!(m.remove(1), Some(10.0));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 2);
        // The swapped-in entry stays reachable.
        assert_eq!(m.get(3), Some(30.0));
        assert_eq!(m.get(2), Some(20.0));
        assert!(!m.contains(1));
    }

    #[test]
    fn clear_is_complete_and_reusable() {
        let mut m: ScoreMap = SparseMap::with_capacity(16);
        for k in 0..10u32 {
            m.insert(k, k as f64);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        for k in 0..16u32 {
            assert!(!m.contains(k));
        }
        // Reuse after clear behaves like a fresh map.
        m.insert(15, 1.0);
        assert_eq!(m.get(15), Some(1.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn score_add_accumulates() {
        let mut m = ScoreMap::with_capacity(4);
        assert_eq!(m.score(2), 0.0);
        m.add(2, 0.25);
        m.add(2, 0.5);
        assert!((m.score(2) - 0.75).abs() < 1e-15);
        assert!((m.total() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn get_or_insert_and_vacant_insert() {
        let mut m: SparseMap<u32> = SparseMap::with_capacity(4);
        *m.get_or_insert(0, 7) += 1;
        assert_eq!(m.get(0), Some(8));
        assert!(!m.insert_if_vacant(0, 99));
        assert!(m.insert_if_vacant(1, 99));
        assert_eq!(m.get(0), Some(8));
        assert_eq!(m.get(1), Some(99));
    }

    #[test]
    fn ensure_capacity_preserves_entries() {
        let mut m: ScoreMap = SparseMap::with_capacity(2);
        m.insert(1, 4.0);
        m.ensure_capacity(100);
        assert_eq!(m.get(1), Some(4.0));
        m.insert(99, 9.0);
        assert_eq!(m.get(99), Some(9.0));
        assert_eq!(m.capacity(), 100);
    }

    #[test]
    fn out_of_universe_reads_are_none() {
        let m: ScoreMap = SparseMap::with_capacity(4);
        assert_eq!(m.get(1000), None);
        assert!(!m.contains(1000));
    }

    #[test]
    #[should_panic]
    fn out_of_universe_insert_panics() {
        let mut m: ScoreMap = SparseMap::with_capacity(4);
        m.insert(4, 1.0);
    }

    #[test]
    fn node_set_basics() {
        let mut s = NodeSet::with_capacity(8);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(3));
    }

    #[test]
    fn iteration_matches_contents() {
        let mut m: ScoreMap = SparseMap::with_capacity(8);
        m.insert(5, 0.5);
        m.insert(2, 0.2);
        m.insert(7, 0.7);
        m.remove(2);
        let mut pairs: Vec<(u32, f64)> = m.iter().collect();
        pairs.sort_by_key(|&(k, _)| k);
        assert_eq!(pairs, vec![(5, 0.5), (7, 0.7)]);
        let mut keys: Vec<u32> = m.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![5, 7]);
        let total: f64 = m.values().sum();
        assert!((total - 1.2).abs() < 1e-15);
    }
}
