//! Plain-text graph interchange: node and edge lists.
//!
//! Downstream users bring their own graphs; this module reads and writes a
//! simple tab-separated format so real datasets (a DBLP dump, a query log)
//! can be loaded without touching the builder API:
//!
//! ```text
//! # nodes: id <TAB> type <TAB> label      (id must count up from 0)
//! N 0    term    spatio
//! N 1    venue   VLDB
//! # edges: src <TAB> dst <TAB> weight [<TAB> "u" for undirected]
//! E 0    1   2.5    u
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. The format is
//! line-oriented and streaming-friendly; parse errors carry line numbers.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::node::NodeId;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors while parsing the text format.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with 1-based line number and description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a graph from the tab-separated text format.
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut b = GraphBuilder::new();
    let mut next_node = 0u32;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        // invariant: split() always yields at least one item, even on "".
        let tag = fields.next().expect("split yields at least one field");
        match tag {
            "N" => {
                let id: u32 = fields
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing node id"))?
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad node id: {e}")))?;
                if id != next_node {
                    return Err(parse_err(
                        lineno,
                        format!("node ids must be consecutive: expected {next_node}, got {id}"),
                    ));
                }
                next_node += 1;
                let ty_name = fields
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing node type"))?;
                let label = fields.next().unwrap_or("");
                let ty = b.register_type(ty_name);
                b.add_labeled_node(ty, label);
            }
            "E" => {
                let src: u32 = fields
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing edge source"))?
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad edge source: {e}")))?;
                let dst: u32 = fields
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing edge target"))?
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad edge target: {e}")))?;
                let weight: f64 = fields
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing edge weight"))?
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad edge weight: {e}")))?;
                if src >= next_node || dst >= next_node {
                    return Err(parse_err(lineno, "edge references undeclared node"));
                }
                if !(weight > 0.0 && weight.is_finite()) {
                    return Err(parse_err(lineno, format!("non-positive weight {weight}")));
                }
                match fields.next() {
                    Some("u") => b.add_undirected_edge(NodeId(src), NodeId(dst), weight),
                    Some(other) => {
                        return Err(parse_err(
                            lineno,
                            format!("unknown edge flag '{other}' (only 'u')"),
                        ))
                    }
                    None => b.add_edge(NodeId(src), NodeId(dst), weight),
                }
            }
            other => {
                return Err(parse_err(
                    lineno,
                    format!("unknown record tag '{other}' (expected N or E)"),
                ))
            }
        }
    }
    Ok(b.build())
}

/// Write a graph in the tab-separated text format. Undirected pairs are
/// written as two directed `E` records (lossless, if redundant).
pub fn write_graph<W: Write>(g: &Graph, mut writer: W) -> Result<(), IoError> {
    writeln!(
        writer,
        "# RoundTripRank graph: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    for v in g.nodes() {
        writeln!(
            writer,
            "N\t{}\t{}\t{}",
            v.0,
            g.types().name(g.node_type(v)),
            g.label(v)
        )?;
    }
    for v in g.nodes() {
        for (d, w) in g.out_edges_weighted(v) {
            writeln!(writer, "E\t{}\t{}\t{}", v.0, d.0, w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::fig2_toy;

    #[test]
    fn roundtrip_preserves_graph() {
        let (g, _) = fig2_toy();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).expect("write");
        let back = read_graph(buf.as_slice()).expect("read");
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(back.label(v), g.label(v));
            assert_eq!(
                back.types().name(back.node_type(v)),
                g.types().name(g.node_type(v))
            );
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = back.out_edges(v).collect();
            assert_eq!(a, b, "adjacency differs at {v:?}");
        }
    }

    #[test]
    fn parses_minimal_example() {
        let text = "# comment\nN\t0\tterm\tspatio\nN\t1\tvenue\tVLDB\nE\t0\t1\t2.5\tu\n";
        let g = read_graph(text.as_bytes()).expect("parse");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2); // undirected = both directions
        assert_eq!(g.label(NodeId(1)), "VLDB");
        assert!((g.transition_prob(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_gap_in_node_ids() {
        let text = "N\t0\tn\t\nN\t2\tn\t\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("consecutive"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_edge_to_undeclared_node() {
        let text = "N\t0\tn\t\nE\t0\t5\t1.0\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("undeclared"), "{err}");
    }

    #[test]
    fn rejects_bad_weight() {
        let text = "N\t0\tn\t\nN\t1\tn\t\nE\t0\t1\t-3\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("weight"), "{err}");
    }

    #[test]
    fn rejects_unknown_tag() {
        let err = read_graph("X\t0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown record tag"), "{err}");
    }

    #[test]
    fn rejects_unknown_edge_flag() {
        let text = "N\t0\tn\t\nN\t1\tn\t\nE\t0\t1\t1.0\tz\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown edge flag"), "{err}");
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_graph("".as_bytes()).expect("parse");
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn labels_with_spaces_survive() {
        let text = "N\t0\tvenue\tSpatio-Temporal Databases, Dagstuhl\n";
        let g = read_graph(text.as_bytes()).expect("parse");
        assert_eq!(g.label(NodeId(0)), "Spatio-Temporal Databases, Dagstuhl");
    }
}
