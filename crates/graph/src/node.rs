//! Node identifiers, node types and the type registry.
//!
//! The paper's graphs are heterogeneous: BibNet has papers, authors, terms
//! and venues; QLog has search phrases and URLs (Sect. VI). Ranking tasks
//! filter results by target type ("we filter out the query node itself and
//! nodes not of the target type"), so every node carries a compact type id.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense node identifier: an index into the graph's CSR arrays.
///
/// `u32` keeps adjacency arrays half the size of `usize` on 64-bit targets;
/// the paper's largest graph (2M nodes) fits comfortably.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for slice indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index (panics if it exceeds `u32::MAX`).
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Compact node-type identifier (index into a [`TypeRegistry`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeTypeId(pub u8);

impl NodeTypeId {
    /// The index as a `usize`.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Registry mapping type names (e.g. `"paper"`, `"venue"`) to compact ids.
///
/// At most 256 distinct types are supported, which is far beyond anything the
/// paper's heterogeneous networks need (4 types in BibNet, 2 in QLog).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TypeRegistry {
    names: Vec<String>,
}

impl TypeRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a type name, returning its id. Re-registering an existing
    /// name returns the original id (idempotent).
    pub fn register(&mut self, name: &str) -> NodeTypeId {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return NodeTypeId(pos as u8);
        }
        assert!(self.names.len() < 256, "too many node types (max 256)");
        self.names.push(name.to_owned());
        NodeTypeId((self.names.len() - 1) as u8)
    }

    /// Look up a type id by name.
    pub fn get(&self, name: &str) -> Option<NodeTypeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|p| NodeTypeId(p as u8))
    }

    /// The name for a type id.
    pub fn name(&self, id: NodeTypeId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no types have been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeTypeId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeTypeId(i as u8), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(format!("{n:?}"), "n42");
        assert_eq!(format!("{n}"), "42");
    }

    #[test]
    fn node_id_ordering_matches_index() {
        assert!(NodeId(3) < NodeId(10));
        assert!(NodeId(10) > NodeId(3));
    }

    #[test]
    fn registry_register_and_lookup() {
        let mut reg = TypeRegistry::new();
        let paper = reg.register("paper");
        let venue = reg.register("venue");
        assert_ne!(paper, venue);
        assert_eq!(reg.get("paper"), Some(paper));
        assert_eq!(reg.get("venue"), Some(venue));
        assert_eq!(reg.get("author"), None);
        assert_eq!(reg.name(paper), "paper");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_register_idempotent() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("x");
        let b = reg.register("x");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_iter_order() {
        let mut reg = TypeRegistry::new();
        reg.register("a");
        reg.register("b");
        let collected: Vec<_> = reg.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }

    #[test]
    fn registry_empty() {
        let reg = TypeRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.len(), 0);
    }
}
