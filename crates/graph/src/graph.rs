//! The frozen dual-CSR graph.
//!
//! Immutable after construction; all per-query algorithms treat it as shared
//! read-only state (it is `Send + Sync`), which is what lets the distributed
//! layer stripe it across graph processors without locks.

use crate::node::{NodeId, NodeTypeId, TypeRegistry};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide epoch source. Every constructed [`Graph`] draws a fresh,
/// strictly increasing epoch from here, so two graphs built in the same
/// process — even byte-identical ones — never share an epoch. Caches key
/// results by `(query, epoch, …)` and thereby invalidate stale entries by
/// key alone, without scanning, when the graph they were computed against
/// is replaced.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    // ordering: Relaxed — epochs only need to be unique; the epoch value
    // reaches other threads through the Graph handoff (Arc/channel), not
    // through this atomic.
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A directed, weighted, typed graph in dual-CSR form.
///
/// Stores, per directed edge `s -> d` (after merging parallel edges):
/// * raw weight `w(s,d)` (for subgraph renormalization),
/// * forward transition probability `M[s][d] = w(s,d) / Σ_d' w(s,d')`.
///
/// The mirrored in-CSR stores, for each node `d`, its in-neighbors `s`
/// together with the same `M[s][d]` — the quantity F-Rank's update (paper
/// Eq. 5) sums over.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    types: TypeRegistry,
    node_types: Vec<NodeTypeId>,
    labels: Vec<String>,

    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<f64>,
    out_probs: Vec<f64>,

    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    in_probs: Vec<f64>,

    weighted_out_degree: Vec<f64>,
    has_self_loops: bool,
    // Never serialized: the epoch is process-unique by construction, and a
    // stored stamp could collide with a live graph's after a round trip. A
    // deserialized graph is new content to this process, so it draws a
    // fresh epoch — cached results never bleed across the boundary.
    #[serde(skip, default = "fresh_epoch")]
    epoch: u64,
}

impl Graph {
    /// Assemble from pre-built parts. Intended for [`crate::GraphBuilder`]
    /// and the subgraph machinery; invariants are debug-asserted.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        types: TypeRegistry,
        node_types: Vec<NodeTypeId>,
        labels: Vec<String>,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<f64>,
        out_probs: Vec<f64>,
        in_offsets: Vec<usize>,
        in_sources: Vec<NodeId>,
        in_probs: Vec<f64>,
        weighted_out_degree: Vec<f64>,
    ) -> Self {
        let n = node_types.len();
        debug_assert_eq!(labels.len(), n);
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), out_probs.len());
        debug_assert_eq!(in_sources.len(), in_probs.len());
        debug_assert_eq!(out_targets.len(), in_sources.len());
        let has_self_loops = (0..n).any(|v| {
            let (lo, hi) = (out_offsets[v], out_offsets[v + 1]);
            out_targets[lo..hi].binary_search(&NodeId(v as u32)).is_ok()
        });
        Self {
            types,
            node_types,
            labels,
            out_offsets,
            out_targets,
            out_weights,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
            weighted_out_degree,
            has_self_loops,
            epoch: fresh_epoch(),
        }
    }

    // ------------------------------------------------------------------
    // Sizes and identity
    // ------------------------------------------------------------------

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_types.len()
    }

    /// Number of distinct directed edges `|E|` (parallel edges merged).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterate over all node ids `0..|V|`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// This graph's epoch: a process-unique, monotonically increasing stamp
    /// assigned at construction. Two graphs built at different times always
    /// carry different epochs (a clone keeps its source's — identical
    /// content, identical answers), so any cache keying results by
    /// `(query, epoch, …)` is invalidated automatically when a new graph
    /// replaces an old one: stale entries simply stop being addressable.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-stamp this graph with a fresh epoch, invalidating every cache
    /// entry keyed against the old one. The hook future dynamic-graph
    /// layers call after an in-place mutation (edge insertion, weight
    /// update) so cached rankings computed on the pre-mutation topology
    /// can never be served again.
    pub fn bump_epoch(&mut self) {
        self.epoch = fresh_epoch();
    }

    /// The type registry.
    pub fn types(&self) -> &TypeRegistry {
        &self.types
    }

    /// Type of a node.
    #[inline]
    pub fn node_type(&self, v: NodeId) -> NodeTypeId {
        self.node_types[v.index()]
    }

    /// Human-readable label of a node (may be empty).
    #[inline]
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// All nodes of a given type.
    pub fn nodes_of_type(&self, ty: NodeTypeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&v| self.node_type(v) == ty)
    }

    /// Find a node by exact label (linear scan; intended for examples/tests).
    pub fn find_by_label(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(NodeId::from_index)
    }

    // ------------------------------------------------------------------
    // Degrees
    // ------------------------------------------------------------------

    /// Out-degree (number of distinct out-edges).
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]
    }

    /// In-degree (number of distinct in-edges).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]
    }

    /// Total degree (in + out); for undirected edges this counts both
    /// directions, matching the "node degree" heuristics in Hristidis et al.
    #[inline]
    pub fn total_degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Sum of raw out-edge weights of `v`.
    #[inline]
    pub fn weighted_out_degree(&self, v: NodeId) -> f64 {
        self.weighted_out_degree[v.index()]
    }

    /// `true` if any node has an edge to itself. Several bounds (notably the
    /// paper's Prop. 4) rely on a returning walk taking at least two steps,
    /// which self-loops violate; consumers check this flag to fall back to
    /// safe bounds.
    #[inline]
    pub fn has_self_loops(&self) -> bool {
        self.has_self_loops
    }

    /// `true` if the node has no out-edges, i.e. a random walk dies here.
    /// The paper assumes irreducible graphs (Sect. III-B); use
    /// [`crate::scc::IrreducibilityRepair`] to repair.
    #[inline]
    pub fn is_dangling(&self, v: NodeId) -> bool {
        self.out_degree(v) == 0
    }

    // ------------------------------------------------------------------
    // Adjacency
    // ------------------------------------------------------------------

    /// Out-edges of `v` as `(target, M[v][target])`, ascending by target id.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (self.out_offsets[v.index()], self.out_offsets[v.index() + 1]);
        self.out_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.out_probs[lo..hi].iter().copied())
    }

    /// Out-edges of `v` as `(target, raw_weight)`.
    #[inline]
    pub fn out_edges_weighted(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (self.out_offsets[v.index()], self.out_offsets[v.index() + 1]);
        self.out_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.out_weights[lo..hi].iter().copied())
    }

    /// In-edges of `v` as `(source, M[source][v])`, ascending by source id.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (self.in_offsets[v.index()], self.in_offsets[v.index() + 1]);
        self.in_sources[lo..hi]
            .iter()
            .copied()
            .zip(self.in_probs[lo..hi].iter().copied())
    }

    /// Out-edge slices `(targets, probs)` of `v` — the raw CSR row, for
    /// the zero-cost [`crate::adjacency::AdjacencyAccess`] impl.
    #[inline]
    pub(crate) fn out_edge_slices(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let (lo, hi) = (self.out_offsets[v.index()], self.out_offsets[v.index() + 1]);
        (&self.out_targets[lo..hi], &self.out_probs[lo..hi])
    }

    /// In-edge slices `(sources, probs)` of `v`.
    #[inline]
    pub(crate) fn in_edge_slices(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let (lo, hi) = (self.in_offsets[v.index()], self.in_offsets[v.index() + 1]);
        (&self.in_sources[lo..hi], &self.in_probs[lo..hi])
    }

    /// Out-neighbor ids only (no probabilities).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = (self.out_offsets[v.index()], self.out_offsets[v.index() + 1]);
        &self.out_targets[lo..hi]
    }

    /// In-neighbor ids only (no probabilities).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = (self.in_offsets[v.index()], self.in_offsets[v.index() + 1]);
        &self.in_sources[lo..hi]
    }

    /// Transition probability `M[s][d]`, or 0 if no edge (binary search).
    pub fn transition_prob(&self, s: NodeId, d: NodeId) -> f64 {
        let (lo, hi) = (self.out_offsets[s.index()], self.out_offsets[s.index() + 1]);
        match self.out_targets[lo..hi].binary_search(&d) {
            Ok(pos) => self.out_probs[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// `true` if the directed edge `s -> d` exists.
    pub fn has_edge(&self, s: NodeId, d: NodeId) -> bool {
        let (lo, hi) = (self.out_offsets[s.index()], self.out_offsets[s.index() + 1]);
        self.out_targets[lo..hi].binary_search(&d).is_ok()
    }

    /// Undirected neighbor set (union of in- and out-neighbors), deduplicated
    /// and sorted. Needed by AdamicAdar and the common-neighbor baselines.
    pub fn undirected_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut ns: Vec<NodeId> = self
            .out_neighbors(v)
            .iter()
            .chain(self.in_neighbors(v).iter())
            .copied()
            .collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    // ------------------------------------------------------------------
    // Memory accounting (paper Fig. 12 reports active-set bytes)
    // ------------------------------------------------------------------

    /// Approximate resident bytes of the CSR arrays (excludes labels, which
    /// the query algorithms never touch). This mirrors the paper's
    /// "snapshot size" metric.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let n = self.node_count();
        let m = self.edge_count();
        // offsets (2 arrays of n+1 usize), per-edge payloads, per-node payloads
        2 * (n + 1) * size_of::<usize>()
            + m * (2 * size_of::<NodeId>() + 3 * size_of::<f64>())
            + n * (size_of::<NodeTypeId>() + size_of::<f64>())
    }

    /// Per-node resident bytes if this node and its edges were copied into an
    /// active set: id + type + its out- and in-edge entries.
    pub fn node_footprint_bytes(&self, v: NodeId) -> usize {
        use std::mem::size_of;
        size_of::<NodeId>()
            + size_of::<NodeTypeId>()
            + self.out_degree(v) * (size_of::<NodeId>() + size_of::<f64>())
            + self.in_degree(v) * (size_of::<NodeId>() + size_of::<f64>())
    }

    /// Average (unweighted) out-degree `D̄ = |E| / |V|`, the quantity the
    /// paper's growth analysis (Sect. V-B1) is phrased in.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.node_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {

    use crate::toy::fig2_toy;

    #[test]
    fn fig2_degrees_match_paper() {
        let (g, ids) = fig2_toy();
        // t1 has degree 5 (p1..p5): the paper computes 1/5 steps from t1.
        assert_eq!(g.out_degree(ids.t1), 5);
        // p1 has degree 2 (t1, v1): paper uses 1/2.
        assert_eq!(g.out_degree(ids.p[0]), 2);
        // v1 has degree 4 (p1,p2,p6,p7): paper uses 1/4.
        assert_eq!(g.out_degree(ids.v1), 4);
        assert_eq!(g.out_degree(ids.v2), 2);
        assert_eq!(g.out_degree(ids.v3), 1);
    }

    #[test]
    fn fig2_round_trip_probability_by_hand() {
        // p(t1 -> p1 -> v1 -> p1 -> t1) = 1/5 * 1/2 * 1/4 * 1/2 = 0.0125 (paper Fig. 4)
        let (g, ids) = fig2_toy();
        let p = g.transition_prob(ids.t1, ids.p[0])
            * g.transition_prob(ids.p[0], ids.v1)
            * g.transition_prob(ids.v1, ids.p[0])
            * g.transition_prob(ids.p[0], ids.t1);
        assert!((p - 0.0125).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn transition_rows_are_stochastic_or_zero() {
        let (g, _) = fig2_toy();
        for v in g.nodes() {
            let s: f64 = g.out_edges(v).map(|(_, p)| p).sum();
            if g.is_dangling(v) {
                assert_eq!(s, 0.0);
            } else {
                assert!((s - 1.0).abs() < 1e-9, "row {v:?} sums to {s}");
            }
        }
    }

    #[test]
    fn transition_prob_missing_edge_is_zero() {
        let (g, ids) = fig2_toy();
        assert_eq!(g.transition_prob(ids.t1, ids.v1), 0.0);
        assert!(!g.has_edge(ids.t1, ids.v1));
        assert!(g.has_edge(ids.t1, ids.p[0]));
    }

    #[test]
    fn nodes_of_type_filters() {
        let (g, _) = fig2_toy();
        let venue_ty = g.types().get("venue").unwrap();
        assert_eq!(g.nodes_of_type(venue_ty).count(), 3);
        let paper_ty = g.types().get("paper").unwrap();
        assert_eq!(g.nodes_of_type(paper_ty).count(), 7);
    }

    #[test]
    fn undirected_neighbors_dedup() {
        let (g, ids) = fig2_toy();
        // All fig2 edges are bidirectional so union == out-neighbors.
        let ns = g.undirected_neighbors(ids.v1);
        assert_eq!(ns.len(), 4);
    }

    #[test]
    fn find_by_label_works() {
        let (g, ids) = fig2_toy();
        assert_eq!(g.find_by_label("v2:ACM-GIS-like"), Some(ids.v2));
        assert_eq!(g.find_by_label("nope"), None);
    }

    #[test]
    fn memory_accounting_positive_and_monotone() {
        let (g, ids) = fig2_toy();
        assert!(g.memory_bytes() > 0);
        // Higher-degree nodes have larger footprints.
        assert!(g.node_footprint_bytes(ids.v1) > g.node_footprint_bytes(ids.v3));
    }

    #[test]
    fn epochs_are_unique_and_monotone() {
        let (a, _) = fig2_toy();
        let (b, _) = fig2_toy();
        assert!(a.epoch() > 0);
        assert!(b.epoch() > a.epoch(), "later build gets a later epoch");
        // A clone is the same content, so it keeps the same epoch: cached
        // answers computed against the original stay valid for the clone.
        assert_eq!(a.clone().epoch(), a.epoch());
    }

    #[test]
    fn bump_epoch_restamps_forward() {
        let (mut g, _) = fig2_toy();
        let before = g.epoch();
        g.bump_epoch();
        assert!(g.epoch() > before);
        let again = g.epoch();
        g.bump_epoch();
        assert!(g.epoch() > again);
    }

    #[test]
    fn average_degree() {
        let (g, _) = fig2_toy();
        let d = g.average_degree();
        assert!((d - g.edge_count() as f64 / g.node_count() as f64).abs() < 1e-12);
    }
}
