#![deny(missing_docs)]
//! # rtr-graph — graph substrate for the RoundTripRank reproduction
//!
//! This crate provides the directed, weighted, typed graph on which every
//! proximity measure in the workspace operates. It is the substrate layer of
//! the reproduction of
//!
//! > Fang, Chang, Lauw. *RoundTripRank: Graph-based Proximity with Importance
//! > and Specificity.* ICDE 2013.
//!
//! The paper's model (Sect. I, III) is a graph `G = (V, E)` with directed,
//! possibly weighted edges, where an undirected edge is treated as
//! bidirectional. Random-walk transition probabilities are proportional to
//! edge weights. All ranking algorithms need *both* adjacency directions:
//!
//! * F-Rank iterates over **in**-neighbors with probabilities `M[v'][v]`
//!   (paper Eq. 5);
//! * T-Rank iterates over **out**-neighbors with probabilities `M[v][v']`
//!   (paper Eq. 8).
//!
//! We therefore store a dual CSR (compressed sparse row) representation:
//! a forward CSR over out-edges and a mirrored CSR over in-edges, each entry
//! carrying the *source-row-normalized* transition probability, so both
//! iteration patterns are cache-friendly single scans.
//!
//! ## Modules
//!
//! * [`adjacency`] — the [`AdjacencyAccess`] trait the bound engines run
//!   on: one generic algorithm serves both the in-memory graph and the
//!   distributed active graph (demand paging + prefetch behind `ensure`).
//! * [`node`] — node identifiers, node types, and the type registry.
//! * [`builder`] — mutable edge-list builder that produces a frozen [`Graph`].
//! * [`graph`] — the frozen dual-CSR [`Graph`] itself.
//! * [`scc`] — Tarjan strongly-connected components and the dummy-edge
//!   irreducibility repair the paper relies on (Sect. III-B, "we can always
//!   make a graph irreducible by adding some dummy edges").
//! * [`view`] — induced subgraphs and cumulative growth snapshots
//!   (used by the scalability study, paper Sect. VI-B2).
//! * [`score_map`] — dense-backed sparse per-query state ([`ScoreMap`],
//!   [`NodeSet`]) with O(touched) clearing, the workspace primitive that
//!   lets the serving layer run queries with zero steady-state allocation.
//! * [`stats`] — degree statistics and memory-footprint accounting (the
//!   "active set" measurements of Fig. 12 need byte sizes).
//! * [`wire`] — a compact binary wire format for shipping node/edge blocks
//!   between graph processors (paper Sect. V-B2).
//!
//! ## Quick example
//!
//! ```
//! use rtr_graph::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let ty_paper = b.register_type("paper");
//! let ty_term = b.register_type("term");
//! let p = b.add_labeled_node(ty_paper, "p1");
//! let t = b.add_labeled_node(ty_term, "spatio");
//! b.add_undirected_edge(p, t, 1.0);
//! let g = b.build();
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.out_degree(p), 1);
//! // Row-normalized transition probability p -> t:
//! let (tgt, prob) = g.out_edges(p).next().unwrap();
//! assert_eq!(tgt, t);
//! assert!((prob - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adjacency;
pub mod builder;
pub mod graph;
pub mod io;
pub mod node;
pub mod scc;
pub mod score_map;
pub mod stats;
pub mod toy;
pub mod view;
pub mod wire;

pub use adjacency::{AdjacencyAccess, AdjacencyError, FetchHint};
pub use builder::GraphBuilder;
pub use graph::Graph;
pub use node::{NodeId, NodeTypeId, TypeRegistry};
pub use score_map::{NodeSet, ScoreMap, SparseMap};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::adjacency::{AdjacencyAccess, AdjacencyError, FetchHint};
    pub use crate::builder::GraphBuilder;
    pub use crate::graph::Graph;
    pub use crate::node::{NodeId, NodeTypeId, TypeRegistry};
    pub use crate::scc::IrreducibilityRepair;
    pub use crate::score_map::{NodeSet, ScoreMap, SparseMap};
    pub use crate::view::{GrowthSchedule, Subgraph};
}
