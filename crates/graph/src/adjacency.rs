//! The shared adjacency-access abstraction the bound engines run on.
//!
//! The paper's AP/GP architecture (Sect. V-B) runs the *same* 2SBound
//! algorithm whether the graph is local or striped across graph processors;
//! only the way adjacency is materialized differs. [`AdjacencyAccess`]
//! captures exactly that seam: the read surface the engines need
//! (`out_edges` / `in_edges` / degrees / footprints) plus one write-side
//! hook, [`AdjacencyAccess::ensure`], through which an engine announces the
//! nodes it is about to touch.
//!
//! * For an in-memory [`Graph`] (implemented on `&Graph`), `ensure` is a
//!   no-op and every read is a direct CSR scan — zero overhead over calling
//!   the inherent methods.
//! * For a distributed active graph, `ensure` is where demand paging,
//!   cross-query block caching, and frontier prefetch live; reads then
//!   serve from resident blocks.
//!
//! Because the *one* generic engine implementation runs over both, local /
//! distributed bit-identity is true by construction: there is no second
//! copy of the algorithm to drift.

use crate::graph::Graph;
use crate::node::NodeId;

/// What an [`ensure`](AdjacencyAccess::ensure) call says about the access
/// pattern that will follow, so a remote-backed implementation can fetch
/// ahead of demand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FetchHint {
    /// Only the requested nodes will be touched; fetch exactly those.
    #[default]
    Demand,
    /// The requested nodes are a BCA-style expansion frontier: the *next*
    /// round will demand out-neighbors of (a subset of) these nodes. An
    /// implementation may prefetch those out-neighbors in the same round.
    OutFrontier,
    /// The requested nodes are a backward (t-neighborhood) frontier: the
    /// next round will demand *in*-neighbors of (a subset of) these nodes.
    InFrontier,
}

/// Failure to materialize adjacency from a remote source.
///
/// An in-memory graph never fails; a distributed implementation surfaces
/// e.g. a dead graph-processor thread here, with `detail` naming the
/// processor so the failure is diagnosable at the serving layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdjacencyError {
    /// The backing adjacency source cannot serve blocks any more.
    SourceUnavailable {
        /// Human-readable description naming the failed component.
        detail: String,
    },
}

impl std::fmt::Display for AdjacencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdjacencyError::SourceUnavailable { detail } => {
                write!(f, "adjacency source unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for AdjacencyError {}

/// Uniform adjacency access for the bound engines.
///
/// The contract the engines rely on:
///
/// * Edge iterators yield `(neighbor, transition probability)` in ascending
///   neighbor-id order — the same order for every implementation, which is
///   what makes engine runs bit-identical across backends.
/// * Reads (`out_edges`, `in_edges`, degrees, footprints) are only valid
///   for nodes previously passed to [`ensure`](AdjacencyAccess::ensure)
///   (an in-memory graph accepts any node; a paged implementation may
///   panic on an un-ensured node).
/// * `ensure` is idempotent and order-insensitive; callers pass node ids
///   sorted ascending so implementations behave deterministically.
pub trait AdjacencyAccess {
    /// Concrete edge iterator type; yields `(neighbor, probability)`.
    type Edges<'a>: Iterator<Item = (NodeId, f64)>
    where
        Self: 'a;

    /// Number of nodes `|V|` of the underlying graph.
    fn node_count(&self) -> usize;

    /// `true` if any node of the underlying graph has a self-loop (the
    /// bound engines fall back from Prop. 4 to the first-arrival bound).
    fn has_self_loops(&self) -> bool;

    /// Out-degree of `v`.
    fn out_degree(&self, v: NodeId) -> usize;

    /// In-degree of `v`.
    fn in_degree(&self, v: NodeId) -> usize;

    /// Resident bytes if `v` and its edges were copied into an active set.
    fn node_footprint_bytes(&self, v: NodeId) -> usize;

    /// Out-edges of `v` as `(target, M[v][target])`, ascending by target id.
    fn out_edges(&self, v: NodeId) -> Self::Edges<'_>;

    /// In-edges of `v` as `(source, M[source][v])`, ascending by source id.
    fn in_edges(&self, v: NodeId) -> Self::Edges<'_>;

    /// Make the adjacency of `ids` (sorted ascending, deduplicated)
    /// readable. A no-op for in-memory graphs; a paged implementation
    /// fetches whatever is missing — and, under
    /// [`FetchHint::OutFrontier`], may prefetch the predicted next
    /// frontier in the same round.
    fn ensure(&mut self, ids: &[u32], hint: FetchHint) -> Result<(), AdjacencyError>;
}

/// Concrete edge-iterator type of the in-memory [`Graph`] implementation.
pub type GraphEdges<'a> = std::iter::Zip<
    std::iter::Copied<std::slice::Iter<'a, NodeId>>,
    std::iter::Copied<std::slice::Iter<'a, f64>>,
>;

impl AdjacencyAccess for Graph {
    type Edges<'a>
        = GraphEdges<'a>
    where
        Self: 'a;

    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn has_self_loops(&self) -> bool {
        Graph::has_self_loops(self)
    }

    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        Graph::out_degree(self, v)
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        Graph::in_degree(self, v)
    }

    #[inline]
    fn node_footprint_bytes(&self, v: NodeId) -> usize {
        Graph::node_footprint_bytes(self, v)
    }

    #[inline]
    fn out_edges(&self, v: NodeId) -> Self::Edges<'_> {
        let (targets, probs) = self.out_edge_slices(v);
        targets.iter().copied().zip(probs.iter().copied())
    }

    #[inline]
    fn in_edges(&self, v: NodeId) -> Self::Edges<'_> {
        let (sources, probs) = self.in_edge_slices(v);
        sources.iter().copied().zip(probs.iter().copied())
    }

    /// Everything is always resident in an in-memory graph.
    #[inline]
    fn ensure(&mut self, _ids: &[u32], _hint: FetchHint) -> Result<(), AdjacencyError> {
        Ok(())
    }
}

/// A shared reference works too: this is the form the engines' generic
/// entry points take for local execution, since callers hold `&Graph`
/// (never `&mut Graph`) and the `ensure` no-op needs no real mutability.
impl AdjacencyAccess for &Graph {
    type Edges<'a>
        = GraphEdges<'a>
    where
        Self: 'a;

    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn has_self_loops(&self) -> bool {
        Graph::has_self_loops(self)
    }

    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        Graph::out_degree(self, v)
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        Graph::in_degree(self, v)
    }

    #[inline]
    fn node_footprint_bytes(&self, v: NodeId) -> usize {
        Graph::node_footprint_bytes(self, v)
    }

    #[inline]
    fn out_edges(&self, v: NodeId) -> Self::Edges<'_> {
        let (targets, probs) = self.out_edge_slices(v);
        targets.iter().copied().zip(probs.iter().copied())
    }

    #[inline]
    fn in_edges(&self, v: NodeId) -> Self::Edges<'_> {
        let (sources, probs) = self.in_edge_slices(v);
        sources.iter().copied().zip(probs.iter().copied())
    }

    /// Everything is always resident in an in-memory graph.
    #[inline]
    fn ensure(&mut self, _ids: &[u32], _hint: FetchHint) -> Result<(), AdjacencyError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::fig2_toy;

    #[test]
    fn graph_impl_matches_inherent_accessors() {
        let (g, _) = fig2_toy();
        let mut a = &g;
        a.ensure(&[0, 1, 2], FetchHint::OutFrontier).unwrap();
        assert_eq!(AdjacencyAccess::node_count(&a), g.node_count());
        assert_eq!(AdjacencyAccess::has_self_loops(&a), g.has_self_loops());
        for v in g.nodes() {
            assert_eq!(AdjacencyAccess::out_degree(&a, v), g.out_degree(v));
            assert_eq!(AdjacencyAccess::in_degree(&a, v), g.in_degree(v));
            assert_eq!(
                AdjacencyAccess::node_footprint_bytes(&a, v),
                g.node_footprint_bytes(v)
            );
            let trait_out: Vec<_> = AdjacencyAccess::out_edges(&a, v).collect();
            let inherent_out: Vec<_> = g.out_edges(v).collect();
            assert_eq!(trait_out, inherent_out);
            let trait_in: Vec<_> = AdjacencyAccess::in_edges(&a, v).collect();
            let inherent_in: Vec<_> = g.in_edges(v).collect();
            assert_eq!(trait_in, inherent_in);
        }
    }

    #[test]
    fn error_display_names_the_source() {
        let e = AdjacencyError::SourceUnavailable {
            detail: "graph processor 3 is not running".into(),
        };
        assert!(e.to_string().contains("graph processor 3"));
    }
}
