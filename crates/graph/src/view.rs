//! Induced subgraphs and cumulative growth snapshots.
//!
//! Two uses in the reproduction, both from the paper's evaluation:
//!
//! 1. **Effectiveness subgraphs** (Sect. VI-A): "we use smaller subgraphs for
//!    the effectiveness evaluation" — BibNet restricted to 28 major venues,
//!    QLog expanded three hops from 200 random nodes. [`Subgraph`] induces a
//!    graph on a node subset, renormalizing transition rows from raw weights,
//!    and [`khop_neighborhood`] implements the hop expansion.
//! 2. **Scalability snapshots** (Sect. VI-B2): "we model their growth by
//!    taking five snapshots at different timestamps... all snapshots are
//!    cumulative". [`GrowthSchedule`] produces cumulative node prefixes.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// An induced subgraph: the result of restricting a graph to a node subset.
///
/// Keeps the mapping back to the parent graph so experiment code can relate
/// subgraph rankings to parent-graph identities.
pub struct Subgraph {
    /// The induced graph (fresh compact node ids).
    pub graph: Graph,
    /// `to_parent[new_id] = old_id`.
    pub to_parent: Vec<NodeId>,
    /// Sparse inverse map: `to_sub(old_id) -> Option<new_id>`.
    to_sub: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl Subgraph {
    /// Induce the subgraph of `g` on `keep` (duplicates ignored).
    ///
    /// Edge weights are the parent's *raw* weights; transition probabilities
    /// are renormalized over the surviving edges, exactly as if the subgraph
    /// had been the original dataset.
    pub fn induce(g: &Graph, keep: &[NodeId]) -> Self {
        let mut to_sub = vec![ABSENT; g.node_count()];
        let mut to_parent = Vec::with_capacity(keep.len());
        for &v in keep {
            if to_sub[v.index()] == ABSENT {
                to_sub[v.index()] = to_parent.len() as u32;
                to_parent.push(v);
            }
        }
        let mut b = GraphBuilder::with_capacity(to_parent.len(), 0);
        for (_, name) in g.types().iter() {
            b.register_type(name);
        }
        for &old in &to_parent {
            b.add_labeled_node(g.node_type(old), g.label(old));
        }
        for (new_src, &old_src) in to_parent.iter().enumerate() {
            for (old_dst, w) in g.out_edges_weighted(old_src) {
                let new_dst = to_sub[old_dst.index()];
                if new_dst != ABSENT {
                    b.add_edge(NodeId(new_src as u32), NodeId(new_dst), w);
                }
            }
        }
        Subgraph {
            graph: b.build(),
            to_parent,
            to_sub,
        }
    }

    /// Map a parent node id into the subgraph, if present.
    pub fn to_sub(&self, parent: NodeId) -> Option<NodeId> {
        match self.to_sub[parent.index()] {
            ABSENT => None,
            s => Some(NodeId(s)),
        }
    }

    /// Map a subgraph node id back to the parent graph.
    pub fn to_parent(&self, sub: NodeId) -> NodeId {
        self.to_parent[sub.index()]
    }
}

/// Breadth-first k-hop neighborhood (undirected reachability) around seeds —
/// the QLog subgraph protocol: "we start with 200 random nodes, and expand to
/// their neighbors for three hops" (Sect. VI-A).
pub fn khop_neighborhood(g: &Graph, seeds: &[NodeId], hops: usize) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut out = Vec::new();
    let mut frontier: VecDeque<(NodeId, usize)> = VecDeque::new();
    for &s in seeds {
        if !seen[s.index()] {
            seen[s.index()] = true;
            out.push(s);
            frontier.push_back((s, 0));
        }
    }
    while let Some((v, d)) = frontier.pop_front() {
        if d == hops {
            continue;
        }
        for &n in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
            if !seen[n.index()] {
                seen[n.index()] = true;
                out.push(n);
                frontier.push_back((n, d + 1));
            }
        }
    }
    out
}

/// Produces cumulative snapshot node sets for the growth study (Fig. 12–13).
///
/// Nodes are assumed to carry an implicit arrival order (our generators
/// create them chronologically); snapshot `i` is the prefix containing
/// `fractions[i]` of all nodes.
#[derive(Clone, Debug)]
pub struct GrowthSchedule {
    /// Monotone fractions in `(0, 1]`, one per snapshot.
    pub fractions: Vec<f64>,
}

impl GrowthSchedule {
    /// The paper's five-snapshot schedule, sized so later snapshots grow by
    /// roughly the BibNet factors (snapshot 5 ≈ 7× snapshot 1).
    pub fn paper_default() -> Self {
        Self {
            fractions: vec![0.135, 0.24, 0.41, 0.74, 1.0],
        }
    }

    /// Build all snapshots of `g` as induced prefix subgraphs.
    pub fn snapshots(&self, g: &Graph) -> Vec<Subgraph> {
        assert!(
            self.fractions.windows(2).all(|w| w[0] < w[1]),
            "fractions must be strictly increasing"
        );
        assert!(
            self.fractions.iter().all(|&f| f > 0.0 && f <= 1.0),
            "fractions must lie in (0, 1]"
        );
        self.fractions
            .iter()
            .map(|&f| {
                let k = ((g.node_count() as f64) * f).round().max(1.0) as usize;
                let keep: Vec<NodeId> =
                    (0..k.min(g.node_count())).map(NodeId::from_index).collect();
                Subgraph::induce(g, &keep)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::fig2_toy;

    #[test]
    fn induce_keeps_internal_edges_only() {
        let (g, ids) = fig2_toy();
        // Keep t1 and its papers p1..p5: edges t1<->p_i survive, paper<->venue don't.
        let mut keep = vec![ids.t1];
        keep.extend(ids.p.iter().take(5).copied());
        let sub = Subgraph::induce(&g, &keep);
        assert_eq!(sub.graph.node_count(), 6);
        assert_eq!(sub.graph.edge_count(), 10); // 5 undirected edges
    }

    #[test]
    fn induce_renormalizes_rows() {
        let (g, ids) = fig2_toy();
        let keep = vec![ids.t1, ids.p[0], ids.p[1]];
        let sub = Subgraph::induce(&g, &keep);
        let t1 = sub.to_sub(ids.t1).unwrap();
        let probs: Vec<f64> = sub.graph.out_edges(t1).map(|(_, p)| p).collect();
        // t1 kept only 2 of its 5 papers; row renormalizes to 1/2 each.
        assert_eq!(probs.len(), 2);
        assert!(probs.iter().all(|&p| (p - 0.5).abs() < 1e-12));
    }

    #[test]
    fn mapping_roundtrip() {
        let (g, ids) = fig2_toy();
        let keep = vec![ids.v1, ids.v2];
        let sub = Subgraph::induce(&g, &keep);
        for new in sub.graph.nodes() {
            let old = sub.to_parent(new);
            assert_eq!(sub.to_sub(old), Some(new));
        }
        assert_eq!(sub.to_sub(ids.t1), None);
    }

    #[test]
    fn induce_dedups_keep_list() {
        let (g, ids) = fig2_toy();
        let keep = vec![ids.v1, ids.v1, ids.v2];
        let sub = Subgraph::induce(&g, &keep);
        assert_eq!(sub.graph.node_count(), 2);
    }

    #[test]
    fn khop_zero_is_seeds() {
        let (g, ids) = fig2_toy();
        let hood = khop_neighborhood(&g, &[ids.t1], 0);
        assert_eq!(hood, vec![ids.t1]);
    }

    #[test]
    fn khop_expands_by_hops() {
        let (g, ids) = fig2_toy();
        let h1 = khop_neighborhood(&g, &[ids.t1], 1);
        assert_eq!(h1.len(), 6); // t1 + p1..p5
        let h2 = khop_neighborhood(&g, &[ids.t1], 2);
        assert_eq!(h2.len(), 9); // + v1, v2, v3
        let h3 = khop_neighborhood(&g, &[ids.t1], 3);
        assert_eq!(h3.len(), 11); // + p6, p7
        let h4 = khop_neighborhood(&g, &[ids.t1], 4);
        assert_eq!(h4.len(), 12); // + t2 = whole graph
    }

    #[test]
    fn growth_snapshots_are_cumulative() {
        let (g, _) = fig2_toy();
        let snaps = GrowthSchedule::paper_default().snapshots(&g);
        assert_eq!(snaps.len(), 5);
        for w in snaps.windows(2) {
            assert!(w[0].graph.node_count() <= w[1].graph.node_count());
            // Cumulative: earlier snapshot's nodes are a prefix of later's.
            assert!(w[1].graph.node_count() >= w[0].graph.node_count());
        }
        assert_eq!(snaps.last().unwrap().graph.node_count(), g.node_count());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn growth_rejects_non_monotone() {
        let (g, _) = fig2_toy();
        GrowthSchedule {
            fractions: vec![0.5, 0.2],
        }
        .snapshots(&g);
    }
}
