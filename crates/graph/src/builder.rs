//! Mutable edge-list builder producing a frozen [`Graph`].
//!
//! Build-time representation is a plain edge list; [`GraphBuilder::build`]
//! sorts it, merges parallel edges by summing weights (the QLog click counts
//! of Sect. VI are exactly such summed multiplicities), row-normalizes into
//! transition probabilities, and emits the dual-CSR [`Graph`].

use crate::graph::Graph;
use crate::node::{NodeId, NodeTypeId, TypeRegistry};

/// Incrementally constructs a graph; see module docs.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    types: TypeRegistry,
    node_types: Vec<NodeTypeId>,
    labels: Vec<String>,
    edges: Vec<(u32, u32, f64)>,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty builder with node/edge capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            types: TypeRegistry::new(),
            node_types: Vec::with_capacity(nodes),
            labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Register (or look up) a node-type name.
    pub fn register_type(&mut self, name: &str) -> NodeTypeId {
        self.types.register(name)
    }

    /// Read-only access to the type registry being built.
    pub fn types(&self) -> &TypeRegistry {
        &self.types
    }

    /// Add a node of the given type with an empty label.
    pub fn add_node(&mut self, ty: NodeTypeId) -> NodeId {
        self.add_labeled_node(ty, "")
    }

    /// Add a node of the given type with a human-readable label
    /// (used by the illustrative-ranking outputs, paper Figs. 6–7).
    pub fn add_labeled_node(&mut self, ty: NodeTypeId, label: &str) -> NodeId {
        assert!(ty.index() < self.types.len().max(1), "unregistered type");
        let id = NodeId::from_index(self.node_types.len());
        self.node_types.push(ty);
        self.labels.push(label.to_owned());
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_types.len()
    }

    /// Number of directed edge records added so far (before merging).
    pub fn edge_record_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed edge `src -> dst` with positive weight.
    ///
    /// Parallel edges are allowed and merged (weights summed) at build time.
    /// Self-loops are allowed; the paper's toy example has none but nothing
    /// in the model forbids them.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "edge weight must be positive and finite, got {weight}"
        );
        assert!(src.index() < self.node_types.len(), "unknown source node");
        assert!(dst.index() < self.node_types.len(), "unknown target node");
        self.edges.push((src.0, dst.0, weight));
    }

    /// Add an undirected edge: per the paper (Sect. I), "an undirected edge
    /// is treated as bidirectional", i.e. two directed edges of equal weight.
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId, weight: f64) {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight);
    }

    /// Freeze into an immutable dual-CSR [`Graph`].
    ///
    /// Runs in `O(E log E)` for the sort plus `O(V + E)` assembly.
    pub fn build(mut self) -> Graph {
        let n = self.node_types.len();
        // Sort by (src, dst) so duplicates are adjacent and rows contiguous.
        self.edges.sort_unstable_by_key(|a| (a.0, a.1));

        // Merge parallel edges.
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(self.edges.len());
        for &(s, d, w) in &self.edges {
            match merged.last_mut() {
                Some(last) if last.0 == s && last.1 == d => last.2 += w,
                _ => merged.push((s, d, w)),
            }
        }
        drop(self.edges);

        // Forward CSR.
        let m = merged.len();
        let mut out_offsets = vec![0usize; n + 1];
        for &(s, _, _) in &merged {
            out_offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        for &(_, d, w) in &merged {
            out_targets.push(NodeId(d));
            out_weights.push(w);
        }

        // Row-normalize weights into transition probabilities.
        let mut out_probs = vec![0.0f64; m];
        let mut weighted_out_degree = vec![0.0f64; n];
        for v in 0..n {
            let (lo, hi) = (out_offsets[v], out_offsets[v + 1]);
            let total: f64 = out_weights[lo..hi].iter().sum();
            weighted_out_degree[v] = total;
            if total > 0.0 {
                for e in lo..hi {
                    out_probs[e] = out_weights[e] / total;
                }
            }
        }

        // Mirrored (in-edge) CSR, carrying the *source-row* probability
        // M[src][dst] that F-Rank's Eq. 5 needs.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, d, _) in &merged {
            in_offsets[d as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); m];
        let mut in_probs = vec![0.0f64; m];
        for (e, &(s, d, _)) in merged.iter().enumerate() {
            let slot = cursor[d as usize];
            in_sources[slot] = NodeId(s);
            in_probs[slot] = out_probs[e];
            cursor[d as usize] += 1;
        }

        Graph::from_parts(
            self.types,
            self.node_types,
            self.labels,
            out_offsets,
            out_targets,
            out_weights,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
            weighted_out_degree,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("node");
        let nodes: Vec<_> = (0..4).map(|_| b.add_node(ty)).collect();
        b.add_edge(nodes[0], nodes[1], 1.0);
        b.add_edge(nodes[0], nodes[2], 3.0);
        b.add_edge(nodes[1], nodes[2], 2.0);
        b.add_undirected_edge(nodes[2], nodes[3], 5.0);
        (b.build(), nodes)
    }

    #[test]
    fn build_counts() {
        let (g, _) = tiny();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5); // 3 directed + 1 undirected (=2)
    }

    #[test]
    fn out_probabilities_are_weight_normalized() {
        let (g, n) = tiny();
        let edges: Vec<_> = g.out_edges(n[0]).collect();
        assert_eq!(edges.len(), 2);
        // weights 1.0 and 3.0 -> probs 0.25 and 0.75 in dst order (n1 < n2)
        assert_eq!(edges[0].0, n[1]);
        assert!((edges[0].1 - 0.25).abs() < 1e-12);
        assert_eq!(edges[1].0, n[2]);
        assert!((edges[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_merge_by_summed_weight() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let a = b.add_node(ty);
        let c = b.add_node(ty);
        let d = b.add_node(ty);
        // Two click records phrase->url, as in QLog edge weighting.
        b.add_edge(a, c, 1.0);
        b.add_edge(a, c, 1.0);
        b.add_edge(a, d, 2.0);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        let probs: Vec<f64> = g.out_edges(a).map(|(_, p)| p).collect();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_edges_mirror_out_probabilities() {
        let (g, n) = tiny();
        // in-edges of n2: from n0 (prob .75), n1 (prob 1.0), n3 (prob 1.0)
        let ins: Vec<_> = g.in_edges(n[2]).collect();
        assert_eq!(ins.len(), 3);
        let from0 = ins.iter().find(|(s, _)| *s == n[0]).unwrap();
        assert!((from0.1 - 0.75).abs() < 1e-12);
        let from3 = ins.iter().find(|(s, _)| *s == n[3]).unwrap();
        assert!((from3.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dangling_node_has_no_out_edges() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let a = b.add_node(ty);
        let c = b.add_node(ty);
        b.add_edge(a, c, 1.0);
        let g = b.build();
        assert_eq!(g.out_degree(c), 0);
        assert!(g.is_dangling(c));
        assert!(!g.is_dangling(a));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let a = b.add_node(ty);
        let c = b.add_node(ty);
        b.add_edge(a, c, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown target")]
    fn edge_to_unknown_node_rejected() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let a = b.add_node(ty);
        b.add_edge(a, NodeId(99), 1.0);
    }

    #[test]
    fn self_loop_allowed_and_normalized() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let a = b.add_node(ty);
        let c = b.add_node(ty);
        b.add_edge(a, a, 1.0);
        b.add_edge(a, c, 1.0);
        let g = b.build();
        let probs: Vec<f64> = g.out_edges(a).map(|(_, p)| p).collect();
        assert_eq!(probs.len(), 2);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_survive_build() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("venue");
        let v = b.add_labeled_node(ty, "VLDB");
        let g = b.build();
        assert_eq!(g.label(v), "VLDB");
    }
}
