//! Degree statistics and power-law accounting.
//!
//! The paper's active-set growth analysis (Sect. V-B1) models the average
//! degree by the densification power law of Leskovec et al. \[21\]:
//! `D̄ ≈ c·|V|^(a-1)` with `1 < a < 2`. [`DegreeStats`] summarizes a graph and
//! [`fit_densification`] estimates `(c, a)` from a series of growing
//! snapshots, which the Fig. 13 reproduction reports alongside the measured
//! growth rates.

use crate::graph::Graph;

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Average out-degree `|E| / |V|`.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Fraction of dangling (zero out-degree) nodes.
    pub dangling_fraction: f64,
}

impl DegreeStats {
    /// Compute statistics for a graph.
    pub fn of(g: &Graph) -> Self {
        let n = g.node_count();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut dangling = 0usize;
        for v in g.nodes() {
            let od = g.out_degree(v);
            max_out = max_out.max(od);
            max_in = max_in.max(g.in_degree(v));
            if od == 0 {
                dangling += 1;
            }
        }
        DegreeStats {
            nodes: n,
            edges: g.edge_count(),
            avg_degree: g.average_degree(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            dangling_fraction: if n == 0 {
                0.0
            } else {
                dangling as f64 / n as f64
            },
        }
    }
}

/// Least-squares fit of the densification power law `D̄ = c·|V|^(a-1)` in
/// log-log space, given `(|V|, D̄)` pairs from growing snapshots.
///
/// Returns `(c, a)`. Requires at least two distinct `|V|` values.
pub fn fit_densification(points: &[(usize, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two snapshots to fit");
    let xs: Vec<f64> = points.iter().map(|&(v, _)| (v as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, d)| d.ln()).collect();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "snapshots must have distinct node counts");
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx; // = a - 1
    let intercept = my - slope * mx; // = ln c
    (intercept.exp(), slope + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::toy::fig2_toy;

    #[test]
    fn stats_of_toy() {
        let (g, _) = fig2_toy();
        let s = DegreeStats::of(&g);
        assert_eq!(s.nodes, 12);
        assert_eq!(s.edges, 28);
        assert_eq!(s.max_out_degree, 5); // t1
        assert_eq!(s.dangling_fraction, 0.0);
        assert!((s.avg_degree - 28.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn stats_counts_dangling() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let a = b.add_node(ty);
        let c = b.add_node(ty);
        b.add_edge(a, c, 1.0);
        let s = DegreeStats::of(&b.build());
        assert!((s.dangling_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn densification_fit_recovers_exact_law() {
        // D = 0.5 * V^0.3  (i.e. c = 0.5, a = 1.3)
        let pts: Vec<(usize, f64)> = [100usize, 1_000, 10_000, 100_000]
            .iter()
            .map(|&v| (v, 0.5 * (v as f64).powf(0.3)))
            .collect();
        let (c, a) = fit_densification(&pts);
        assert!((c - 0.5).abs() < 1e-9, "c = {c}");
        assert!((a - 1.3).abs() < 1e-9, "a = {a}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn densification_needs_two_points() {
        fit_densification(&[(10, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "distinct node counts")]
    fn densification_needs_distinct_sizes() {
        fit_densification(&[(10, 2.0), (10, 3.0)]);
    }
}
