//! Compact binary wire format for shipping node adjacency between the active
//! processor and graph processors (paper Sect. V-B2).
//!
//! A [`NodeBlock`] is everything the active processor needs to add one node
//! to its active set: the node id plus its out- and in-adjacency with
//! transition probabilities. Blocks are encoded little-endian with explicit
//! length prefixes; the format is self-delimiting so multiple blocks can be
//! concatenated into a single response buffer.
//!
//! Layout (all little-endian):
//! ```text
//! u32 node_id
//! u32 out_len   | out_len × (u32 target, f64 prob)
//! u32 in_len    | in_len  × (u32 source, f64 prob)
//! ```

use crate::graph::Graph;
use crate::node::NodeId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One node's adjacency as shipped over the (simulated) network.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeBlock {
    /// The node this block describes.
    pub node: NodeId,
    /// Out-edges `(target, M[node][target])`.
    pub out_edges: Vec<(NodeId, f64)>,
    /// In-edges `(source, M[source][node])`.
    pub in_edges: Vec<(NodeId, f64)>,
}

impl NodeBlock {
    /// Extract the block for `v` from a graph.
    pub fn extract(g: &Graph, v: NodeId) -> Self {
        NodeBlock {
            node: v,
            out_edges: g.out_edges(v).collect(),
            in_edges: g.in_edges(v).collect(),
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + 4 + self.out_edges.len() * 12 + 4 + self.in_edges.len() * 12
    }

    /// Resident bytes of this node in an AP-side active set — the same
    /// quantity [`Graph::node_footprint_bytes`] reports, computed from the
    /// shipped adjacency alone so the active processor can account active-set
    /// sizes (paper Fig. 12) bit-identically to a single-machine run without
    /// holding the graph.
    pub fn footprint_bytes(&self) -> usize {
        use crate::node::NodeTypeId;
        use std::mem::size_of;
        size_of::<NodeId>()
            + size_of::<NodeTypeId>()
            + self.out_edges.len() * (size_of::<NodeId>() + size_of::<f64>())
            + self.in_edges.len() * (size_of::<NodeId>() + size_of::<f64>())
    }

    /// Append the encoding of this block to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(self.encoded_len());
        buf.put_u32_le(self.node.0);
        buf.put_u32_le(self.out_edges.len() as u32);
        for &(t, p) in &self.out_edges {
            buf.put_u32_le(t.0);
            buf.put_f64_le(p);
        }
        buf.put_u32_le(self.in_edges.len() as u32);
        for &(s, p) in &self.in_edges {
            buf.put_u32_le(s.0);
            buf.put_f64_le(p);
        }
    }

    /// Decode one block from the front of `buf`, advancing it.
    ///
    /// Returns `None` if the buffer is truncated (never panics on short
    /// input — a striped response may legitimately be empty).
    pub fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 8 {
            return None;
        }
        let node = NodeId(buf.get_u32_le());
        let out_len = buf.get_u32_le() as usize;
        if buf.remaining() < out_len * 12 + 4 {
            return None;
        }
        let mut out_edges = Vec::with_capacity(out_len);
        for _ in 0..out_len {
            let t = NodeId(buf.get_u32_le());
            let p = buf.get_f64_le();
            out_edges.push((t, p));
        }
        let in_len = buf.get_u32_le() as usize;
        if buf.remaining() < in_len * 12 {
            return None;
        }
        let mut in_edges = Vec::with_capacity(in_len);
        for _ in 0..in_len {
            let s = NodeId(buf.get_u32_le());
            let p = buf.get_f64_le();
            in_edges.push((s, p));
        }
        Some(NodeBlock {
            node,
            out_edges,
            in_edges,
        })
    }

    /// Encode a batch of blocks into one buffer (a GP response payload).
    pub fn encode_batch(blocks: &[NodeBlock]) -> Bytes {
        let total: usize = blocks.iter().map(|b| b.encoded_len()).sum();
        let mut buf = BytesMut::with_capacity(total);
        for b in blocks {
            b.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Decode a whole buffer of concatenated blocks.
    pub fn decode_batch(mut buf: Bytes) -> Vec<NodeBlock> {
        let mut out = Vec::new();
        while let Some(b) = NodeBlock::decode(&mut buf) {
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::fig2_toy;

    #[test]
    fn roundtrip_single_block() {
        let (g, ids) = fig2_toy();
        let block = NodeBlock::extract(&g, ids.v1);
        let mut buf = BytesMut::new();
        block.encode(&mut buf);
        assert_eq!(buf.len(), block.encoded_len());
        let mut bytes = buf.freeze();
        let decoded = NodeBlock::decode(&mut bytes).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn roundtrip_batch() {
        let (g, _) = fig2_toy();
        let blocks: Vec<_> = g.nodes().map(|v| NodeBlock::extract(&g, v)).collect();
        let encoded = NodeBlock::encode_batch(&blocks);
        let decoded = NodeBlock::decode_batch(encoded);
        assert_eq!(decoded, blocks);
    }

    #[test]
    fn truncated_buffer_yields_none() {
        let (g, ids) = fig2_toy();
        let block = NodeBlock::extract(&g, ids.t1);
        let mut buf = BytesMut::new();
        block.encode(&mut buf);
        let full = buf.freeze();
        for cut in [0usize, 3, 7, 9, full.len() - 1] {
            let mut short = full.slice(..cut);
            assert!(NodeBlock::decode(&mut short).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_adjacency_encodes() {
        let block = NodeBlock {
            node: NodeId(7),
            out_edges: vec![],
            in_edges: vec![],
        };
        let mut buf = BytesMut::new();
        block.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(NodeBlock::decode(&mut bytes).unwrap(), block);
    }

    #[test]
    fn encoded_len_matches_paper_style_accounting() {
        let (g, ids) = fig2_toy();
        let block = NodeBlock::extract(&g, ids.v2);
        // v2 has 2 out and 2 in edges: 4 + 4 + 24 + 4 + 24 = 60 bytes.
        assert_eq!(block.encoded_len(), 60);
    }

    #[test]
    fn footprint_matches_graph_accounting() {
        // The AP computes active-set bytes from blocks alone; the number must
        // agree with the graph-side accounting for every node.
        let (g, _) = fig2_toy();
        for v in g.nodes() {
            let block = NodeBlock::extract(&g, v);
            assert_eq!(block.footprint_bytes(), g.node_footprint_bytes(v));
        }
    }

    #[test]
    fn probabilities_roundtrip_bit_exact() {
        // Transition probabilities must survive the wire without any loss —
        // the AP's bounds math is exact-arithmetic-sensitive. Exercise
        // awkward f64s: subnormal, negative zero, ulp-separated values.
        let probs = [
            f64::MIN_POSITIVE / 4.0, // subnormal
            -0.0,
            1.0,
            1.0 - f64::EPSILON,
            0.1 + 0.2, // 0.30000000000000004
            f64::MAX,
        ];
        let block = NodeBlock {
            node: NodeId(u32::MAX),
            out_edges: probs
                .iter()
                .enumerate()
                .map(|(i, &p)| (NodeId(i as u32), p))
                .collect(),
            in_edges: vec![],
        };
        let mut buf = BytesMut::new();
        block.encode(&mut buf);
        let mut bytes = buf.freeze();
        let decoded = NodeBlock::decode(&mut bytes).unwrap();
        for ((_, want), (_, got)) in block.out_edges.iter().zip(&decoded.out_edges) {
            assert_eq!(want.to_bits(), got.to_bits(), "{want} mangled to {got}");
        }
        assert_eq!(decoded.node, NodeId(u32::MAX));
    }

    #[test]
    fn truncation_sweep_never_panics() {
        // Every possible cut point must yield a clean None, not a panic —
        // a GP response can be split anywhere by a transport layer.
        let (g, _) = fig2_toy();
        let blocks: Vec<_> = g.nodes().map(|v| NodeBlock::extract(&g, v)).collect();
        let full = NodeBlock::encode_batch(&blocks);
        for cut in 0..full.len() {
            let mut short = full.slice(..cut);
            let decoded = NodeBlock::decode_batch(short.clone());
            assert!(decoded.len() <= blocks.len());
            // Manual decode loop must stop without consuming garbage.
            while NodeBlock::decode(&mut short).is_some() {}
        }
    }

    #[test]
    fn batch_with_interleaved_empty_blocks() {
        let blocks = vec![
            NodeBlock {
                node: NodeId(0),
                out_edges: vec![],
                in_edges: vec![],
            },
            NodeBlock {
                node: NodeId(1),
                out_edges: vec![(NodeId(0), 0.5), (NodeId(2), 0.5)],
                in_edges: vec![(NodeId(2), 1.0)],
            },
            NodeBlock {
                node: NodeId(2),
                out_edges: vec![],
                in_edges: vec![],
            },
        ];
        let decoded = NodeBlock::decode_batch(NodeBlock::encode_batch(&blocks));
        assert_eq!(decoded, blocks);
    }

    #[test]
    fn batch_encoding_is_deterministic() {
        // Same blocks → same bytes, so GP responses are replayable and the
        // metered transfer volumes of Fig. 12 are reproducible.
        let (g, _) = fig2_toy();
        let blocks: Vec<_> = g.nodes().map(|v| NodeBlock::extract(&g, v)).collect();
        assert_eq!(
            NodeBlock::encode_batch(&blocks),
            NodeBlock::encode_batch(&blocks)
        );
    }
}
