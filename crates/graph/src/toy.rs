//! The paper's running toy example (Fig. 2): a tiny bibliographic network
//! with two terms, seven papers and three venues.
//!
//! Exposed publicly because the core crate's exact round-trip enumeration
//! (paper Fig. 4) and several integration tests validate against the numbers
//! the paper computes by hand on this graph.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::node::NodeId;

/// Node handles for the Fig. 2 toy graph.
pub struct Fig2Ids {
    /// Query term `t1` ("spatio").
    pub t1: NodeId,
    /// Off-topic term `t2` ("transaction").
    pub t2: NodeId,
    /// Papers `p1..p7` (index 0 = p1).
    pub p: Vec<NodeId>,
    /// Venue `v1`: important but unspecific (accepts p1, p2, p6, p7).
    pub v1: NodeId,
    /// Venue `v2`: balanced (accepts p3, p4 — both on-topic).
    pub v2: NodeId,
    /// Venue `v3`: specific but less important (accepts p5 only).
    pub v3: NodeId,
}

/// Build the toy bibliographic network of paper Fig. 2.
///
/// All edges are undirected with weight 1, matching the paper's by-hand
/// round-trip probabilities in Fig. 4 (e.g.
/// `p(t1→p1→v1→p1→t1) = 1/5 · 1/2 · 1/4 · 1/2 = 0.0125`).
pub fn fig2_toy() -> (Graph, Fig2Ids) {
    let mut b = GraphBuilder::new();
    let term = b.register_type("term");
    let paper = b.register_type("paper");
    let venue = b.register_type("venue");
    let t1 = b.add_labeled_node(term, "t1:spatio");
    let t2 = b.add_labeled_node(term, "t2:transaction");
    let p: Vec<_> = (1..=7)
        .map(|i| b.add_labeled_node(paper, &format!("p{i}")))
        .collect();
    let v1 = b.add_labeled_node(venue, "v1:VLDB-like");
    let v2 = b.add_labeled_node(venue, "v2:ACM-GIS-like");
    let v3 = b.add_labeled_node(venue, "v3:STDB-like");
    // t1 connects to p1..p5 (papers about t1).
    for paper_node in p.iter().take(5) {
        b.add_undirected_edge(t1, *paper_node, 1.0);
    }
    // t2 connects to p6, p7 (off-topic papers).
    b.add_undirected_edge(t2, p[5], 1.0);
    b.add_undirected_edge(t2, p[6], 1.0);
    // v1 accepts p1, p2 (on-topic) plus p6, p7 (off-topic).
    for &i in &[0usize, 1, 5, 6] {
        b.add_undirected_edge(v1, p[i], 1.0);
    }
    // v2 accepts p3, p4 (on-topic only).
    b.add_undirected_edge(v2, p[2], 1.0);
    b.add_undirected_edge(v2, p[3], 1.0);
    // v3 accepts p5 only.
    b.add_undirected_edge(v3, p[4], 1.0);
    let ids = Fig2Ids {
        t1,
        t2,
        p,
        v1,
        v2,
        v3,
    };
    (b.build(), ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_is_strongly_connected_ranking_component() {
        let (g, ids) = fig2_toy();
        assert_eq!(g.node_count(), 12);
        // Every node reaches t1 and is reached from t1 (all edges undirected).
        assert!(!g.is_dangling(ids.v3));
    }

    #[test]
    fn toy_paper_degrees() {
        let (g, ids) = fig2_toy();
        assert_eq!(g.out_degree(ids.t1), 5);
        assert_eq!(g.out_degree(ids.p[0]), 2);
        assert_eq!(g.out_degree(ids.v1), 4);
        assert_eq!(g.out_degree(ids.v2), 2);
        assert_eq!(g.out_degree(ids.v3), 1);
    }
}
