//! Strongly-connected components and irreducibility repair.
//!
//! RoundTripRank needs walks both from and to the query; on a graph that is
//! not strongly connected, `t(q,v) = 0` can zero out arbitrarily important
//! nodes. The paper's remedy (Sect. III-B): *"In practice, we can always make
//! a graph irreducible by adding some dummy edges"* (citing Haveliwala \[18\]).
//!
//! [`IrreducibilityRepair`] implements exactly that: it computes the SCC
//! condensation (iterative Tarjan, no recursion so million-node graphs don't
//! blow the stack) and, if there is more than one component, threads a cycle
//! of low-weight dummy edges through representatives of every component,
//! guaranteeing strong connectivity while perturbing transition probabilities
//! by at most the chosen dummy weight fraction.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::node::NodeId;

/// Result of Tarjan's algorithm: a component id per node, components numbered
/// in reverse topological order of the condensation (Tarjan's natural output).
#[derive(Clone, Debug)]
pub struct SccResult {
    /// `comp[v]` = component index of node `v`.
    pub comp: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl SccResult {
    /// Size of each component.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.comp {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Whether the graph is strongly connected (single component) —
    /// "irreducible" in the paper's Markov-chain vocabulary.
    pub fn is_strongly_connected(&self) -> bool {
        self.count <= 1
    }
}

/// Iterative Tarjan SCC over the graph's out-adjacency.
pub fn tarjan_scc(g: &Graph) -> SccResult {
    let n = g.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Explicit DFS frames: (node, next child offset).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let neighbors = g.out_neighbors(NodeId(v));
            if *child < neighbors.len() {
                let w = neighbors[*child].0;
                *child += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is an SCC root: pop its component.
                    loop {
                        // invariant: an SCC root is always on the Tarjan
                        // stack when its component is popped.
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }

    SccResult {
        comp,
        count: comp_count as usize,
    }
}

/// Dummy-edge irreducibility repair (paper Sect. III-B).
#[derive(Clone, Copy, Debug)]
pub struct IrreducibilityRepair {
    /// Weight of each dummy edge as a *fraction of the source node's current
    /// weighted out-degree* (or this absolute value if the node is dangling).
    /// Small values keep the ranking perturbation negligible; the paper's
    /// rankings are reported stable for a wide range of damping, so the
    /// default of 1e-3 is safely below measurement noise.
    pub dummy_weight_fraction: f64,
}

impl Default for IrreducibilityRepair {
    fn default() -> Self {
        Self {
            dummy_weight_fraction: 1e-3,
        }
    }
}

impl IrreducibilityRepair {
    /// Repair `g` into a strongly connected graph.
    ///
    /// Picks one representative node per SCC and threads dummy edges
    /// `rep[0] -> rep[1] -> ... -> rep[k-1] -> rep[0]`. Any directed cycle
    /// through all components of the condensation makes the union strongly
    /// connected. Returns the repaired graph and the number of dummy edges
    /// added (0 if already irreducible — in that case the graph is rebuilt
    /// unchanged).
    pub fn repair(&self, g: &Graph) -> (Graph, usize) {
        let scc = tarjan_scc(g);
        if scc.is_strongly_connected() {
            return (g.clone(), 0);
        }
        // Representative = first node seen per component.
        let mut rep: Vec<Option<NodeId>> = vec![None; scc.count];
        for v in g.nodes() {
            let c = scc.comp[v.index()] as usize;
            if rep[c].is_none() {
                rep[c] = Some(v);
            }
        }
        // invariant: comp ids are dense — every component indexed by
        // comp[] contains at least the node that named it.
        let reps: Vec<NodeId> = rep.into_iter().map(|r| r.expect("non-empty SCC")).collect();

        // Rebuild through a builder, re-adding all original raw weights.
        let mut b = GraphBuilder::with_capacity(g.node_count(), g.edge_count() + reps.len());
        for (_, name) in g.types().iter() {
            b.register_type(name);
        }
        for v in g.nodes() {
            b.add_labeled_node(g.node_type(v), g.label(v));
        }
        for v in g.nodes() {
            for (d, w) in g.out_edges_weighted(v) {
                b.add_edge(v, d, w);
            }
        }
        let mut added = 0usize;
        for i in 0..reps.len() {
            let src = reps[i];
            let dst = reps[(i + 1) % reps.len()];
            if src == dst {
                continue;
            }
            let base = g.weighted_out_degree(src);
            let w = if base > 0.0 {
                base * self.dummy_weight_fraction
            } else {
                self.dummy_weight_fraction
            };
            b.add_edge(src, dst, w);
            added += 1;
        }
        (b.build(), added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::toy::fig2_toy;

    fn line_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let nodes: Vec<_> = (0..n).map(|_| b.add_node(ty)).collect();
        for i in 0..n - 1 {
            b.add_edge(nodes[i], nodes[i + 1], 1.0);
        }
        b.build()
    }

    #[test]
    fn toy_graph_is_strongly_connected() {
        let (g, _) = fig2_toy();
        let scc = tarjan_scc(&g);
        assert!(scc.is_strongly_connected(), "{} components", scc.count);
    }

    #[test]
    fn line_graph_has_n_components() {
        let g = line_graph(5);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count, 5);
        assert_eq!(scc.component_sizes(), vec![1; 5]);
    }

    #[test]
    fn two_cycles_bridged_one_way() {
        // cycle {0,1} -> cycle {2,3}: two SCCs.
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let n: Vec<_> = (0..4).map(|_| b.add_node(ty)).collect();
        b.add_edge(n[0], n[1], 1.0);
        b.add_edge(n[1], n[0], 1.0);
        b.add_edge(n[2], n[3], 1.0);
        b.add_edge(n[3], n[2], 1.0);
        b.add_edge(n[1], n[2], 1.0);
        let g = b.build();
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count, 2);
        // Same component for 0,1 and for 2,3.
        assert_eq!(scc.comp[0], scc.comp[1]);
        assert_eq!(scc.comp[2], scc.comp[3]);
        assert_ne!(scc.comp[0], scc.comp[2]);
    }

    #[test]
    fn repair_makes_line_strongly_connected() {
        let g = line_graph(6);
        let (fixed, added) = IrreducibilityRepair::default().repair(&g);
        assert!(added > 0);
        let scc = tarjan_scc(&fixed);
        assert!(scc.is_strongly_connected());
        assert_eq!(fixed.node_count(), g.node_count());
    }

    #[test]
    fn repair_noop_on_connected_graph() {
        let (g, _) = fig2_toy();
        let (fixed, added) = IrreducibilityRepair::default().repair(&g);
        assert_eq!(added, 0);
        assert_eq!(fixed.edge_count(), g.edge_count());
    }

    #[test]
    fn repair_preserves_ranking_scale() {
        // Dummy edges must perturb transition rows only slightly.
        let g = line_graph(4);
        let (fixed, _) = IrreducibilityRepair::default().repair(&g);
        let n0 = NodeId(0);
        // Node 0's original single edge keeps nearly all its mass.
        let main_prob = fixed
            .out_edges(n0)
            .find(|(d, _)| *d == NodeId(1))
            .map(|(_, p)| p);
        if let Some(p) = main_prob {
            assert!(p > 0.99, "main edge prob diluted to {p}");
        }
    }

    #[test]
    fn repair_handles_dangling_nodes() {
        let g = line_graph(3); // node 2 dangling
        assert!(g.is_dangling(NodeId(2)));
        let (fixed, _) = IrreducibilityRepair::default().repair(&g);
        for v in fixed.nodes() {
            assert!(!fixed.is_dangling(v), "{v:?} still dangling");
        }
    }

    #[test]
    fn empty_graph_scc() {
        let b = GraphBuilder::new();
        let g = b.build();
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count, 0);
        assert!(scc.is_strongly_connected());
    }

    #[test]
    fn singleton_self_loop() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let v = b.add_node(ty);
        b.add_edge(v, v, 1.0);
        let scc = tarjan_scc(&b.build());
        assert_eq!(scc.count, 1);
    }

    #[test]
    fn figure_eight_is_one_component() {
        // Two cycles sharing node 0: {0,1,2} and {0,3,4}. Every node reaches
        // every other through the shared waist, so one SCC.
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let n: Vec<_> = (0..5).map(|_| b.add_node(ty)).collect();
        for &(s, d) in &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)] {
            b.add_edge(n[s], n[d], 1.0);
        }
        let scc = tarjan_scc(&b.build());
        assert_eq!(scc.count, 1);
    }

    #[test]
    fn condensation_is_reverse_topological() {
        // Chain of three 2-cycles: {0,1} -> {2,3} -> {4,5}. Tarjan numbers
        // components in reverse topological order of the condensation, so
        // every edge crossing components must go from a higher component id
        // to a lower one.
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let n: Vec<_> = (0..6).map(|_| b.add_node(ty)).collect();
        for &(s, d) in &[
            (0, 1),
            (1, 0),
            (2, 3),
            (3, 2),
            (4, 5),
            (5, 4),
            (1, 2),
            (3, 4),
        ] {
            b.add_edge(n[s], n[d], 1.0);
        }
        let g = b.build();
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count, 3);
        for v in g.nodes() {
            for (d, _) in g.out_edges(v) {
                let (cs, cd) = (scc.comp[v.index()], scc.comp[d.index()]);
                assert!(cs >= cd, "edge {v:?}->{d:?} goes {cs} -> {cd}");
            }
        }
    }

    #[test]
    fn deep_line_does_not_overflow_stack() {
        // The iterative Tarjan must survive a DFS path the recursive version
        // could not (100k frames would overflow a default thread stack).
        let g = line_graph(100_000);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count, 100_000);
        let (fixed, added) = IrreducibilityRepair::default().repair(&g);
        assert!(added > 0);
        assert!(tarjan_scc(&fixed).is_strongly_connected());
    }

    #[test]
    fn isolated_nodes_each_their_own_component() {
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        for _ in 0..4 {
            b.add_node(ty);
        }
        let scc = tarjan_scc(&b.build());
        assert_eq!(scc.count, 4);
        assert_eq!(scc.component_sizes(), vec![1; 4]);
    }
}
