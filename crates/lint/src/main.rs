//! `rtr-lint`: workspace invariant linter. See `lib.rs` for the checks.

fn main() {
    std::process::exit(rtr_lint::run(std::path::Path::new(".")));
}
