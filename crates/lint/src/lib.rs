#![deny(missing_docs)]
//! # rtr-lint — workspace invariant linter
//!
//! Syn-free, line/token-level checks over the workspace source tree,
//! run as a blocking CI step next to fmt and clippy
//! (`cargo run -p rtr-lint`). The rules encode invariants the compiler
//! cannot see:
//!
//! 1. **ordering-comment** — every atomic `Ordering::` use in a `src/`
//!    tree carries an adjacent `// ordering:` comment naming why that
//!    ordering is correct (same line or within the 4 preceding lines).
//! 2. **invariant-expect** — no `unwrap()`/`expect()` in non-test
//!    library code of serve/cache/distributed/obs/graph/core unless
//!    documented with an adjacent `// invariant:` comment. Bench
//!    binaries and test modules are exempt.
//! 3. **hot-path-collections** — no `std` `HashMap`/`HashSet` in the
//!    per-query compute layer (core/topk/graph src): the PR-2
//!    regression class that `SparseMap` exists to prevent.
//! 4. **missing-docs-attr** — every first-party library crate root
//!    carries `#![deny(missing_docs)]`.
//! 5. **shim-parity** — every `pub` item the vendored `loom-shim`
//!    exports is actually referenced somewhere in the workspace; dead
//!    shim surface must be deleted (escape hatch:
//!    `// lint: allow(unused-shim)` on the line above a deliberate
//!    implicit-only export).
//!
//! Every rule works on `(path, lines)` pairs so the unit tests can feed
//! seeded in-memory violations without touching the real tree.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a file location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 for whole-file rules).
    pub line: usize,
    /// Stable rule identifier (e.g. `ordering-comment`).
    pub rule: &'static str,
    /// Human-readable explanation with the offending token.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rtr-lint: {}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Crates whose non-test library code must justify every
/// `unwrap()`/`expect()` with an `// invariant:` comment. `bench`,
/// `datagen`, `eval` and the test/lint crates are deliberately absent —
/// the allowlist for harness code the issue carves out.
pub const EXPECT_CRATES: &[&str] = &[
    "serve",
    "cache",
    "distributed",
    "obs",
    "graph",
    "core",
    "net",
];

/// Crates whose src trees form the per-query hot path where `std`
/// hash collections are banned in favor of `SparseMap`/dense layouts.
pub const HOT_PATH_CRATES: &[&str] = &["core", "topk", "graph"];

/// How many preceding lines an `// ordering:` / `// invariant:` marker
/// may sit above its annotated line (multi-line comments included).
pub const MARKER_WINDOW: usize = 4;

const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#!")
}

/// `true` when `marker` appears on `lines[i]` or within the
/// [`MARKER_WINDOW`] lines above it.
fn has_adjacent_marker(lines: &[&str], i: usize, marker: &str) -> bool {
    let lo = i.saturating_sub(MARKER_WINDOW);
    lines[lo..=i].iter().any(|l| l.contains(marker))
}

/// Per-line mask of `#[cfg(test)]` items (gated modules/functions),
/// computed by brace tracking from each `#[cfg(test)]` attribute to the
/// close of the item it gates.
pub fn test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            let mut depth: i64 = 0;
            let mut started = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for c in lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            started = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if started && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Rule 1: atomic `Ordering::` uses need an adjacent `// ordering:`
/// comment. Applies to every line of a src file, inline test modules
/// included — memory-ordering reasoning is documented everywhere.
pub fn check_ordering_comments(file: &str, lines: &[&str], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        if !ATOMIC_ORDERINGS.iter().any(|o| line.contains(o)) {
            continue;
        }
        if !has_adjacent_marker(lines, i, "ordering:") {
            out.push(Violation {
                file: file.to_owned(),
                line: i + 1,
                rule: "ordering-comment",
                msg: format!(
                    "atomic Ordering:: use without an `// ordering:` comment \
                     within {MARKER_WINDOW} lines: `{}`",
                    line.trim()
                ),
            });
        }
    }
}

/// Rule 2: `unwrap()`/`expect()` in non-test library code needs an
/// adjacent `// invariant:` comment stating why it cannot fire.
pub fn check_invariant_expects(file: &str, lines: &[&str], out: &mut Vec<Violation>) {
    let mask = test_mask(lines);
    for (i, line) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(line) {
            continue;
        }
        if !line.contains(".unwrap()") && !line.contains(".expect(") {
            continue;
        }
        if !has_adjacent_marker(lines, i, "invariant:") {
            out.push(Violation {
                file: file.to_owned(),
                line: i + 1,
                rule: "invariant-expect",
                msg: format!(
                    "unwrap/expect in library code without an `// invariant:` \
                     comment within {MARKER_WINDOW} lines: `{}`",
                    line.trim()
                ),
            });
        }
    }
}

/// Rule 3: `HashMap`/`HashSet` are banned in hot-path (per-query
/// compute) modules outside test code — use `SparseMap` or dense
/// layouts instead.
pub fn check_hot_path_collections(file: &str, lines: &[&str], out: &mut Vec<Violation>) {
    let mask = test_mask(lines);
    for (i, line) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(line) {
            continue;
        }
        for banned in ["HashMap", "HashSet"] {
            if token_in_line(line, banned) {
                out.push(Violation {
                    file: file.to_owned(),
                    line: i + 1,
                    rule: "hot-path-collections",
                    msg: format!(
                        "{banned} in a hot-path module (use SparseMap or a \
                         dense layout): `{}`",
                        line.trim()
                    ),
                });
            }
        }
    }
}

/// Rule 4: a library crate root must carry `#![deny(missing_docs)]`.
pub fn check_missing_docs_attr(file: &str, lines: &[&str], out: &mut Vec<Violation>) {
    if !lines.iter().any(|l| l.contains("#![deny(missing_docs)]")) {
        out.push(Violation {
            file: file.to_owned(),
            line: 1,
            rule: "missing-docs-attr",
            msg: "library crate root lacks `#![deny(missing_docs)]`".to_owned(),
        });
    }
}

/// `true` when `name` appears in `line` as a standalone token (not as a
/// substring of a longer identifier).
fn token_in_line(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let pre_ok = start == 0 || {
            let c = bytes[start - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let post_ok = end >= bytes.len() || {
            let c = bytes[end] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// A `pub` name exported by the vendored shim, with its declaration
/// site and whether it carries the `// lint: allow(unused-shim)`
/// escape.
#[derive(Debug, Clone)]
pub struct ShimExport {
    /// The exported identifier.
    pub name: String,
    /// File it was collected from.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    /// `true` when the declaration (or the line above it) opts out of
    /// the parity check.
    pub allowed: bool,
}

/// Collect the shim's exported names from its source lines: leaf names
/// of every `pub use …;` plus column-0 `pub fn`/`pub struct`/`pub enum`
/// declarations. Items inside `mod checked` duplicate the re-exported
/// names, so per-name de-duplication happens in the caller.
pub fn collect_shim_exports(file: &str, lines: &[&str], out: &mut Vec<ShimExport>) {
    for (i, line) in lines.iter().enumerate() {
        let allowed = line.contains("lint: allow(unused-shim)")
            || (i > 0 && lines[i - 1].contains("lint: allow(unused-shim)"));
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("pub use ") {
            let rest = rest.trim_end_matches([';', ' ']);
            // `a::b::{X, Y}` → X, Y; `a::b::C` → C; skip globs/self.
            let leaves: Vec<&str> = if let Some(open) = rest.find('{') {
                rest[open + 1..rest.rfind('}').unwrap_or(rest.len())]
                    .split(',')
                    .map(str::trim)
                    .collect()
            } else {
                vec![rest.rsplit("::").next().unwrap_or(rest)]
            };
            for leaf in leaves {
                // `x as Alias` exports the alias name.
                let name = leaf.rsplit(" as ").next().unwrap_or(leaf).trim();
                if name.is_empty() || name == "self" || name == "*" || name.starts_with('$') {
                    continue;
                }
                out.push(ShimExport {
                    name: name.to_owned(),
                    file: file.to_owned(),
                    line: i + 1,
                    allowed,
                });
            }
        } else if !line.starts_with(' ') && !line.starts_with('\t') {
            for prefix in [
                "pub fn ",
                "pub struct ",
                "pub enum ",
                "pub trait ",
                "pub const ",
            ] {
                if let Some(rest) = t.strip_prefix(prefix) {
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        out.push(ShimExport {
                            name,
                            file: file.to_owned(),
                            line: i + 1,
                            allowed,
                        });
                    }
                }
            }
        }
    }
}

/// Rule 5: every shim export must be referenced (as a token, outside
/// comments) somewhere in the usage corpus. `exports` come from
/// [`collect_shim_exports`]; `corpus` is `(path, contents)` of every
/// workspace file allowed to count as usage.
pub fn check_shim_parity(
    exports: &[ShimExport],
    corpus: &[(String, String)],
    out: &mut Vec<Violation>,
) {
    let mut seen: Vec<&str> = Vec::new();
    for e in exports {
        if seen.contains(&e.name.as_str()) {
            continue;
        }
        seen.push(&e.name);
        if exports.iter().any(|x| x.name == e.name && x.allowed) {
            continue;
        }
        let used = corpus.iter().any(|(_, content)| {
            content
                .lines()
                .any(|l| !is_comment_line(l) && token_in_line(l, &e.name))
        });
        if !used {
            out.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: "shim-parity",
                msg: format!(
                    "shim export `{}` is unused by the workspace — delete it \
                     or annotate with `// lint: allow(unused-shim)`",
                    e.name
                ),
            });
        }
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned()
}

fn read(path: &Path) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

/// First-party library crate roots that must deny missing docs: every
/// `crates/*/src/lib.rs` plus the vendored shim (third-party vendor
/// stand-ins keep their upstream doc posture).
fn doc_lib_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            let lib = d.join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    let shim = root.join("vendor/loom-shim/src/lib.rs");
    if shim.is_file() {
        roots.push(shim);
    }
    roots
}

/// Run every rule over the tree rooted at `root`, print violations to
/// stdout, and return the process exit code (0 clean, 1 violations,
/// 2 tree unreadable).
pub fn run(root: &Path) -> i32 {
    let mut violations = Vec::new();

    // Rules 1–3 over the src trees.
    let mut src_files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in &dirs {
            walk_rs(&d.join("src"), &mut src_files);
        }
    }
    for v in ["loom-shim", "crossbeam"] {
        walk_rs(&root.join("vendor").join(v).join("src"), &mut src_files);
    }
    if src_files.is_empty() {
        eprintln!("rtr-lint: no source files found under {}", root.display());
        return 2;
    }
    for path in &src_files {
        let Some(content) = read(path) else { continue };
        let lines: Vec<&str> = content.lines().collect();
        let file = rel(root, path);
        // The linter's own sources carry the rule patterns as string
        // literals; a line-level scanner cannot tell those from real
        // uses, so the lint crate checks itself via its unit tests.
        if file.starts_with("crates/lint/") {
            continue;
        }
        check_ordering_comments(&file, &lines, &mut violations);
        let in_crates = |set: &[&str]| {
            set.iter()
                .any(|c| file.starts_with(&format!("crates/{c}/src")))
        };
        if in_crates(EXPECT_CRATES) {
            check_invariant_expects(&file, &lines, &mut violations);
        }
        if in_crates(HOT_PATH_CRATES) {
            check_hot_path_collections(&file, &lines, &mut violations);
        }
    }

    // Rule 4 over library crate roots.
    for lib in doc_lib_roots(root) {
        let Some(content) = read(&lib) else { continue };
        let lines: Vec<&str> = content.lines().collect();
        check_missing_docs_attr(&rel(root, &lib), &lines, &mut violations);
    }

    // Rule 5: shim exports vs. the workspace usage corpus (everything
    // under crates/ plus crossbeam's shim-consuming internals and the
    // shim's own contract tests).
    let mut exports = Vec::new();
    let mut shim_src = Vec::new();
    walk_rs(&root.join("vendor/loom-shim/src"), &mut shim_src);
    for path in &shim_src {
        let Some(content) = read(path) else { continue };
        let lines: Vec<&str> = content.lines().collect();
        collect_shim_exports(&rel(root, path), &lines, &mut exports);
    }
    let mut corpus_files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in &dirs {
            walk_rs(d, &mut corpus_files);
        }
    }
    walk_rs(&root.join("vendor/crossbeam/src"), &mut corpus_files);
    walk_rs(&root.join("vendor/loom-shim/tests"), &mut corpus_files);
    let corpus: Vec<(String, String)> = corpus_files
        .iter()
        .filter_map(|p| read(p).map(|c| (rel(root, p), c)))
        .collect();
    check_shim_parity(&exports, &corpus, &mut violations);

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "rtr-lint: clean — {} files checked, {} shim exports verified",
            src_files.len(),
            exports.len()
        );
        0
    } else {
        println!("rtr-lint: {} violation(s)", violations.len());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(s: &str) -> Vec<&str> {
        s.lines().collect()
    }

    #[test]
    fn ordering_without_comment_fails() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Acquire)\n}\n";
        let mut out = Vec::new();
        check_ordering_comments("x.rs", &lines(src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "ordering-comment");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn ordering_with_adjacent_comment_passes() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n    // ordering: Acquire — pairs with the Release store in g().\n    a.load(Ordering::Acquire)\n}\n";
        let mut out = Vec::new();
        check_ordering_comments("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ordering_comment_beyond_window_fails() {
        let src = "// ordering: too far away\n\n\n\n\nlet v = a.load(Ordering::Relaxed);\n";
        let mut out = Vec::new();
        check_ordering_comments("x.rs", &lines(src), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn expect_without_invariant_fails_and_test_code_is_exempt() {
        let src = "pub fn f(m: &Mutex<u32>) -> u32 {\n    *m.lock().expect(\"poisoned\")\n}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        foo().unwrap();\n    }\n}\n";
        let mut out = Vec::new();
        check_invariant_expects("x.rs", &lines(src), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn documented_expect_passes() {
        let src = "pub fn f(m: &Mutex<u32>) -> u32 {\n    // invariant: no user code runs under this lock.\n    *m.lock().expect(\"poisoned\")\n}\n";
        let mut out = Vec::new();
        check_invariant_expects("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hot_path_hashmap_fails_but_comments_and_tests_pass() {
        let src = "use std::collections::HashMap;\n// a HashMap in a comment is fine\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let mut out = Vec::new();
        check_hot_path_collections("x.rs", &lines(src), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn hashmap_substring_of_identifier_is_not_flagged() {
        let src = "struct MyHashMapLike;\nlet x = NotAHashMap2::new();\n";
        let mut out = Vec::new();
        check_hot_path_collections("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_docs_attr_detected() {
        let mut out = Vec::new();
        check_missing_docs_attr("lib.rs", &lines("//! docs\npub fn f() {}\n"), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        check_missing_docs_attr(
            "lib.rs",
            &lines("#![deny(missing_docs)]\n//! docs\n"),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn unused_shim_export_is_flagged_and_allow_escape_works() {
        let shim = "pub use std::sync::{Arc, Mutex};\n// lint: allow(unused-shim)\npub fn internal_only() {}\npub fn dead_fn() {}\n";
        let mut exports = Vec::new();
        collect_shim_exports("shim.rs", &lines(shim), &mut exports);
        let names: Vec<&str> = exports.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["Arc", "Mutex", "internal_only", "dead_fn"]);
        let corpus = vec![(
            "user.rs".to_owned(),
            "use shim::Arc;\nfn f() { let _ = Mutex::new(0); }\n// dead_fn mentioned in a comment only\n"
                .to_owned(),
        )];
        let mut out = Vec::new();
        check_shim_parity(&exports, &corpus, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "shim-parity");
        assert!(out[0].msg.contains("dead_fn"));
    }

    #[test]
    fn pub_use_leaf_and_alias_parsing() {
        let shim = "pub use a::b::Leaf;\npub use c::d as Renamed;\npub use e::{self, X};\n";
        let mut exports = Vec::new();
        collect_shim_exports("shim.rs", &lines(shim), &mut exports);
        let names: Vec<&str> = exports.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["Leaf", "Renamed", "X"]);
    }

    #[test]
    fn run_is_clean_on_this_workspace() {
        // The linter's own acceptance check: the real tree passes.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        assert_eq!(run(&root), 0);
    }
}
