//! Model checks for the network front door's bounded per-connection
//! write queue (`rtr_net::check_api::WriteQueue`) — the protocol behind
//! the PR-10 guarantees:
//!
//! * a push's condvar notify can never be lost (the writer always wakes);
//! * the reserved control lane still admits a rejection while the data
//!   lane is full, so backpressure can always be *reported*;
//! * shutdown drain: after `close`, the writer receives every entry whose
//!   push was accepted — in order — and then terminates. No accepted
//!   request is dropped, in any schedule.

use loom_shim::model::{explore, Config};
use loom_shim::sync::atomic::{AtomicU64, Ordering};
use loom_shim::sync::Arc;
use loom_shim::thread;
use rtr_net::check_api::{PopOutcome, PushOutcome, WriteQueue};

/// Producer pushes, then closes; consumer blocks in `pop`. In every
/// schedule the consumer must receive the entry and then `Drained` —
/// a lost wakeup would deadlock the pop and the checker would flag it.
#[test]
fn push_never_loses_the_writer_wakeup() {
    let report = explore(Config::with_random(10_000, 0x0A10_0001), || {
        let q = Arc::new(WriteQueue::new(4, 1));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                assert_eq!(q.push_data(7u64), PushOutcome::Pushed);
                q.close();
            })
        };
        let mut seen = Vec::new();
        while let PopOutcome::Item(v) = q.pop() {
            seen.push(v);
        }
        assert_eq!(seen, vec![7], "writer must see the accepted entry");
        producer.join().unwrap();
    });
    rtr_check::report("net-queue/no-lost-wakeup", &report);
    assert!(report.dfs_schedules > 1);
    assert!(report.total() >= 10_000, "{} schedules", report.total());
}

/// The error path must not deadlock on the condition it reports: with
/// the data lane full, a rejected data push can always queue its
/// `Overloaded` notice through the reserved control lane.
#[test]
fn control_lane_admits_rejection_while_data_lane_is_full() {
    let report = explore(Config::with_random(10_000, 0x0A10_0002), || {
        let q = Arc::new(WriteQueue::new(1, 1));
        assert_eq!(q.push_data(0u64), PushOutcome::Pushed);
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match q.pop() {
                        PopOutcome::Item(v) => seen.push(v),
                        PopOutcome::Drained => return seen,
                    }
                }
            })
        };
        // Racing the consumer: the second data push sees either a full
        // lane (consumer hasn't popped) or a freed slot. If it is
        // rejected, the control-lane rejection entry must be accepted.
        let rejected = match q.push_data(1u64) {
            PushOutcome::Pushed => false,
            PushOutcome::Rejected => {
                assert_eq!(
                    q.push_control(99u64),
                    PushOutcome::Pushed,
                    "reserved lane must admit the rejection notice"
                );
                true
            }
            PushOutcome::Closed => unreachable!("nobody closed the queue yet"),
        };
        q.close();
        let seen = consumer.join().unwrap();
        if rejected {
            assert_eq!(seen, vec![0, 99]);
        } else {
            assert_eq!(seen, vec![0, 1]);
        }
    });
    rtr_check::report("net-queue/reserved-rejection-lane", &report);
    assert!(report.dfs_schedules > 1);
}

/// Shutdown drain with `close` racing the producer: whatever interleaving
/// occurs, the consumer must receive exactly the accepted pushes, in push
/// order, and then terminate. `Drained` can never overtake an accepted
/// entry, and pushes after close must be refused as `Closed`.
#[test]
fn close_drains_exactly_the_accepted_entries_then_terminates() {
    let report = explore(Config::with_random(10_000, 0x0A10_0003), || {
        let q = Arc::new(WriteQueue::new(2, 1));
        let accepted = Arc::new(AtomicU64::new(0));
        let producer = {
            let q = Arc::clone(&q);
            let accepted = Arc::clone(&accepted);
            thread::spawn(move || {
                for i in 0..3u64 {
                    match q.push_data(i) {
                        PushOutcome::Pushed => {
                            // One bit per entry from a single producer, so
                            // fetch_add is fetch_or here (the shim has no
                            // fetch_or).
                            // ordering: SeqCst — model-only bookkeeping.
                            accepted.fetch_add(1 << i, Ordering::SeqCst);
                        }
                        // Rejected: lane full (consumer slow) — the real
                        // reader sends Overloaded. Closed: shutdown won.
                        PushOutcome::Rejected | PushOutcome::Closed => {}
                    }
                }
            })
        };
        let closer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.close())
        };
        let mut seen = 0u64;
        let mut last: Option<u64> = None;
        while let PopOutcome::Item(v) = q.pop() {
            assert!(last.is_none_or(|p| p < v), "FIFO order violated");
            last = Some(v);
            seen |= 1 << v;
        }
        producer.join().unwrap();
        closer.join().unwrap();
        // ordering: SeqCst — model-only bookkeeping.
        assert_eq!(
            seen,
            accepted.load(Ordering::SeqCst),
            "drain must deliver exactly the accepted entries"
        );
    });
    rtr_check::report("net-queue/shutdown-drain", &report);
    assert!(report.dfs_schedules > 1);
}
