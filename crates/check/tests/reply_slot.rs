//! Model checks for `GpCluster`'s generation-stamped `ReplySlot`: a
//! fetch that errors out early (one GP injected to fail) leaves the
//! other GP's reply in flight as a straggler, and no later fetch through
//! the same slot may ever observe it. Runs the *real* cluster — GP
//! threads, channels and all — inside the schedule explorer.

use loom_shim::model::{explore, Config};
use rtr_distributed::gp::{GpCluster, ReplySlot};

/// The cluster runs real GP threads over channels, so each schedule is
/// long (~40 decision points × 4 threads); bound 2 explodes to ~50k
/// schedules and minutes of wall clock. Bound 1 stays exhaustive over
/// single-preemption interleavings and the seeded random phase
/// (unbounded preemptions) covers the deeper ones.
fn cluster_config(seed: u64) -> Config {
    Config {
        preemption_bound: 1,
        random_schedules: 300,
        seed,
        ..Config::default()
    }
}
use rtr_graph::toy::fig2_toy;
use rtr_graph::NodeId;

/// Healthy-path sanity inside the model: a two-GP fetch returns exactly
/// the requested blocks in every schedule.
#[test]
fn fetch_is_exact_in_every_schedule() {
    let report = explore(cluster_config(0x6B10_0001), || {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let mut slot = ReplySlot::new();
        // NodeId 0 is owned by GP 0, NodeId 1 by GP 1 (round-robin).
        let (blocks, bytes) = cluster
            .fetch(&[NodeId(0), NodeId(1)], &mut slot)
            .expect("healthy cluster");
        assert_eq!(blocks.len(), 2);
        assert!(bytes > 0);
        let mut got: Vec<NodeId> = blocks.iter().map(|b| b.node).collect();
        got.sort();
        assert_eq!(got, vec![NodeId(0), NodeId(1)]);
    });
    rtr_check::report("reply-slot/healthy-fetch", &report);
    assert!(report.dfs_schedules > 1);
}

/// The straggler scenario: GP 0 is injected to fail its next fetch, so a
/// two-GP fetch returns an error — possibly *before* GP 1's healthy
/// reply lands in the slot. The next fetch through the same slot bumps
/// the generation; in every schedule it must return exactly its own
/// block, never the stale straggler (and never hang).
#[test]
fn no_stale_reply_after_generation_bump() {
    let report = explore(cluster_config(0x6B10_0002), || {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let mut slot = ReplySlot::new();
        cluster.fail_next_fetch(0);
        let err = cluster
            .fetch(&[NodeId(0), NodeId(1)], &mut slot)
            .expect_err("injected fault must surface");
        assert!(
            err.to_string().contains("graph processor 0"),
            "error must name the failed GP, got: {err}"
        );
        // Same slot, different node, new generation. GP 1's reply to the
        // *abandoned* fetch may arrive before, during, or after the
        // drain — the generation stamp must absorb every case.
        let (blocks, _) = cluster
            .fetch(&[NodeId(3)], &mut slot)
            .expect("GP 1 is healthy");
        assert_eq!(blocks.len(), 1, "stale straggler leaked into the result");
        assert_eq!(blocks[0].node, NodeId(3));
    });
    rtr_check::report("reply-slot/straggler", &report);
    assert!(report.dfs_schedules > 1);
}
