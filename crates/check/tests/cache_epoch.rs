//! Model checks for the sharded result cache: epoch-keyed invalidation
//! never serves a stale (pre-bump) entry, and the `stats()` snapshot
//! keeps its `evictions <= inserts` invariant in every interleaving —
//! the regression test for the Acquire/Release tightening of the
//! eviction counter (see `ShardedCache::stats`).

use loom_shim::model::{explore, Config};
use loom_shim::sync::Arc;
use loom_shim::thread;
use rtr_cache::{CacheConfig, ShardedCache};

const OLD: u64 = 1;
const NEW: u64 = 2;

/// Epoch-bump invalidation, as the serving engine keys its result cache:
/// the epoch is part of the key, so entries from a stale epoch can never
/// collide with a fresh lookup. A writer racing to insert an old-epoch
/// entry must never make a new-epoch reader observe the old value —
/// whether the reader hits (its own insert), misses (evicted), but never
/// crosses epochs.
#[test]
fn epoch_bump_never_serves_stale() {
    let report = explore(Config::with_random(2_000, 0xCA0E_0001), || {
        // Tiny capacity so old- and new-epoch entries fight for the same
        // LRU slots — eviction is part of the explored surface.
        let cache: Arc<ShardedCache<(u64, u32), u64>> =
            Arc::new(ShardedCache::new(CacheConfig::with_capacity(2)));
        let query = 9u32;
        // A straggling writer from before the bump, still publishing
        // results computed against epoch 1.
        let writer = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                cache.insert((1, query), OLD);
            })
        };
        // The bump happened: readers now key by epoch 2.
        let reader = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let key = (2u64, query);
                match cache.get(&key) {
                    Some(v) => assert_eq!(v, NEW, "stale entry served across epochs"),
                    None => {
                        cache.insert(key, NEW);
                        // The entry may have been evicted again by the
                        // writer's traffic, but it can never come back OLD.
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(v, NEW, "stale entry served across epochs");
                        }
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        // Post-quiescence: the new-epoch key still never yields OLD.
        if let Some(v) = cache.get(&(2u64, query)) {
            assert_eq!(v, NEW);
        }
    });
    rtr_check::report("cache/epoch-bump", &report);
    assert!(report.dfs_schedules > 1);
}

/// Regression for the stats read-order/ordering fix: two threads
/// hammering a capacity-1 cache (every insert after the first evicts)
/// while the main thread snapshots `stats()` mid-flight. In every
/// schedule, every snapshot must report `evictions <= inserts`; with the
/// old read order (inserts before evictions) the explorer finds a
/// violating interleaving within two preemptions.
#[test]
fn stats_never_report_more_evictions_than_inserts() {
    let report = explore(Config::with_random(2_000, 0xCA0E_0002), || {
        let cache: Arc<ShardedCache<u32, u64>> = Arc::new(ShardedCache::new(CacheConfig {
            capacity: 1,
            shards: 1,
        }));
        // Seed one resident entry so every write below evicts.
        cache.insert(0, 0);
        let writers: Vec<_> = (0..2)
            .map(|i| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    cache.insert(100 + i, u64::from(i));
                })
            })
            .collect();
        let stats = cache.stats();
        assert!(
            stats.evictions <= stats.inserts,
            "snapshot reported {} evictions > {} inserts",
            stats.evictions,
            stats.inserts
        );
        for w in writers {
            w.join().unwrap();
        }
        let end = cache.stats();
        assert!(end.evictions <= end.inserts);
        assert_eq!(end.inserts, 3);
    });
    rtr_check::report("cache/stats-invariant", &report);
    assert!(report.dfs_schedules > 1);
}
