//! Model checks for the sharded lock-free histogram: a merge of
//! concurrent recordings equals their union (nothing lost, nothing
//! double-counted), and a snapshot taken *while* recording is a valid
//! prefix — never more than what was recorded, never torn below what had
//! already completed.

use loom_shim::model::{explore, Config};
use loom_shim::sync::Arc;
use loom_shim::thread;
use rtr_obs::{bucket_bounds, bucket_index, Histogram};

/// Two threads record disjoint value sets concurrently; the post-join
/// snapshot must be exactly the union in every interleaving of the
/// underlying per-shard `fetch_add`s.
#[test]
fn merge_equals_union_under_concurrent_recording() {
    let report = explore(Config::with_random(200, 0x4157_0001), || {
        let h = Arc::new(Histogram::new(2));
        let a = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                h.record(1);
                h.record(100);
            })
        };
        let b = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                h.record(7);
                h.record(5_000);
            })
        };
        a.join().unwrap();
        b.join().unwrap();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4, "recordings lost or double-counted");
        assert_eq!(snap.sum(), 1 + 100 + 7 + 5_000);
        // max() reports the upper bound of the highest occupied bucket,
        // not the exact recorded value.
        assert_eq!(snap.max(), bucket_bounds(bucket_index(5_000)).1);
    });
    rtr_check::report("histogram/merge-union", &report);
    assert!(report.dfs_schedules > 1);
}

/// A snapshot racing one recorder sees a consistent prefix: its count
/// never exceeds what the recorder will have recorded, and its sum is
/// the sum of a subset of the recorded values (each record is two
/// fetch_adds — bucket count and sum — so a torn observation would show
/// up as a sum that matches no subset).
#[test]
fn concurrent_snapshot_is_a_valid_prefix() {
    let values: &[u64] = &[3, 40];
    let report = explore(
        Config {
            // Bound 0 keeps the DFS to the no-preemption backbone; the
            // seeded random phase (unbounded preemptions) does the work
            // of cutting the snapshot into the middle of records.
            preemption_bound: 0,
            random_schedules: 150,
            seed: 0x4157_0002,
            ..Config::default()
        },
        || {
            let h = Arc::new(Histogram::new(2));
            let recorder = {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for &v in values {
                        h.record(v);
                    }
                })
            };
            let snap = h.snapshot();
            recorder.join().unwrap();
            // A racing snapshot is NOT a consistent cut across counters
            // (count and sum are separate atomics), but each counter is
            // individually untorn: the observed count never exceeds the
            // recordings, and the observed sum is always a subset-sum of
            // the recorded values — a torn value would produce a sum
            // matching no subset of {3, 40}.
            assert!(
                snap.count() <= 2,
                "count {} exceeds recordings",
                snap.count()
            );
            assert!(
                [0, 3, 40, 43].contains(&snap.sum()),
                "torn sum: {}",
                snap.sum()
            );
            // After the join, the full union must be visible.
            let final_snap = h.snapshot();
            assert_eq!(final_snap.count(), 2);
            assert_eq!(final_snap.sum(), 43);
        },
    );
    rtr_check::report("histogram/concurrent-snapshot", &report);
    assert!(report.total() >= 150);
}
