//! Model checks for the scheduler's generation-counted parking lot
//! (`rtr_serve::check_api::Park`): the no-lost-wakeup protocol between a
//! worker's queue scan and its sleep, and the shutdown broadcast. Also
//! proves the checker has teeth: the naive variant of the same protocol
//! (reading the generation *after* the scan) is caught as a deadlock.

use loom_shim::model::{explore, explore_result, Config, Failure, FailureKind};
use loom_shim::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom_shim::sync::Arc;
use loom_shim::thread;
use rtr_serve::check_api::Park;

/// The worker loop's exact pattern: read the generation, scan for work,
/// sleep only if the generation is unchanged. A push that lands between
/// scan and sleep bumps the generation and turns the sleep into a no-op.
/// No schedule may deadlock, and the woken worker always sees the work.
#[test]
fn push_notify_never_loses_the_wakeup() {
    let report = explore(Config::with_random(10_000, 0x9A12_0001), || {
        let park = Arc::new(Park::new());
        let work = Arc::new(AtomicU64::new(0));
        let worker = {
            let park = Arc::clone(&park);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                // ordering: SeqCst — model-only test; the production
                // worker loop's orderings are audited in engine.rs.
                let seen = park.current();
                if work.load(Ordering::SeqCst) == 0 {
                    park.sleep(seen);
                }
                assert_eq!(work.load(Ordering::SeqCst), 1, "woke without work");
            })
        };
        work.store(1, Ordering::SeqCst);
        park.notify_one();
        worker.join().unwrap();
    });
    rtr_check::report("park/push-notify", &report);
    assert!(report.dfs_schedules > 1);
    assert!(report.total() >= 10_000, "{} schedules", report.total());
}

/// The buggy ordering the protocol exists to prevent: snapshotting the
/// generation *after* the work check re-opens the scan-to-sleep window,
/// and the checker must find the resulting lost-wakeup deadlock.
#[test]
fn naive_generation_read_is_caught() {
    let failure: Failure = explore_result(Config::default(), || {
        let park = Arc::new(Park::new());
        let work = Arc::new(AtomicU64::new(0));
        let worker = {
            let park = Arc::clone(&park);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                // BUG under test: generation read after the scan.
                if work.load(Ordering::SeqCst) == 0 {
                    park.sleep(park.current());
                }
            })
        };
        work.store(1, Ordering::SeqCst);
        park.notify_one();
        worker.join().unwrap();
    })
    .expect_err("the checker must catch the naive protocol");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    println!(
        "rtr-check[park/naive-counterexample]: caught {:?} with schedule {:?}",
        failure.kind, failure.schedule
    );
}

/// Engine shutdown: workers park between scans; `shutdown.store(true)`
/// followed by `notify_all` must wake and terminate every worker in
/// every schedule, even one that was mid-scan and about to sleep.
#[test]
fn shutdown_broadcast_terminates_all_workers() {
    let report = explore(Config::with_random(2_000, 0x9A12_0002), || {
        let park = Arc::new(Park::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let park = Arc::clone(&park);
                let shutdown = Arc::clone(&shutdown);
                thread::spawn(move || loop {
                    let seen = park.current();
                    // ordering: SeqCst — model-only test; the production
                    // engine uses Acquire paired with a Release store.
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    park.sleep(seen);
                })
            })
            .collect();
        shutdown.store(true, Ordering::SeqCst);
        park.notify_all();
        for w in workers {
            w.join().unwrap();
        }
    });
    rtr_check::report("park/shutdown-broadcast", &report);
    assert!(report.dfs_schedules > 1);
}
