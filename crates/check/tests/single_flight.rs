//! Model checks for the single-flight table
//! (`rtr_serve::check_api::InFlight`): exactly one computation per key
//! under the engine's double-checked cache pattern, every duplicate
//! answered exactly once — including when the owner's computation fails
//! and each attached duplicate is recomputed individually — and the
//! blocking-wait path never hangs or misses the published result.

use loom_shim::model::{explore, Config};
use loom_shim::sync::atomic::{AtomicU64, Ordering};
use loom_shim::sync::Arc;
use loom_shim::thread;
use rtr_serve::check_api::InFlight;

const KEY: u32 = 7;

/// Shared scaffolding: a "cache" slot (0 = empty), a computation
/// counter, and one answered-flag per request.
struct World {
    flight: InFlight<u32, usize>,
    cached: AtomicU64,
    computed: AtomicU64,
    answered: [AtomicU64; 2],
}

impl World {
    fn new() -> Self {
        World {
            flight: InFlight::new(),
            cached: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            answered: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    fn answer(&self, job: usize) {
        self.answered[job].fetch_add(1, Ordering::SeqCst);
    }
}

/// One request following the engine's work-stealing path: check the
/// cache, attach-or-claim, and as owner re-check the cache under
/// ownership before computing, then answer everything that attached.
fn attach_path(w: &World, job: usize) {
    if w.cached.load(Ordering::SeqCst) != 0 {
        w.answer(job);
        return;
    }
    match w.flight.attach_or_claim(&KEY, job) {
        None => {} // attached; the owner's finish() answers it
        Some(own) => {
            // Owner: re-check under ownership — a previous flight may
            // have published between our miss and our claim.
            if w.cached.load(Ordering::SeqCst) == 0 {
                w.computed.fetch_add(1, Ordering::SeqCst);
                w.cached.store(42, Ordering::SeqCst);
            }
            w.answer(own);
            for attached in w.flight.finish(&KEY) {
                w.answer(attached);
            }
        }
    }
}

/// Two concurrent identical requests: in *every* schedule the value is
/// computed exactly once and each request is answered exactly once.
#[test]
fn exactly_one_computation_per_key() {
    let report = explore(Config::with_random(10_000, 0x51F1_0001), || {
        let w = Arc::new(World::new());
        let t = {
            let w = Arc::clone(&w);
            thread::spawn(move || attach_path(&w, 1))
        };
        attach_path(&w, 0);
        t.join().unwrap();
        assert_eq!(
            w.computed.load(Ordering::SeqCst),
            1,
            "duplicate computation"
        );
        for (job, flag) in w.answered.iter().enumerate() {
            assert_eq!(flag.load(Ordering::SeqCst), 1, "job {job} answer count");
        }
    });
    rtr_check::report("single-flight/exactly-once", &report);
    assert!(report.dfs_schedules > 1);
    assert!(report.total() >= 10_000, "{} schedules", report.total());
}

/// The owner-failure path: the computation errors (nothing is cached),
/// the owner still finishes the key and recomputes each attached
/// duplicate individually. Every request must be answered exactly once
/// and the key must be claimable again afterwards.
#[test]
fn owner_error_recomputes_each_duplicate() {
    let failing_path = |w: &World, job: usize| {
        match w.flight.attach_or_claim(&KEY, job) {
            None => {} // attached; owner answers it below
            Some(own) => {
                // The computation fails: count the attempt, publish
                // nothing. finish() must still run on the error path.
                w.computed.fetch_add(1, Ordering::SeqCst);
                let attached = w.flight.finish(&KEY);
                w.answer(own);
                for dup in attached {
                    // Errors are recomputed individually, one per
                    // duplicate (they are cheap and deterministic).
                    w.computed.fetch_add(1, Ordering::SeqCst);
                    w.answer(dup);
                }
            }
        }
    };
    let report = explore(Config::with_random(10_000, 0x51F1_0002), || {
        let w = Arc::new(World::new());
        let t = {
            let w = Arc::clone(&w);
            thread::spawn(move || failing_path(&w, 1))
        };
        failing_path(&w, 0);
        t.join().unwrap();
        for (job, flag) in w.answered.iter().enumerate() {
            assert_eq!(flag.load(Ordering::SeqCst), 1, "job {job} answer count");
        }
        // Overlapping flights: 1 owner attempt + 1 recompute for the
        // attached duplicate. Disjoint flights: 2 independent attempts.
        let computed = w.computed.load(Ordering::SeqCst);
        assert_eq!(computed, 2, "one failed attempt + one recompute");
        // The failed key is free again.
        assert!(w.flight.begin(&KEY), "key leaked by the error path");
    });
    rtr_check::report("single-flight/owner-error", &report);
    assert!(report.total() >= 10_000, "{} schedules", report.total());
}

/// The shared-queue blocking path: a loser calls `wait` and parks on the
/// table's condvar. In every schedule the waiter wakes (finish released
/// the key) and finds the owner's published value — the no-missed-
/// publication half of the protocol.
#[test]
fn blocking_wait_sees_the_published_value() {
    let report = explore(Config::with_random(5_000, 0x51F1_0003), || {
        let w = Arc::new(World::new());
        let waiter = {
            let w = Arc::clone(&w);
            thread::spawn(move || {
                if w.cached.load(Ordering::SeqCst) != 0 {
                    return;
                }
                if w.flight.begin(&KEY) {
                    // We won instead: same owner duties as the main path.
                    if w.cached.load(Ordering::SeqCst) == 0 {
                        w.computed.fetch_add(1, Ordering::SeqCst);
                        w.cached.store(42, Ordering::SeqCst);
                    }
                    w.flight.finish(&KEY);
                } else {
                    w.flight.wait(&KEY);
                    // finish() happens after the owner published; the
                    // re-check must hit.
                    assert_eq!(w.cached.load(Ordering::SeqCst), 42, "woke before publish");
                }
            })
        };
        if w.flight.begin(&KEY) {
            if w.cached.load(Ordering::SeqCst) == 0 {
                w.computed.fetch_add(1, Ordering::SeqCst);
                w.cached.store(42, Ordering::SeqCst);
            }
            w.flight.finish(&KEY);
        } else {
            w.flight.wait(&KEY);
            assert_eq!(w.cached.load(Ordering::SeqCst), 42, "woke before publish");
        }
        waiter.join().unwrap();
        assert_eq!(
            w.computed.load(Ordering::SeqCst),
            1,
            "duplicate computation"
        );
    });
    rtr_check::report("single-flight/blocking-wait", &report);
    assert!(report.dfs_schedules > 1);
}
