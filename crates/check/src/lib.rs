#![deny(missing_docs)]
//! Model-checked concurrency suites for the RoundTripRank workspace.
//!
//! This crate has no runtime surface of its own: its value is the test
//! files under `tests/`, each of which model-checks one of the hot
//! synchronization protocols (single-flight, condvar parking, reply
//! slots, histogram sharding, epoch-keyed caching) by exhaustively
//! exploring every interleaving with up to two preemptions plus a
//! seeded-random sample beyond that bound. Run with
//! `cargo test -p rtr-check` (it is excluded from the workspace default
//! members so production builds never see the `rtr_check` feature).

/// The default preemption bound the suites explore exhaustively. Two
/// preemptions catches the classic TOCTOU, lost-wakeup, and
/// missed-generation races while keeping exhaustive enumeration cheap;
/// suites over long protocols (the GP cluster) drop to 1 and lean on
/// the random phase instead.
pub const PREEMPTION_BOUND: usize = 2;

/// Print one suite's exploration report in the stable, greppable format
/// the CI log and `docs/CONCURRENCY.md` reference.
pub fn report(protocol: &str, report: &loom_shim::model::Report) {
    println!(
        "rtr-check[{protocol}]: {} exhaustive schedules (<= {} preemptions) + {} random schedules from seed {:#x}",
        report.dfs_schedules, report.preemption_bound, report.random_schedules, report.seed
    );
}
