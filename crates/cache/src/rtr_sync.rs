//! Synchronization-primitive facade: plain `std::sync` in production
//! builds, `loom_shim`'s instrumented types under the `rtr_check`
//! feature so the `rtr-check` model suites can exhaustively explore the
//! LRU-shard locking and stats-counter protocols. Code in this crate
//! imports sync primitives from here, never from `std::sync` directly.

#[cfg(feature = "rtr_check")]
pub(crate) use loom_shim::sync::Mutex;
#[cfg(not(feature = "rtr_check"))]
pub(crate) use std::sync::Mutex;

/// Atomic types routed through the facade; `Ordering` is always the real
/// `std` enum (loom-shim re-exports it unchanged).
pub(crate) mod atomic {
    #[cfg(feature = "rtr_check")]
    pub(crate) use loom_shim::sync::atomic::AtomicU64;
    #[cfg(not(feature = "rtr_check"))]
    pub(crate) use std::sync::atomic::AtomicU64;

    pub(crate) use std::sync::atomic::Ordering;
}
