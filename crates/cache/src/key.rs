//! The result-cache key: everything that determines a top-K answer.
//!
//! A cached ranking may be served in place of a fresh [`rtr_topk::TwoSBound`]
//! run only when *every* input that could change the output matches: the
//! query node, the graph (via its construction epoch — see
//! [`rtr_graph::Graph::epoch`]), the random-walk parameters, the top-K
//! configuration, and the computational scheme. Folding the epoch into the
//! key is what makes invalidation free: when a new graph replaces an old
//! one, entries computed against the old epoch simply stop being
//! addressable and age out of the LRU.

use crate::cache::ShardedCache;
use rtr_core::RankParams;
use rtr_graph::NodeId;
use rtr_topk::{Scheme, TopKCacheKey, TopKConfig, TopKResult};
use std::sync::Arc;

/// Identity of one served top-K computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    query: NodeId,
    epoch: u64,
    scheme: Scheme,
    topk: TopKCacheKey,
    // RankParams by IEEE-754 bits: runs are bit-identical exactly when the
    // parameter bits are.
    alpha_bits: u64,
    tolerance_bits: u64,
    max_iterations: usize,
}

impl CacheKey {
    /// Key for running `query` on a graph stamped `epoch` under the given
    /// parameters, configuration, and scheme.
    pub fn new(
        query: NodeId,
        epoch: u64,
        params: &RankParams,
        config: &TopKConfig,
        scheme: Scheme,
    ) -> Self {
        CacheKey {
            query,
            epoch,
            scheme,
            topk: config.cache_key(),
            alpha_bits: params.alpha.to_bits(),
            tolerance_bits: params.tolerance.to_bits(),
            max_iterations: params.max_iterations,
        }
    }

    /// The query node.
    pub fn query(&self) -> NodeId {
        self.query
    }

    /// The graph epoch this key is valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// The serving layer's cache type: results are shared as `Arc`s so a hit
/// never clones the ranking vectors under the shard lock.
pub type ResultCache = ShardedCache<CacheKey, Arc<TopKResult>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CacheKey {
        CacheKey::new(
            NodeId(3),
            7,
            &RankParams::default(),
            &TopKConfig::default(),
            Scheme::TwoSBound,
        )
    }

    #[test]
    fn identical_inputs_identical_keys() {
        assert_eq!(base(), base());
    }

    #[test]
    fn every_component_separates_keys() {
        let b = base();
        let params = RankParams::default();
        let config = TopKConfig::default();
        let variants = [
            CacheKey::new(NodeId(4), 7, &params, &config, Scheme::TwoSBound),
            CacheKey::new(NodeId(3), 8, &params, &config, Scheme::TwoSBound),
            CacheKey::new(NodeId(3), 7, &params, &config, Scheme::Gupta),
            CacheKey::new(
                NodeId(3),
                7,
                &RankParams::with_alpha(0.5),
                &config,
                Scheme::TwoSBound,
            ),
            CacheKey::new(
                NodeId(3),
                7,
                &params,
                &TopKConfig { k: 3, ..config },
                Scheme::TwoSBound,
            ),
            CacheKey::new(
                NodeId(3),
                7,
                &RankParams {
                    max_iterations: 5,
                    ..params
                },
                &config,
                Scheme::TwoSBound,
            ),
        ];
        for v in variants {
            assert_ne!(v, b, "{v:?} collided with base");
        }
    }

    #[test]
    fn accessors_expose_query_and_epoch() {
        let k = base();
        assert_eq!(k.query(), NodeId(3));
        assert_eq!(k.epoch(), 7);
    }
}
