//! The result-cache key: everything that determines a served answer.
//!
//! A cached ranking may be served in place of a fresh engine run only when
//! *every* input that could change the output matches: the query (single
//! node or weighted multi-node set, in canonical order), the proximity
//! measure (including the RTR+ β bit pattern), the graph (via its
//! construction epoch — see [`rtr_graph::Graph::epoch`]), the random-walk
//! parameters, the top-K configuration, and the computational scheme.
//! Folding the epoch into the key is what makes invalidation free: when a
//! new graph replaces an old one, entries computed against the old epoch
//! simply stop being addressable and age out of the LRU.
//!
//! Since PR 4 the key covers the full per-request parameter space, so one
//! cache stays bit-correct across heterogeneous traffic: an F-Rank top-5
//! and an RTR+β top-10 for the same node never collide, and two
//! order-permuted copies of one multi-node query share an entry *provided
//! the caller canonicalizes the query first* ([`rtr_core::Query::canonicalize`]
//! — the serving layer does this at request construction).

use crate::cache::ShardedCache;
use rtr_core::{Measure, MeasureKey, Query, QueryCacheKey, RankParams, RankParamsKey};
use rtr_graph::NodeId;
use rtr_topk::{Scheme, TopKCacheKey, TopKConfig, TopKResult};
use std::sync::Arc;

/// Identity of one served computation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    query: QueryCacheKey,
    measure: MeasureKey,
    epoch: u64,
    scheme: Scheme,
    topk: TopKCacheKey,
    params: RankParamsKey,
}

impl CacheKey {
    /// Key for ranking `query` under `measure` on a graph stamped `epoch`
    /// with the given parameters, configuration, and scheme.
    ///
    /// The query's pair order is keyed as-is: multi-node engines accumulate
    /// in query order, so permutations are not bit-equivalent in general.
    /// Canonicalize the query first when permutations should share an
    /// entry.
    pub fn new(
        query: &Query,
        measure: Measure,
        epoch: u64,
        params: &RankParams,
        config: &TopKConfig,
        scheme: Scheme,
    ) -> Self {
        CacheKey {
            query: query.cache_key(),
            measure: measure.cache_key(),
            epoch,
            scheme,
            topk: config.cache_key(),
            params: params.cache_key(),
        }
    }

    /// Convenience for the pre-PR-4 key shape: a single-node RoundTripRank
    /// query.
    pub fn single(
        node: NodeId,
        epoch: u64,
        params: &RankParams,
        config: &TopKConfig,
        scheme: Scheme,
    ) -> Self {
        Self::new(
            &Query::single(node),
            Measure::Rtr,
            epoch,
            params,
            config,
            scheme,
        )
    }

    /// The graph epoch this key is valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// The serving layer's cache type: results are shared as `Arc`s so a hit
/// never clones the ranking vectors under the shard lock.
pub type ResultCache = ShardedCache<CacheKey, Arc<TopKResult>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CacheKey {
        CacheKey::single(
            NodeId(3),
            7,
            &RankParams::default(),
            &TopKConfig::default(),
            Scheme::TwoSBound,
        )
    }

    #[test]
    fn identical_inputs_identical_keys() {
        assert_eq!(base(), base());
    }

    #[test]
    fn every_component_separates_keys() {
        let b = base();
        let params = RankParams::default();
        let config = TopKConfig::default();
        let variants = [
            CacheKey::single(NodeId(4), 7, &params, &config, Scheme::TwoSBound),
            CacheKey::single(NodeId(3), 8, &params, &config, Scheme::TwoSBound),
            CacheKey::single(NodeId(3), 7, &params, &config, Scheme::Gupta),
            CacheKey::single(
                NodeId(3),
                7,
                &RankParams::with_alpha(0.5),
                &config,
                Scheme::TwoSBound,
            ),
            CacheKey::single(
                NodeId(3),
                7,
                &params,
                &TopKConfig { k: 3, ..config },
                Scheme::TwoSBound,
            ),
            CacheKey::single(
                NodeId(3),
                7,
                &RankParams {
                    max_iterations: 5,
                    ..params
                },
                &config,
                Scheme::TwoSBound,
            ),
        ];
        for v in variants {
            assert_ne!(v, b, "{v:?} collided with base");
        }
    }

    #[test]
    fn measures_never_share_entries() {
        let params = RankParams::default();
        let config = TopKConfig::default();
        let q = Query::single(NodeId(3));
        let keys = [
            CacheKey::new(&q, Measure::F, 7, &params, &config, Scheme::TwoSBound),
            CacheKey::new(&q, Measure::T, 7, &params, &config, Scheme::TwoSBound),
            CacheKey::new(&q, Measure::Rtr, 7, &params, &config, Scheme::TwoSBound),
            CacheKey::new(
                &q,
                Measure::RtrPlus { beta: 0.3 },
                7,
                &params,
                &config,
                Scheme::TwoSBound,
            ),
            CacheKey::new(
                &q,
                Measure::RtrPlus { beta: 0.7 },
                7,
                &params,
                &config,
                Scheme::TwoSBound,
            ),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "distinct measures must have distinct keys");
            }
        }
        // β = 0.5 RTR+ is rank-equivalent to RTR but not bit-equivalent
        // (different bound arithmetic): still a distinct key.
        assert_ne!(
            CacheKey::new(
                &q,
                Measure::RtrPlus { beta: 0.5 },
                7,
                &params,
                &config,
                Scheme::TwoSBound
            ),
            CacheKey::new(&q, Measure::Rtr, 7, &params, &config, Scheme::TwoSBound)
        );
    }

    #[test]
    fn canonicalized_multi_node_queries_share_entries() {
        let params = RankParams::default();
        let config = TopKConfig::default();
        let a = Query::weighted(&[(NodeId(1), 1.0), (NodeId(4), 3.0)]).unwrap();
        let b = Query::weighted(&[(NodeId(4), 3.0), (NodeId(1), 1.0)]).unwrap();
        let key =
            |q: &Query| CacheKey::new(q, Measure::Rtr, 7, &params, &config, Scheme::TwoSBound);
        // Raw order is part of the key...
        assert_ne!(key(&a), key(&b));
        // ...the canonical forms collapse to one entry.
        assert_eq!(key(&a.canonicalize()), key(&b.canonicalize()));
        // Different weights stay distinct.
        let c = Query::weighted(&[(NodeId(1), 2.0), (NodeId(4), 3.0)]).unwrap();
        assert_ne!(key(&a.canonicalize()), key(&c.canonicalize()));
    }

    #[test]
    fn accessors_expose_epoch() {
        assert_eq!(base().epoch(), 7);
    }

    #[test]
    fn single_is_a_rtr_single_node_key() {
        let params = RankParams::default();
        let config = TopKConfig::default();
        let via_single = CacheKey::single(NodeId(3), 7, &params, &config, Scheme::TwoSBound);
        let via_new = CacheKey::new(
            &Query::single(NodeId(3)),
            Measure::Rtr,
            7,
            &params,
            &config,
            Scheme::TwoSBound,
        );
        assert_eq!(via_single, via_new);
    }
}
