//! The single-shard LRU: a hash map over an intrusive doubly-linked
//! recency list stored in a slab.
//!
//! Every operation is O(1) amortized: `get` unlinks the entry and relinks
//! it at the most-recently-used head, `insert` at capacity evicts the tail
//! before linking the new entry. Slots are recycled through a free list,
//! so a shard serving a steady hit/miss mix performs no allocation once
//! warm — the same discipline the serving workspaces follow.
//!
//! The `cache_model` property suite pins this structure to a reference
//! `HashMap` + recency-`Vec` model under random operation sequences.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel "no slot" index for the linked list.
const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded LRU map: one shard of the concurrent cache.
pub struct LruShard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most-recently-used slot, or `NIL` when empty.
    head: usize,
    /// Least-recently-used slot (the eviction candidate), or `NIL`.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> LruShard<K, V> {
    /// An empty shard holding at most `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(&self.slots[slot].value)
    }

    /// Look up `key` without touching recency (model/diagnostic use).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&slot| &self.slots[slot].value)
    }

    /// Insert or update `key`, marking it most recently used. Returns the
    /// `(key, value)` evicted to make room, if the shard was full and
    /// `key` was not already resident.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return None;
        }
        if self.map.len() == self.capacity {
            // Full: reuse the LRU slot in place for the new entry.
            let lru = self.tail;
            self.unlink(lru);
            let old = std::mem::replace(
                &mut self.slots[lru],
                Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                },
            );
            self.map.remove(&old.key);
            self.map.insert(key, lru);
            self.push_front(lru);
            return Some((old.key, old.value));
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        None
    }

    /// Drop every entry — keys and values included, so cleared payloads
    /// (e.g. `Arc`ed rankings) are actually released. The map's, slab's,
    /// and free list's own buffers are retained for refill.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys and values from most to least recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let s = &self.slots[cursor];
            cursor = s.next;
            Some((&s.key, &s.value))
        })
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            if self.head == slot {
                self.head = next;
            }
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            if self.tail == slot {
                self.tail = prev;
            }
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mru_keys(l: &LruShard<u32, u32>) -> Vec<u32> {
        l.iter_mru().map(|(&k, _)| k).collect()
    }

    #[test]
    fn insert_get_update() {
        let mut l = LruShard::new(4);
        assert!(l.is_empty());
        assert_eq!(l.insert(1, 10), None);
        assert_eq!(l.insert(2, 20), None);
        assert_eq!(l.get(&1), Some(&10));
        assert_eq!(l.get(&3), None);
        assert_eq!(l.insert(1, 11), None); // update, no eviction
        assert_eq!(l.get(&1), Some(&11));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut l = LruShard::new(3);
        l.insert(1, 1);
        l.insert(2, 2);
        l.insert(3, 3);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(l.get(&1), Some(&1));
        assert_eq!(l.insert(4, 4), Some((2, 2)));
        assert_eq!(l.len(), 3);
        assert_eq!(l.peek(&2), None);
        assert_eq!(mru_keys(&l), vec![4, 1, 3]);
    }

    #[test]
    fn update_refreshes_recency() {
        let mut l = LruShard::new(2);
        l.insert(1, 1);
        l.insert(2, 2);
        l.insert(1, 100); // 2 is now the LRU
        assert_eq!(l.insert(3, 3), Some((2, 2)));
        assert_eq!(l.peek(&1), Some(&100));
    }

    #[test]
    fn capacity_one_degenerates_to_last_writer() {
        let mut l = LruShard::new(1);
        assert_eq!(l.insert(1, 1), None);
        assert_eq!(l.insert(2, 2), Some((1, 1)));
        assert_eq!(l.insert(3, 3), Some((2, 2)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.get(&3), Some(&3));
    }

    #[test]
    fn clear_retains_capacity_and_slots() {
        let mut l = LruShard::new(3);
        for k in 0..3 {
            l.insert(k, k);
        }
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.capacity(), 3);
        assert_eq!(mru_keys(&l), Vec::<u32>::new());
        // Refill after clear behaves like a fresh shard.
        l.insert(7, 7);
        l.insert(8, 8);
        assert_eq!(mru_keys(&l), vec![8, 7]);
    }

    #[test]
    fn clear_releases_stored_values() {
        use std::sync::Arc;
        let mut l: LruShard<u32, Arc<u32>> = LruShard::new(4);
        let v = Arc::new(7u32);
        l.insert(1, Arc::clone(&v));
        assert_eq!(Arc::strong_count(&v), 2);
        l.clear();
        assert_eq!(Arc::strong_count(&v), 1, "clear must drop the payloads");
    }

    #[test]
    fn peek_does_not_touch() {
        let mut l = LruShard::new(2);
        l.insert(1, 1);
        l.insert(2, 2);
        assert_eq!(l.peek(&1), Some(&1)); // 1 stays the LRU
        assert_eq!(l.insert(3, 3), Some((1, 1)));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        LruShard::<u32, u32>::new(0);
    }
}
