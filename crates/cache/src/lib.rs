//! # rtr-cache — sharded top-K result cache for RoundTripRank serving
//!
//! Real query traffic is heavily skewed: a small set of hot query nodes
//! dominates any bibliographic-search workload (the paper's own QLog
//! dataset is Zipf-distributed in phrase popularity, and `rtr-datagen`
//! models exactly that). 2SBound makes a single top-K query cheap; this
//! crate makes a *repeated* top-K query nearly free by remembering its
//! full ranking.
//!
//! The design, bottom-up:
//!
//! * [`lru::LruShard`] — a bounded LRU map (hash map over an intrusive
//!   recency list in a slab): O(1) get/insert/evict, allocation-free once
//!   warm. Pinned to a `HashMap` + recency-list model by the `cache_model`
//!   property suite.
//! * [`ShardedCache`] — N independently locked shards (a key's hash picks
//!   its shard) with atomic hit/miss/insert/eviction counters, snapshotted
//!   as [`CacheStats`].
//! * [`CacheKey`] / [`ResultCache`] — the serving key: `(query node, graph
//!   epoch, RankParams, TopKConfig, Scheme)`. The **graph epoch**
//!   ([`rtr_graph::Graph::epoch`]) makes invalidation structural: replace
//!   the graph and every stale entry stops being addressable — no scanning,
//!   no tombstones; the LRU ages them out.
//!
//! Correctness stance: a cache hit returns the *bit-identical* `TopKResult`
//! a fresh run would produce, because every input that can change a run's
//! output is part of the key and the engines are deterministic. The
//! `serve_cache_determinism` suite enforces this end to end through
//! `rtr-serve`.
//!
//! ```
//! use rtr_cache::{CacheConfig, ShardedCache};
//!
//! let cache: ShardedCache<u32, u64> = ShardedCache::new(CacheConfig::with_capacity(128));
//! assert_eq!(cache.get(&7), None);       // miss
//! cache.insert(7, 700);
//! assert_eq!(cache.get(&7), Some(700));  // hit
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod key;
pub mod lru;
mod rtr_sync;

pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use key::{CacheKey, ResultCache};
pub use lru::LruShard;
