//! The sharded concurrent cache: N independently locked LRU shards plus
//! lock-free statistics.
//!
//! A key's hash picks its shard, so concurrent queries for different keys
//! contend only when they collide on a shard — with the default 16 shards
//! and a worker pool sized to the machine, lock hold times (one hash-map
//! probe plus two list splices) are far below a single 2SBound expansion,
//! keeping the cache invisible on the miss path.

use crate::lru::LruShard;
use crate::rtr_sync::atomic::{AtomicU64, Ordering};
use crate::rtr_sync::Mutex;
use std::hash::{Hash, Hasher};

/// Shape of a [`ShardedCache`]: total entry budget and shard count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total entry budget across all shards (each shard gets
    /// `ceil(capacity / shards)`, so the whole cache holds at least
    /// `capacity` entries).
    pub capacity: usize,
    /// Number of independently locked shards.
    pub shards: usize,
}

impl Default for CacheConfig {
    /// 4096 entries across 16 shards — small enough to be memory-harmless
    /// (a cached top-10 ranking is a few hundred bytes), large enough to
    /// hold the hot head of a Zipf workload.
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            shards: 16,
        }
    }
}

impl CacheConfig {
    /// A config with the given total capacity and default sharding.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            ..Self::default()
        }
    }
}

/// A point-in-time snapshot of cache traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (first insert and updates alike).
    pub inserts: u64,
    /// Entries displaced by LRU pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit, or 0 with no traffic.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot (for measuring
    /// one phase of a run).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// A concurrent bounded map: `shards` independent [`LruShard`]s behind
/// mutexes, with atomic traffic counters. Values are returned by clone, so
/// `V` is typically an `Arc<…>`.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// An empty cache shaped by `config` (shards and capacity are clamped
    /// to at least 1).
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard = config.capacity.max(1).div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entry budget (shard count × per-shard capacity).
    pub fn capacity(&self) -> usize {
        self.shards.len()
            * self.shards[0]
                .lock()
                // invariant: only LruShard ops run under a shard lock
                // (here and in every method below) — no user code, no
                // panics, no poisoning.
                .expect("cache shard poisoned")
                .capacity()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            // invariant: see capacity() — no user code under shard locks.
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `key`, refreshing its recency and counting a hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = self
            .shard(key)
            .lock()
            // invariant: see capacity() — no user code under shard locks.
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        match found {
            Some(v) => {
                // ordering: Relaxed — hit/miss counts are monotonic
                // telemetry with no cross-counter invariant.
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                // ordering: Relaxed — see the hit counter above.
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up `key` like [`ShardedCache::get`], but record only a hit
    /// when found — an absent entry records nothing. For double-checked
    /// patterns (single-flight re-checks the cache after winning the
    /// in-flight claim): the caller already recorded the real miss, so a
    /// recheck-miss must not inflate the counters, while a recheck-hit is
    /// genuinely served from the cache and counts (and refreshes recency)
    /// like any other hit.
    pub fn recheck(&self, key: &K) -> Option<V> {
        let found = self
            .shard(key)
            .lock()
            // invariant: see capacity() — no user code under shard locks.
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        if found.is_some() {
            // ordering: Relaxed — monotonic telemetry, as in get().
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Insert or update `key`, evicting its shard's LRU entry if full.
    pub fn insert(&self, key: K, value: V) {
        let evicted = self
            .shard(&key)
            .lock()
            // invariant: see capacity() — no user code under shard locks.
            .expect("cache shard poisoned")
            .insert(key, value);
        // ordering: Relaxed — the insert count is ordered by the Release
        // bump of `evictions` below (or never observed paired with an
        // eviction at all); no other reader pairs it with anything.
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted.is_some() {
            // ordering: Release — publishes the preceding insert bump to
            // a `stats()` reader whose Acquire load of `evictions` sees
            // this eviction, keeping evictions <= inserts in every
            // snapshot (model-checked in rtr-check's cache suite).
            self.evictions.fetch_add(1, Ordering::Release);
        }
    }

    /// Drop every entry; traffic counters keep accumulating.
    pub fn clear(&self) {
        for s in &self.shards {
            // invariant: see capacity() — no user code under shard locks.
            s.lock().expect("cache shard poisoned").clear();
        }
    }

    /// Entries currently resident in each shard, in shard order (the
    /// per-shard occupancy behind [`ShardedCache::len`]).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            // invariant: see capacity() — no user code under shard locks.
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .collect()
    }

    /// Publish the cache's state into `registry`: traffic counters
    /// (`rtr_cache_hits_total` / `misses` / `inserts` / `evictions`),
    /// budget and occupancy gauges (`rtr_cache_capacity_entries`,
    /// `rtr_cache_entries`), and per-shard occupancy
    /// (`rtr_cache_shard_entries{shard="i"}`).
    ///
    /// The cache keeps its own atomics as the source of truth; this
    /// *mirrors* them into registry counters at call time (snapshot-time
    /// export, not hot-path double counting). Call it right before
    /// [`rtr_obs::Registry::snapshot`].
    pub fn export_metrics(&self, registry: &rtr_obs::Registry) {
        let stats = self.stats();
        registry
            .counter(
                "rtr_cache_hits_total",
                "Cache lookups answered from the cache.",
            )
            .store(stats.hits);
        registry
            .counter(
                "rtr_cache_misses_total",
                "Cache lookups that found nothing.",
            )
            .store(stats.misses);
        registry
            .counter("rtr_cache_inserts_total", "Cache entries written.")
            .store(stats.inserts);
        registry
            .counter(
                "rtr_cache_evictions_total",
                "Cache entries displaced by LRU pressure.",
            )
            .store(stats.evictions);
        registry
            .gauge("rtr_cache_capacity_entries", "Total cache entry budget.")
            .set(self.capacity() as i64);
        let lens = self.shard_lens();
        registry
            .gauge("rtr_cache_entries", "Entries currently resident.")
            .set(lens.iter().sum::<usize>() as i64);
        for (i, len) in lens.iter().enumerate() {
            let shard = i.to_string();
            registry
                .gauge_with(
                    "rtr_cache_shard_entries",
                    &[("shard", &shard)],
                    "Entries currently resident in one shard.",
                )
                .set(*len as i64);
        }
    }

    /// Snapshot the traffic counters.
    ///
    /// The snapshot is not a single atomic cut across all four counters,
    /// but it does guarantee `evictions <= inserts`: `evictions` is read
    /// *first* with Acquire (pairing with the Release bump in
    /// [`ShardedCache::insert`]), so every eviction it observes has its
    /// preceding insert visible to the later `inserts` load. Reading the
    /// counters in the reverse order would let a concurrent insert+evict
    /// land between the two loads and report more evictions than inserts.
    pub fn stats(&self) -> CacheStats {
        // ordering: Acquire — see the method doc; pairs with the Release
        // `fetch_add` in insert() to pin evictions <= inserts.
        let evictions = self.evictions.load(Ordering::Acquire);
        CacheStats {
            // ordering: Relaxed (×3) — monotonic telemetry; the only
            // cross-counter invariant is the evictions pair above.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_insert_and_stats() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig::default());
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        c.insert(1, 11);
        assert_eq!(c.get(&1), Some(11));
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.lookups(), 3);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn recheck_counts_hits_but_never_misses() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig::default());
        assert_eq!(c.recheck(&1), None);
        c.insert(1, 10);
        assert_eq!(c.recheck(&1), Some(10));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0, "recheck must not record misses");
    }

    #[test]
    fn recheck_refreshes_recency() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.recheck(&1), Some(1)); // 2 becomes the LRU
        c.insert(3, 3);
        assert_eq!(c.recheck(&1), Some(1));
        assert_eq!(c.recheck(&2), None, "LRU entry 2 was evicted");
    }

    #[test]
    fn stats_since_measures_a_phase() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig::default());
        c.insert(1, 1);
        let _ = c.get(&1);
        let mark = c.stats();
        let _ = c.get(&1);
        let _ = c.get(&2);
        let delta = c.stats().since(&mark);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.inserts, 0);
    }

    #[test]
    fn capacity_is_at_least_requested_and_evicts_under_pressure() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig {
            capacity: 8,
            shards: 4,
        });
        assert!(c.capacity() >= 8);
        for k in 0..1000 {
            c.insert(k, k);
        }
        assert!(c.len() <= c.capacity());
        assert!(c.stats().evictions > 0);
        // Everything still resident must read back correctly.
        for k in 0..1000 {
            if let Some(v) = c.get(&k) {
                assert_eq!(v, k);
            }
        }
    }

    #[test]
    fn export_metrics_mirrors_stats_and_occupancy() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig {
            capacity: 8,
            shards: 2,
        });
        c.insert(1, 1);
        c.insert(2, 2);
        let _ = c.get(&1);
        let _ = c.get(&9);
        let registry = rtr_obs::Registry::new();
        c.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("rtr_cache_hits_total", &[]), Some(1));
        assert_eq!(snap.counter_value("rtr_cache_misses_total", &[]), Some(1));
        assert_eq!(snap.counter_value("rtr_cache_inserts_total", &[]), Some(2));
        assert_eq!(snap.gauge_value("rtr_cache_entries", &[]), Some(2));
        assert_eq!(
            snap.gauge_value("rtr_cache_capacity_entries", &[]),
            Some(c.capacity() as i64)
        );
        let per_shard: i64 = (0..c.shard_count())
            .map(|i| {
                snap.gauge_value("rtr_cache_shard_entries", &[("shard", &i.to_string())])
                    .unwrap()
            })
            .sum();
        assert_eq!(per_shard, 2);
        assert_eq!(
            c.shard_lens().iter().sum::<usize>(),
            c.len(),
            "shard_lens must decompose len"
        );
        // Re-export is idempotent: counters mirror, not accumulate.
        c.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("rtr_cache_hits_total", &[]), Some(1));
    }

    #[test]
    fn zero_shapes_clamp() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig {
            capacity: 0,
            shards: 0,
        });
        assert_eq!(c.shard_count(), 1);
        assert!(c.capacity() >= 1);
        c.insert(1, 1);
        assert_eq!(c.get(&1), Some(1));
    }

    #[test]
    fn clear_empties_but_keeps_counting() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig::default());
        c.insert(1, 1);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn concurrent_mixed_traffic_is_safe_and_counted() {
        let c: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(CacheConfig {
            capacity: 64,
            shards: 8,
        }));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 31 + i) % 128;
                        if i % 3 == 0 {
                            c.insert(k, k * 2);
                        } else if let Some(v) = c.get(&k) {
                            assert_eq!(v, k * 2);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.stats();
        // 8 threads × 500 ops; i % 3 == 0 hits 167 of 0..500 per thread.
        assert_eq!(s.inserts, 8 * 167);
        assert_eq!(s.lookups(), 8 * 500 - s.inserts);
        assert!(c.len() <= c.capacity());
    }
}
