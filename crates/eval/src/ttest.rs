//! Two-tail paired t-test.
//!
//! The paper verifies every headline improvement with "two-tail paired
//! t-tests" at p < 0.01 (Sect. VI-A). This module implements the test from
//! scratch: the t statistic over paired differences and the two-tail p-value
//! through the regularized incomplete beta function (continued-fraction
//! evaluation, Lentz's algorithm).

/// Result of a paired t-test.
#[derive(Clone, Copy, Debug)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (n - 1).
    pub dof: usize,
    /// Two-tail p-value.
    pub p: f64,
    /// Mean of the paired differences (a - b).
    pub mean_diff: f64,
}

/// Two-tail paired t-test of `a` vs `b` (same length ≥ 2).
///
/// Returns `None` when the variance of the differences is zero (identical
/// pairings — p-value undefined).
pub fn paired_ttest(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let n = a.len();
    assert!(n >= 2, "need at least two pairs");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
    if var <= 0.0 {
        return None;
    }
    let se = (var / n as f64).sqrt();
    let t = mean / se;
    let dof = n - 1;
    let p = two_tail_p(t, dof);
    Some(TTestResult {
        t,
        dof,
        p,
        mean_diff: mean,
    })
}

/// Two-tail p-value of a t statistic with `dof` degrees of freedom:
/// `p = I_{ν/(ν+t²)}(ν/2, 1/2)`.
pub fn two_tail_p(t: f64, dof: usize) -> f64 {
    let v = dof as f64;
    let x = v / (v + t * t);
    reg_inc_beta(v / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Regularized incomplete beta `I_x(a, b)` via the continued fraction
/// (Numerical Recipes' betacf, Lentz's method).
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)`.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn p_value_reference_points() {
        // Classic t-table: t = 2.228, dof = 10 -> p ≈ 0.05.
        assert!((two_tail_p(2.228, 10) - 0.05).abs() < 1e-3);
        // t = 3.169, dof = 10 -> p ≈ 0.01.
        assert!((two_tail_p(3.169, 10) - 0.01).abs() < 1e-3);
        // t = 1.96, dof large -> ~0.05 (normal limit); use dof = 1000.
        assert!((two_tail_p(1.96, 1000) - 0.05).abs() < 3e-3);
    }

    #[test]
    fn p_symmetric_in_t() {
        assert!((two_tail_p(2.0, 15) - two_tail_p(-2.0, 15)).abs() < 1e-12);
    }

    #[test]
    fn zero_t_gives_p_one() {
        assert!((two_tail_p(0.0, 20) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paired_test_detects_consistent_improvement() {
        let a: Vec<f64> = (0..50).map(|i| 0.6 + 0.001 * (i % 7) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 0.5 + 0.001 * (i % 7) as f64).collect();
        let r = paired_ttest(&a, &b).unwrap();
        assert!(r.mean_diff > 0.09);
        assert!(r.p < 0.001, "p = {}", r.p);
        assert!(r.t > 0.0);
    }

    #[test]
    fn paired_test_no_difference() {
        let a = [0.5, 0.6, 0.4, 0.55, 0.45, 0.52];
        let mut b = a;
        b.reverse();
        let r = paired_ttest(&a, &b).unwrap();
        assert!(r.p > 0.5, "p = {}", r.p);
    }

    #[test]
    fn degenerate_zero_variance() {
        let a = [0.5, 0.5, 0.5];
        let b = [0.4, 0.4, 0.4];
        // All differences identical: zero variance.
        assert!(paired_ttest(&a, &b).is_none());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        paired_ttest(&[1.0], &[1.0, 2.0]);
    }
}
