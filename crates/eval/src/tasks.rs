//! The paper's four ground-truth ranking tasks (Sect. VI-A).
//!
//! "We reserve some nodes with known association to the query, and then test
//! whether a proximity measure can rank these nodes highly without the
//! knowledge of the association. ... To test the ability to recover the
//! ground truth, we remove all direct edges between the query and ground
//! truth nodes."
//!
//! * **Task 1 (Author)** — BibNet; query = paper, ground truth = its authors.
//! * **Task 2 (Venue)** — BibNet; query = paper, ground truth = its venue.
//! * **Task 3 (Relevant URL)** — QLog; query = phrase, ground truth = one
//!   randomly chosen clicked URL.
//! * **Task 4 (Equivalent search)** — QLog; query = phrase, ground truth =
//!   phrases with the same keyword set (never directly connected, so no
//!   removal needed).
//!
//! **Reproduction note**: the paper removes query–truth edges per query; we
//! remove them for *all* sampled queries in one pass and share a single
//! modified graph across the task (one `O(E)` rebuild instead of one per
//! query). The removal affects well under 1% of edges at our query counts,
//! applies identically to every measure, and preserves the comparison
//! shapes. EXPERIMENTS.md records this deviation.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::Query;
use rtr_datagen::{BibNet, QLog};
use rtr_graph::{Graph, GraphBuilder, NodeId, NodeTypeId};
use std::collections::HashSet;
use std::sync::Arc;

/// Which of the paper's four tasks an instance realizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Task 1: find a paper's authors.
    Author,
    /// Task 2: find a paper's venue.
    Venue,
    /// Task 3: find a relevant clicked URL for a phrase.
    RelevantUrl,
    /// Task 4: find equivalent search phrases.
    EquivalentSearch,
}

impl TaskKind {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Author => "Task 1 (Author)",
            TaskKind::Venue => "Task 2 (Venue)",
            TaskKind::RelevantUrl => "Task 3 (Relevant URL)",
            TaskKind::EquivalentSearch => "Task 4 (Equivalent search)",
        }
    }
}

/// One evaluation query with its reserved ground truth.
#[derive(Clone, Debug)]
pub struct TaskQuery {
    /// The query (a single node for all four tasks).
    pub query: Query,
    /// The reserved nodes the measure should re-discover.
    pub ground_truth: Vec<NodeId>,
}

/// A materialized task: modified graph + queries + result-type filter.
#[derive(Clone)]
pub struct TaskInstance {
    /// Which task this is.
    pub kind: TaskKind,
    /// The evaluation graph (query–truth edges removed).
    pub graph: Arc<Graph>,
    /// Test queries.
    pub queries: Vec<TaskQuery>,
    /// Only nodes of this type are ranked ("we filter out the query node
    /// itself and nodes not of the target type").
    pub target_type: NodeTypeId,
}

/// A (test, development) pair sharing one modified graph — the paper tunes
/// β on "1000 randomly sampled development queries that do not overlap with
/// the test queries".
pub struct TaskSplit {
    /// The held-out test instance.
    pub test: TaskInstance,
    /// The development instance (same graph, disjoint queries).
    pub dev: TaskInstance,
}

/// Rebuild `g` without the directed edges in `drop` (both directions of an
/// undirected pair must be listed by the caller).
fn remove_edges(g: &Graph, drop: &HashSet<(u32, u32)>) -> Graph {
    let mut b = GraphBuilder::with_capacity(g.node_count(), g.edge_count());
    for (_, name) in g.types().iter() {
        b.register_type(name);
    }
    for v in g.nodes() {
        b.add_labeled_node(g.node_type(v), g.label(v));
    }
    for v in g.nodes() {
        for (d, w) in g.out_edges_weighted(v) {
            if !drop.contains(&(v.0, d.0)) {
                b.add_edge(v, d, w);
            }
        }
    }
    b.build()
}

fn sample_disjoint<T: Copy>(
    pool: &[T],
    n_test: usize,
    n_dev: usize,
    rng: &mut ChaCha8Rng,
) -> (Vec<T>, Vec<T>) {
    let mut shuffled: Vec<T> = pool.to_vec();
    shuffled.shuffle(rng);
    let n_test = n_test.min(shuffled.len());
    let n_dev = n_dev.min(shuffled.len().saturating_sub(n_test));
    let test = shuffled[..n_test].to_vec();
    let dev = shuffled[n_test..n_test + n_dev].to_vec();
    (test, dev)
}

fn build_split(
    kind: TaskKind,
    graph: Graph,
    target_type: NodeTypeId,
    test: Vec<TaskQuery>,
    dev: Vec<TaskQuery>,
) -> TaskSplit {
    let graph = Arc::new(graph);
    TaskSplit {
        test: TaskInstance {
            kind,
            graph: Arc::clone(&graph),
            queries: test,
            target_type,
        },
        dev: TaskInstance {
            kind,
            graph,
            queries: dev,
            target_type,
        },
    }
}

/// Task 1 (Author): given a paper, re-discover its authors.
pub fn task1_author(net: &BibNet, n_test: usize, n_dev: usize, seed: u64) -> TaskSplit {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pool: Vec<usize> = (0..net.papers.len())
        .filter(|&i| !net.paper_authors[i].is_empty())
        .collect();
    let (test_idx, dev_idx) = sample_disjoint(&pool, n_test, n_dev, &mut rng);

    let mut drop = HashSet::new();
    let make = |idx: &[usize], drop: &mut HashSet<(u32, u32)>| -> Vec<TaskQuery> {
        idx.iter()
            .map(|&i| {
                let paper = net.papers[i];
                let gt = net.paper_authors[i].clone();
                for &a in &gt {
                    drop.insert((paper.0, a.0));
                    drop.insert((a.0, paper.0));
                }
                TaskQuery {
                    query: Query::single(paper),
                    ground_truth: gt,
                }
            })
            .collect()
    };
    let test = make(&test_idx, &mut drop);
    let dev = make(&dev_idx, &mut drop);
    let graph = remove_edges(&net.graph, &drop);
    build_split(TaskKind::Author, graph, net.author_type(), test, dev)
}

/// Task 2 (Venue): given a paper, re-discover its venue.
pub fn task2_venue(net: &BibNet, n_test: usize, n_dev: usize, seed: u64) -> TaskSplit {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pool: Vec<usize> = (0..net.papers.len()).collect();
    let (test_idx, dev_idx) = sample_disjoint(&pool, n_test, n_dev, &mut rng);

    let mut drop = HashSet::new();
    let make = |idx: &[usize], drop: &mut HashSet<(u32, u32)>| -> Vec<TaskQuery> {
        idx.iter()
            .map(|&i| {
                let paper = net.papers[i];
                let venue = net.paper_venue[i];
                drop.insert((paper.0, venue.0));
                drop.insert((venue.0, paper.0));
                TaskQuery {
                    query: Query::single(paper),
                    ground_truth: vec![venue],
                }
            })
            .collect()
    };
    let test = make(&test_idx, &mut drop);
    let dev = make(&dev_idx, &mut drop);
    let graph = remove_edges(&net.graph, &drop);
    build_split(TaskKind::Venue, graph, net.venue_type(), test, dev)
}

/// Task 3 (Relevant URL): given a phrase, re-discover one clicked URL
/// (chosen uniformly at random, as in the paper).
pub fn task3_relevant_url(qlog: &QLog, n_test: usize, n_dev: usize, seed: u64) -> TaskSplit {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Only phrases with ≥ 2 clicked URLs qualify: removing the single edge
    // of a 1-URL phrase would disconnect it entirely.
    let pool: Vec<NodeId> = qlog
        .phrases
        .iter()
        .copied()
        .filter(|&p| qlog.clicked_urls(p).len() >= 2)
        .collect();
    let (test_ph, dev_ph) = sample_disjoint(&pool, n_test, n_dev, &mut rng);

    let mut drop = HashSet::new();
    let mut make = |phs: &[NodeId], drop: &mut HashSet<(u32, u32)>| -> Vec<TaskQuery> {
        phs.iter()
            .map(|&ph| {
                // A "randomly chosen clicked URL" in a real log is a random
                // *click event*, so sample URLs proportionally to their click
                // counts — this is what makes Task 3 importance-leaning in
                // the paper (users click well-known sites).
                let url_ty = qlog.url_type();
                // Tempered (clicks^0.75) weighting: real relevance judgments
                // correlate with clicks but are not pure click-frequency.
                let weighted: Vec<(NodeId, f64)> = qlog
                    .graph
                    .out_edges_weighted(ph)
                    .filter(|&(v, _)| qlog.graph.node_type(v) == url_ty)
                    .map(|(v, w)| (v, w.powf(0.75)))
                    .collect();
                let total: f64 = weighted.iter().map(|&(_, w)| w).sum();
                let mut pick = rng.gen::<f64>() * total;
                let mut chosen = weighted.last().expect("has clicks").0;
                for &(url, w) in &weighted {
                    pick -= w;
                    if pick <= 0.0 {
                        chosen = url;
                        break;
                    }
                }
                drop.insert((ph.0, chosen.0));
                drop.insert((chosen.0, ph.0));
                TaskQuery {
                    query: Query::single(ph),
                    ground_truth: vec![chosen],
                }
            })
            .collect()
    };
    let test = make(&test_ph, &mut drop);
    let dev = make(&dev_ph, &mut drop);
    let graph = remove_edges(&qlog.graph, &drop);
    build_split(TaskKind::RelevantUrl, graph, qlog.url_type(), test, dev)
}

/// Task 4 (Equivalent search): given a phrase, re-discover its equivalents.
/// No edges are removed — equivalents are only ever connected through URLs.
pub fn task4_equivalent(qlog: &QLog, n_test: usize, n_dev: usize, seed: u64) -> TaskSplit {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pool: Vec<NodeId> = qlog
        .phrases
        .iter()
        .copied()
        .filter(|&p| !qlog.equivalents(p).is_empty())
        .collect();
    let (test_ph, dev_ph) = sample_disjoint(&pool, n_test, n_dev, &mut rng);

    let make = |phs: &[NodeId]| -> Vec<TaskQuery> {
        phs.iter()
            .map(|&ph| TaskQuery {
                query: Query::single(ph),
                ground_truth: qlog.equivalents(ph),
            })
            .collect()
    };
    let test = make(&test_ph);
    let dev = make(&dev_ph);
    build_split(
        TaskKind::EquivalentSearch,
        qlog.graph.clone(),
        qlog.phrase_type(),
        test,
        dev,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_datagen::{BibNetConfig, QLogConfig};

    fn net() -> BibNet {
        BibNet::generate(&BibNetConfig::tiny(), 1)
    }

    fn qlog() -> QLog {
        QLog::generate(&QLogConfig::tiny(), 1)
    }

    #[test]
    fn task1_removes_author_edges() {
        let net = net();
        let split = task1_author(&net, 10, 5, 7);
        assert_eq!(split.test.queries.len(), 10);
        assert_eq!(split.dev.queries.len(), 5);
        for tq in &split.test.queries {
            let paper = tq.query.nodes()[0];
            for &a in &tq.ground_truth {
                assert!(
                    !split.test.graph.has_edge(paper, a),
                    "author edge not removed"
                );
                assert!(!split.test.graph.has_edge(a, paper));
            }
        }
    }

    #[test]
    fn task1_keeps_other_edges() {
        let net = net();
        let split = task1_author(&net, 5, 0, 7);
        // Papers keep their term edges (otherwise they'd be unreachable).
        for tq in &split.test.queries {
            let paper = tq.query.nodes()[0];
            assert!(
                split.test.graph.out_degree(paper) > 0,
                "query paper disconnected"
            );
        }
    }

    #[test]
    fn task2_single_venue_truth() {
        let net = net();
        let split = task2_venue(&net, 8, 4, 3);
        for tq in &split.test.queries {
            assert_eq!(tq.ground_truth.len(), 1);
            let paper = tq.query.nodes()[0];
            assert!(!split.test.graph.has_edge(paper, tq.ground_truth[0]));
        }
        assert_eq!(
            split.test.target_type,
            net.venue_type(),
            "ranking must filter to venues"
        );
    }

    #[test]
    fn test_and_dev_queries_disjoint() {
        let net = net();
        let split = task2_venue(&net, 20, 20, 11);
        let test_nodes: HashSet<NodeId> = split
            .test
            .queries
            .iter()
            .map(|q| q.query.nodes()[0])
            .collect();
        for dq in &split.dev.queries {
            assert!(!test_nodes.contains(&dq.query.nodes()[0]));
        }
    }

    #[test]
    fn task3_removes_exactly_chosen_url() {
        let q = qlog();
        let split = task3_relevant_url(&q, 10, 0, 5);
        for tq in &split.test.queries {
            let ph = tq.query.nodes()[0];
            let gt = tq.ground_truth[0];
            assert!(!split.test.graph.has_edge(ph, gt));
            // The phrase keeps at least one other URL.
            assert!(split.test.graph.out_degree(ph) >= 1);
        }
    }

    #[test]
    fn task4_ground_truth_is_equivalents() {
        let q = qlog();
        let split = task4_equivalent(&q, 10, 0, 5);
        for tq in &split.test.queries {
            assert!(!tq.ground_truth.is_empty());
            let ph = tq.query.nodes()[0];
            for &e in &tq.ground_truth {
                assert_ne!(e, ph);
                // Never directly connected (bipartite graph).
                assert!(!split.test.graph.has_edge(ph, e));
            }
        }
        // No edges removed: same edge count as the source graph.
        assert_eq!(split.test.graph.edge_count(), q.graph.edge_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let net = net();
        let a = task2_venue(&net, 10, 5, 42);
        let b = task2_venue(&net, 10, 5, 42);
        for (x, y) in a.test.queries.iter().zip(&b.test.queries) {
            assert_eq!(x.query.nodes(), y.query.nodes());
            assert_eq!(x.ground_truth, y.ground_truth);
        }
    }

    #[test]
    fn shared_graph_between_test_and_dev() {
        let net = net();
        let split = task1_author(&net, 5, 5, 1);
        assert!(Arc::ptr_eq(&split.test.graph, &split.dev.graph));
    }

    #[test]
    fn task_names() {
        assert_eq!(TaskKind::Author.name(), "Task 1 (Author)");
        assert_eq!(
            TaskKind::EquivalentSearch.name(),
            "Task 4 (Equivalent search)"
        );
    }
}
