//! Ranking quality metrics.
//!
//! * **NDCG@K with ungraded judgments** — the paper's effectiveness metric
//!   (Sect. VI-A "we then evaluate the filtered ranking against the ground
//!   truth using NDCG@K with ungraded judgments"): binary relevance,
//!   `DCG = Σ_{i: rel} 1/log2(i+1)`, normalized by the ideal DCG.
//! * **Precision@K** and **Kendall's tau** — the approximation-quality
//!   metrics of Fig. 11(b), comparing 2SBound's ranking to the exact one.

use rtr_graph::NodeId;
use std::collections::HashSet;

/// NDCG@K with binary (ungraded) relevance.
///
/// `ranking` is the filtered result list (best first); `relevant` the ground
/// truth set. Returns 0 when the ground truth is empty.
pub fn ndcg_at_k(ranking: &[NodeId], relevant: &[NodeId], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let rel: HashSet<NodeId> = relevant.iter().copied().collect();
    let mut dcg = 0.0;
    for (i, v) in ranking.iter().take(k).enumerate() {
        if rel.contains(v) {
            dcg += 1.0 / ((i + 2) as f64).log2();
        }
    }
    let ideal_hits = rel.len().min(k);
    let idcg: f64 = (0..ideal_hits).map(|i| 1.0 / ((i + 2) as f64).log2()).sum();
    dcg / idcg
}

/// Precision@K: fraction of the top K that is relevant.
pub fn precision_at_k(ranking: &[NodeId], relevant: &[NodeId], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let rel: HashSet<NodeId> = relevant.iter().copied().collect();
    let hits = ranking.iter().take(k).filter(|v| rel.contains(v)).count();
    hits as f64 / k as f64
}

/// Overlap-precision between an approximate and an exact top-K (Fig. 11b):
/// `|approx ∩ exact| / K`.
pub fn topk_overlap(approx: &[NodeId], exact: &[NodeId], k: usize) -> f64 {
    let exact_set: HashSet<NodeId> = exact.iter().take(k).copied().collect();
    let hits = approx
        .iter()
        .take(k)
        .filter(|v| exact_set.contains(v))
        .count();
    hits as f64 / k.max(1) as f64
}

/// Kendall's tau between an approximate ordering and an exact ordering.
///
/// Pairs are drawn from the approximate list; a pair is *concordant* when
/// the exact ranking orders it the same way. Items missing from the exact
/// order are placed after all present items (rank = ∞), matching how the
/// efficiency study penalizes retrieving a wrong node. Returns a value in
/// `[-1, 1]`; 1 = identical order.
pub fn kendall_tau(approx: &[NodeId], exact_order: &[NodeId]) -> f64 {
    let n = approx.len();
    if n < 2 {
        return 1.0;
    }
    let pos = |v: NodeId| -> usize {
        exact_order
            .iter()
            .position(|&e| e == v)
            .unwrap_or(usize::MAX)
    };
    let ranks: Vec<usize> = approx.iter().map(|&v| pos(v)).collect();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            match ranks[i].cmp(&ranks[j]) {
                std::cmp::Ordering::Less => concordant += 1,
                std::cmp::Ordering::Greater => discordant += 1,
                std::cmp::Ordering::Equal => {} // tie (both missing): ignored
            }
        }
    }
    let total = (n * (n - 1) / 2) as i64;
    (concordant - discordant) as f64 / total as f64
}

/// NDCG of an approximate top-K against the exact top-K treated as graded
/// ground truth with gain `1/(exact rank)` — the Fig. 11(b) "NDCG" curve,
/// which is gentler than precision because high-rank agreement dominates.
pub fn ndcg_vs_exact(approx: &[NodeId], exact: &[NodeId], k: usize) -> f64 {
    let gain = |v: NodeId| -> f64 {
        match exact.iter().take(k).position(|&e| e == v) {
            Some(r) => 1.0 / (r + 1) as f64,
            None => 0.0,
        }
    };
    let dcg: f64 = approx
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &v)| gain(v) / ((i + 2) as f64).log2())
        .sum();
    let idcg: f64 = (0..k.min(exact.len()))
        .map(|i| (1.0 / (i + 1) as f64) / ((i + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let ranking = ids(&[1, 2, 3, 4]);
        let relevant = ids(&[1, 2]);
        assert!((ndcg_at_k(&ranking, &relevant, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_degrades_with_rank() {
        let relevant = ids(&[9]);
        let top = ndcg_at_k(&ids(&[9, 1, 2]), &relevant, 3);
        let mid = ndcg_at_k(&ids(&[1, 9, 2]), &relevant, 3);
        let low = ndcg_at_k(&ids(&[1, 2, 9]), &relevant, 3);
        assert!(top > mid && mid > low);
        assert_eq!(top, 1.0);
    }

    #[test]
    fn ndcg_zero_when_missed() {
        assert_eq!(ndcg_at_k(&ids(&[1, 2]), &ids(&[9]), 2), 0.0);
    }

    #[test]
    fn ndcg_empty_ground_truth() {
        assert_eq!(ndcg_at_k(&ids(&[1]), &[], 5), 0.0);
    }

    #[test]
    fn ndcg_k_truncates() {
        let relevant = ids(&[5]);
        // relevant at position 3, but K = 2 cuts it off
        assert_eq!(ndcg_at_k(&ids(&[1, 2, 5]), &relevant, 2), 0.0);
    }

    #[test]
    fn precision_basics() {
        let relevant = ids(&[1, 3]);
        assert!((precision_at_k(&ids(&[1, 2, 3, 4]), &relevant, 4) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&ids(&[1, 3]), &relevant, 2), 1.0);
        assert_eq!(precision_at_k(&[], &relevant, 0), 0.0);
    }

    #[test]
    fn overlap_counts_set_intersection() {
        let approx = ids(&[1, 2, 3]);
        let exact = ids(&[3, 2, 9]);
        assert!((topk_overlap(&approx, &exact, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_identical_is_one() {
        let order = ids(&[4, 2, 7, 1]);
        assert_eq!(kendall_tau(&order, &order), 1.0);
    }

    #[test]
    fn kendall_reversed_is_minus_one() {
        let exact = ids(&[1, 2, 3, 4]);
        let approx = ids(&[4, 3, 2, 1]);
        assert_eq!(kendall_tau(&approx, &exact), -1.0);
    }

    #[test]
    fn kendall_single_swap() {
        let exact = ids(&[1, 2, 3, 4]);
        let approx = ids(&[1, 3, 2, 4]);
        // 1 discordant pair of 6: (5 - 1)/6
        assert!((kendall_tau(&approx, &exact) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_missing_items_rank_last() {
        let exact = ids(&[1, 2]);
        let approx = ids(&[1, 9, 2]); // 9 not in exact: ranks (0, ∞, 1)
                                      // pairs: (1,9) conc, (1,2) conc, (9,2) disc => (2-1)/3
        assert!((kendall_tau(&approx, &exact) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_vs_exact_perfect() {
        let exact = ids(&[5, 6, 7]);
        assert!((ndcg_vs_exact(&exact, &exact, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_vs_exact_penalizes_high_rank_errors_most() {
        let exact = ids(&[5, 6, 7, 8]);
        let wrong_top = ndcg_vs_exact(&ids(&[9, 6, 7, 8]), &exact, 4);
        let wrong_tail = ndcg_vs_exact(&ids(&[5, 6, 7, 9]), &exact, 4);
        assert!(wrong_tail > wrong_top);
    }
}
