//! Task evaluation runner: rank, filter, score, aggregate.
//!
//! For each query the paper's protocol is: compute the measure's full score
//! vector, "filter out the query node itself and nodes not of the target
//! type", then evaluate the filtered ranking against the ground truth with
//! NDCG@K (Sect. VI-A).

use crate::metrics::ndcg_at_k;
use crate::tasks::TaskInstance;
use crate::ttest::{paired_ttest, TTestResult};
use rtr_baselines::ProximityMeasure;
use std::collections::BTreeMap;

/// Per-measure evaluation output: per-query NDCG at each requested K.
#[derive(Clone, Debug)]
pub struct MeasureEval {
    /// Measure display name.
    pub name: String,
    /// `ndcg[k][i]` = NDCG@k of query `i`.
    pub ndcg: BTreeMap<usize, Vec<f64>>,
}

impl MeasureEval {
    /// Mean NDCG@k over all queries.
    pub fn mean_ndcg(&self, k: usize) -> f64 {
        let v = &self.ndcg[&k];
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Two-tail paired t-test of this measure's NDCG@k against another's.
    pub fn ttest_against(&self, other: &MeasureEval, k: usize) -> Option<TTestResult> {
        paired_ttest(&self.ndcg[&k], &other.ndcg[&k])
    }
}

/// Evaluate one measure on one task at the given cutoffs.
///
/// Queries whose computation fails (e.g. pathological parameters) panic —
/// a failed measurement must not silently skew the averages.
pub fn evaluate_measure(
    measure: &dyn ProximityMeasure,
    task: &TaskInstance,
    ks: &[usize],
) -> MeasureEval {
    let mut ndcg: BTreeMap<usize, Vec<f64>> = ks.iter().map(|&k| (k, Vec::new())).collect();
    for tq in &task.queries {
        let scores = measure
            .compute(&task.graph, &tq.query)
            .unwrap_or_else(|e| panic!("{} failed: {e}", measure.name()));
        let ranking = scores.filtered_ranking(&task.graph, task.target_type, tq.query.nodes());
        for &k in ks {
            ndcg.get_mut(&k)
                .expect("initialized")
                .push(ndcg_at_k(&ranking, &tq.ground_truth, k));
        }
    }
    MeasureEval {
        name: measure.name(),
        ndcg,
    }
}

/// Evaluate several measures on one task (the Fig. 5 / Fig. 9 table shape).
pub fn evaluate_all(
    measures: &[Box<dyn ProximityMeasure>],
    task: &TaskInstance,
    ks: &[usize],
) -> Vec<MeasureEval> {
    measures
        .iter()
        .map(|m| evaluate_measure(m.as_ref(), task, ks))
        .collect()
}

/// Render a Fig. 5-style table: rows = measures, columns = K cutoffs.
pub fn format_table(task_name: &str, evals: &[MeasureEval], ks: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{task_name}\n"));
    out.push_str(&format!("{:<28}", "measure"));
    for &k in ks {
        out.push_str(&format!("  NDCG@{k:<3}"));
    }
    out.push('\n');
    // Identify the best value per column for paper-style bolding (marked *).
    let best: Vec<f64> = ks
        .iter()
        .map(|&k| {
            evals
                .iter()
                .map(|e| e.mean_ndcg(k))
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    for e in evals {
        out.push_str(&format!("{:<28}", e.name));
        for (i, &k) in ks.iter().enumerate() {
            let v = e.mean_ndcg(k);
            let star = if (v - best[i]).abs() < 1e-12 {
                "*"
            } else {
                " "
            };
            out.push_str(&format!("  {v:.4}{star}  "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::task2_venue;
    use rtr_baselines::prelude::*;
    use rtr_core::prelude::*;
    use rtr_datagen::{BibNet, BibNetConfig};

    fn split() -> crate::tasks::TaskSplit {
        let net = BibNet::generate(&BibNetConfig::tiny(), 3);
        task2_venue(&net, 15, 5, 9)
    }

    #[test]
    fn evaluation_produces_per_query_scores() {
        let s = split();
        let eval = evaluate_measure(
            &RoundTripRank::new(RankParams::default()),
            &s.test,
            &[5, 10],
        );
        assert_eq!(eval.ndcg[&5].len(), 15);
        assert_eq!(eval.ndcg[&10].len(), 15);
        for &v in &eval.ndcg[&5] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn rtr_recovers_venues_better_than_random() {
        // With the venue edge removed, RTR should still often find the venue
        // through coauthors/terms/citations; random would score ~1/9.
        let s = split();
        let eval = evaluate_measure(&RoundTripRank::new(RankParams::default()), &s.test, &[5]);
        assert!(
            eval.mean_ndcg(5) > 0.2,
            "RTR NDCG@5 = {} looks broken",
            eval.mean_ndcg(5)
        );
    }

    #[test]
    fn ndcg_at_larger_k_is_no_smaller() {
        let s = split();
        let eval = evaluate_measure(&FRank::new(RankParams::default()), &s.test, &[5, 10, 20]);
        assert!(eval.mean_ndcg(10) >= eval.mean_ndcg(5) - 1e-12);
        assert!(eval.mean_ndcg(20) >= eval.mean_ndcg(10) - 1e-12);
    }

    #[test]
    fn ttest_between_measures_runs() {
        let s = split();
        let a = evaluate_measure(&RoundTripRank::new(RankParams::default()), &s.test, &[5]);
        let b = evaluate_measure(&AdamicAdar::new(), &s.test, &[5]);
        // Either a valid result or degenerate (identical scores).
        if let Some(t) = a.ttest_against(&b, 5) {
            assert!(t.p >= 0.0 && t.p <= 1.0);
        }
    }

    #[test]
    fn table_formatting_marks_best() {
        let s = split();
        let evals = evaluate_all(
            &[
                Box::new(RoundTripRank::new(RankParams::default())) as Box<dyn ProximityMeasure>,
                Box::new(AdamicAdar::new()),
            ],
            &s.test,
            &[5],
        );
        let table = format_table("Task 2", &evals, &[5]);
        assert!(table.contains("RoundTripRank"));
        assert!(table.contains("AdamicAdar"));
        assert!(table.contains('*'));
    }
}
