//! β tuning on development queries (paper Sect. VI-A2: "to choose the
//! optimal β, we use 1000 randomly sampled development queries that do not
//! overlap with the test queries") and the efficient β sweep behind Fig. 8.

use crate::metrics::ndcg_at_k;
use crate::runner::evaluate_measure;
use crate::tasks::TaskInstance;
use rtr_baselines::ProximityMeasure;
use rtr_core::prelude::*;

/// The paper's β grid (Fig. 8 sweeps [0, 1]).
pub fn beta_grid() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// Select the best β from a `(β, score)` curve.
///
/// Regularized toward the paper's default: among candidates within 1%
/// (relative) of the maximum, the β closest to 0.5 wins. On small
/// development sets the curve is noisy and nearly flat in places; without
/// this tie-break the argmax jumps to an extreme on sampling noise, exactly
/// the failure mode the paper's "fall back to the default β = 0.5" advice
/// guards against.
pub fn pick_beta(curve: &[(f64, f64)]) -> (f64, f64) {
    assert!(!curve.is_empty(), "need at least one candidate β");
    let best_score = curve
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::NEG_INFINITY, f64::max);
    let threshold = best_score - best_score.abs() * 0.01;
    curve
        .iter()
        .copied()
        .filter(|&(_, s)| s >= threshold)
        .min_by(|a, b| {
            (a.0 - 0.5)
                .abs()
                .partial_cmp(&(b.0 - 0.5).abs())
                .expect("finite β")
        })
        .expect("non-empty after filter")
}

/// Tune β for any measure family: evaluates `factory(β)` on the dev split
/// for each candidate and returns `(best_beta, its_dev_ndcg)` via
/// [`pick_beta`].
pub fn tune_beta<F>(factory: F, dev: &TaskInstance, betas: &[f64], k: usize) -> (f64, f64)
where
    F: Fn(f64) -> Box<dyn ProximityMeasure>,
{
    assert!(!betas.is_empty(), "need at least one candidate β");
    let curve: Vec<(f64, f64)> = betas
        .iter()
        .map(|&beta| {
            let eval = evaluate_measure(factory(beta).as_ref(), dev, &[k]);
            (beta, eval.mean_ndcg(k))
        })
        .collect();
    pick_beta(&curve)
}

/// Efficient β sweep for RoundTripRank+ (Fig. 8): computes F-Rank and T-Rank
/// **once per query** and blends for every β, instead of recomputing the
/// fixed points per grid point.
///
/// Returns `(β, mean NDCG@k)` pairs in grid order.
pub fn sweep_beta_rtr_plus(
    task: &TaskInstance,
    betas: &[f64],
    k: usize,
    params: RankParams,
) -> Vec<(f64, f64)> {
    let mut totals = vec![0.0f64; betas.len()];
    let frank = FRank::new(params);
    let trank = TRank::new(params);
    for tq in &task.queries {
        let f = frank
            .compute(&task.graph, &tq.query)
            .expect("F-Rank failed");
        let t = trank
            .compute(&task.graph, &tq.query)
            .expect("T-Rank failed");
        for (i, &beta) in betas.iter().enumerate() {
            let blended = f.geometric_blend(&t, beta);
            let ranking = blended.filtered_ranking(&task.graph, task.target_type, tq.query.nodes());
            totals[i] += ndcg_at_k(&ranking, &tq.ground_truth, k);
        }
    }
    let n = task.queries.len().max(1) as f64;
    betas
        .iter()
        .zip(&totals)
        .map(|(&b, &s)| (b, s / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{task2_venue, task4_equivalent};
    use rtr_datagen::{BibNet, BibNetConfig, QLog, QLogConfig};

    #[test]
    fn grid_shape() {
        let g = beta_grid();
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[10], 1.0);
    }

    #[test]
    fn sweep_matches_direct_evaluation() {
        let net = BibNet::generate(&BibNetConfig::tiny(), 5);
        let split = task2_venue(&net, 8, 0, 2);
        let params = RankParams::default();
        let swept = sweep_beta_rtr_plus(&split.test, &[0.3], 5, params);
        let direct = evaluate_measure(
            &RoundTripRankPlus::new(params, 0.3).unwrap(),
            &split.test,
            &[5],
        );
        assert!(
            (swept[0].1 - direct.mean_ndcg(5)).abs() < 1e-9,
            "sweep {} vs direct {}",
            swept[0].1,
            direct.mean_ndcg(5)
        );
    }

    #[test]
    fn extreme_betas_not_optimal_on_equivalent_search() {
        // Paper Fig. 8(d): Task 4 peaks at β* > 0.5; β = 0 (pure importance)
        // must not win.
        let qlog = QLog::generate(&QLogConfig::tiny(), 5);
        let split = task4_equivalent(&qlog, 20, 0, 2);
        let curve = sweep_beta_rtr_plus(&split.test, &beta_grid(), 5, RankParams::default());
        let at0 = curve[0].1;
        let best = curve.iter().fold((0.0, f64::NEG_INFINITY), |acc, &(b, s)| {
            if s > acc.1 {
                (b, s)
            } else {
                acc
            }
        });
        assert!(
            best.1 > at0,
            "β=0 should not be optimal for equivalent search"
        );
        assert!(best.0 > 0.0);
    }

    #[test]
    fn tune_beta_returns_grid_member() {
        let net = BibNet::generate(&BibNetConfig::tiny(), 5);
        let split = task2_venue(&net, 4, 6, 2);
        let params = RankParams::default();
        let (beta, score) = tune_beta(
            |b| Box::new(RoundTripRankPlus::new(params, b).unwrap()),
            &split.dev,
            &[0.2, 0.5, 0.8],
            5,
        );
        assert!([0.2, 0.5, 0.8].contains(&beta));
        assert!((0.0..=1.0).contains(&score));
    }
}
