#![deny(missing_docs)]
//! # rtr-eval — evaluation substrate for the RoundTripRank reproduction
//!
//! Everything the paper's experimental section (Sect. VI) needs:
//!
//! * [`metrics`] — NDCG@K with ungraded judgments (effectiveness), plus
//!   precision/overlap and Kendall's tau (approximation quality, Fig. 11b);
//! * [`ttest`] — two-tail paired t-tests (the paper reports p < 0.01);
//! * [`tasks`] — the four ground-truth ranking tasks with edge reservation
//!   (Task 1 Author, Task 2 Venue, Task 3 Relevant URL, Task 4 Equivalent
//!   search);
//! * [`runner`] — rank → filter-by-type → NDCG aggregation over query sets;
//! * [`tuning`] — β selection on development queries and the efficient
//!   f/t-reusing β sweep behind Fig. 8.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod runner;
pub mod tasks;
pub mod ttest;
pub mod tuning;

pub use metrics::{kendall_tau, ndcg_at_k, ndcg_vs_exact, precision_at_k, topk_overlap};
pub use runner::{evaluate_all, evaluate_measure, format_table, MeasureEval};
pub use tasks::{TaskInstance, TaskKind, TaskQuery, TaskSplit};
pub use ttest::{paired_ttest, two_tail_p, TTestResult};
pub use tuning::{beta_grid, pick_beta, sweep_beta_rtr_plus, tune_beta};
