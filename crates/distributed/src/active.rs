//! The AP-side active graph: the incrementally assembled active set.
//!
//! "AP queries the graph processors over a network, which are responsible
//! for identifying and sending back the new active nodes and edges.
//! Subsequently, AP incrementally assembles the active set from the
//! responses" (paper Sect. V-B2).
//!
//! [`ActiveGraph`] is the AP's only view of the graph, and it implements
//! [`AdjacencyAccess`] — the same trait the in-memory [`rtr_graph::Graph`]
//! implements — so the *local* bound engines run against it unchanged.
//! Adjacency is available only for nodes whose blocks are resident; the
//! engines announce what they are about to touch through
//! [`AdjacencyAccess::ensure`], which is where the two distributed-only
//! behaviours live:
//!
//! * **Cross-query block cache** ([`BlockCache`]): resident blocks are
//!   keyed by the source graph's epoch and *survive between queries*, so a
//!   worker serving a warm region stops paying wire cost for it entirely.
//!   The cache self-invalidates when it meets a cluster striped from a
//!   different (or `bump_epoch`ed) graph.
//! * **Frontier prefetch**: an `ensure` carrying a
//!   [`FetchHint::OutFrontier`] / [`FetchHint::InFrontier`] hint batches a
//!   speculative fetch of the requested nodes' missing out-/in-neighbors —
//!   the blocks the next expansion round will demand — collapsing the
//!   round-trip-per-expansion pattern into roughly one round per two.
//!
//! Every fetch is metered (rounds, demanded blocks, prefetched blocks,
//! cache hits, payload bytes), and the per-query *touched set* is tracked
//! separately from cache residency so the Fig. 12 active-set measurements
//! stay exact under caching: `active_nodes = blocks_fetched +
//! blocks_from_cache` always holds.

use crate::gp::{GpCluster, ReplySlot};
use rtr_graph::wire::NodeBlock;
use rtr_graph::{AdjacencyAccess, AdjacencyError, FetchHint, NodeId, NodeSet};
use rtr_obs::{Counter, QueryTrace, TraceStage};
use std::collections::HashMap;
use std::sync::Arc;

/// Registry-backed counters a [`BlockCache`] publishes its lifecycle events
/// into, once armed via [`BlockCache::set_metrics`]. Each is a shared
/// [`rtr_obs::Counter`] handle (typically obtained from a
/// [`rtr_obs::Registry`] with a per-worker label), so recording is a single
/// relaxed atomic add and an unarmed cache costs one branch.
#[derive(Clone, Debug, Default)]
pub struct BlockCacheMetrics {
    /// Demanded blocks served from the warm cache (no wire traffic).
    pub hits: Arc<Counter>,
    /// Resident blocks dropped because the cache exceeded its block
    /// budget between queries.
    pub evictions: Arc<Counter>,
    /// Resident blocks dropped because the graph epoch changed (the
    /// blocks belonged to a different or re-stamped graph).
    pub invalidations: Arc<Counter>,
}

/// Default cap on speculative blocks per prefetch round.
pub const DEFAULT_PREFETCH_LIMIT: usize = 256;
/// Default resident-block budget before the cache clears itself.
pub const DEFAULT_MAX_BLOCKS: usize = 65_536;

/// Cross-query resident-block storage for one AP-side worker.
///
/// Lives in the worker's `DistributedWorkspace` and is handed to each
/// query's [`ActiveGraph`]. Blocks persist until the graph epoch changes
/// or the block budget overflows (checked between queries, so a running
/// query never loses a block it already touched).
#[derive(Debug)]
pub struct BlockCache {
    /// Epoch of the graph the resident blocks came from.
    epoch: u64,
    blocks: HashMap<u32, NodeBlock>,
    /// Per-query touched set (ids this query `ensure`d), cleared per query.
    touched: NodeSet,
    /// Scratch: ids already slated for fetch in the current round.
    pending: NodeSet,
    /// Scratch: the fetch list under assembly.
    fetch_ids: Vec<NodeId>,
    prefetch_limit: usize,
    max_blocks: usize,
    /// Optional registry-backed lifecycle counters (hits / evictions /
    /// invalidations); `None` keeps the cache observation-free.
    metrics: Option<BlockCacheMetrics>,
}

impl BlockCache {
    /// An empty cache with the default prefetch/budget knobs.
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_PREFETCH_LIMIT, DEFAULT_MAX_BLOCKS)
    }

    /// An empty cache with explicit knobs: `prefetch_limit` caps the
    /// speculative blocks fetched per frontier round (0 disables
    /// prefetching), `max_blocks` bounds cross-query residency (the cache
    /// clears itself between queries once it exceeds the budget).
    pub fn with_limits(prefetch_limit: usize, max_blocks: usize) -> Self {
        BlockCache {
            epoch: 0, // matches no real graph: first use always re-keys
            blocks: HashMap::new(),
            touched: NodeSet::new(),
            pending: NodeSet::new(),
            fetch_ids: Vec::new(),
            prefetch_limit,
            max_blocks,
            metrics: None,
        }
    }

    /// Arm registry-backed counters: from now on, warm-cache hits and
    /// between-query evictions/invalidations are also published through
    /// `metrics` (the internal per-query meters are unaffected).
    pub fn set_metrics(&mut self, metrics: BlockCacheMetrics) {
        self.metrics = Some(metrics);
    }

    /// Resident blocks currently held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no block is resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The epoch the resident blocks belong to (0 = never used).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Default for BlockCache {
    fn default() -> Self {
        Self::new()
    }
}

/// One query's view of the striped graph: the worker's [`BlockCache`] bound
/// to a [`GpCluster`], with per-query fetch meters. Implements
/// [`AdjacencyAccess`], so `rtr_topk`'s engines run on it directly.
pub struct ActiveGraph<'a> {
    cluster: &'a GpCluster,
    cache: &'a mut BlockCache,
    slot: &'a mut ReplySlot,
    trace: Option<&'a mut QueryTrace>,
    node_count: usize,
    fetch_requests: usize,
    blocks_fetched: usize,
    blocks_prefetched: usize,
    blocks_from_cache: usize,
    bytes_transferred: usize,
}

impl<'a> ActiveGraph<'a> {
    /// Bind `cache` (and the reusable reply `slot`) to `cluster` for one
    /// query. Validates the cache's epoch against the cluster's — stale
    /// blocks from another graph are dropped wholesale — and enforces the
    /// block budget, both *before* the query starts, so nothing resident
    /// can disappear mid-query.
    pub fn new(cluster: &'a GpCluster, cache: &'a mut BlockCache, slot: &'a mut ReplySlot) -> Self {
        Self::with_trace(cluster, cache, slot, None)
    }

    /// Like [`ActiveGraph::new`], additionally stamping a
    /// [`TraceStage::FetchRound`] event into `trace` for every wire round
    /// this query issues.
    pub fn with_trace(
        cluster: &'a GpCluster,
        cache: &'a mut BlockCache,
        slot: &'a mut ReplySlot,
        trace: Option<&'a mut QueryTrace>,
    ) -> Self {
        if cache.epoch != cluster.epoch() {
            if let Some(m) = &cache.metrics {
                m.invalidations.add(cache.blocks.len() as u64);
            }
            cache.blocks.clear();
            cache.epoch = cluster.epoch();
        } else if cache.blocks.len() > cache.max_blocks {
            if let Some(m) = &cache.metrics {
                m.evictions.add(cache.blocks.len() as u64);
            }
            cache.blocks.clear();
        }
        cache.touched.ensure_capacity(cluster.node_count());
        cache.touched.clear();
        cache.pending.ensure_capacity(cluster.node_count());
        cache.pending.clear();
        ActiveGraph {
            node_count: cluster.node_count(),
            cluster,
            cache,
            slot,
            trace,
            fetch_requests: 0,
            blocks_fetched: 0,
            blocks_prefetched: 0,
            blocks_from_cache: 0,
            bytes_transferred: 0,
        }
    }

    /// The resident block for `v`, if resident.
    pub fn block(&self, v: NodeId) -> Option<&NodeBlock> {
        self.cache.blocks.get(&v.0)
    }

    fn resident_block(&self, v: NodeId) -> &NodeBlock {
        self.cache
            .blocks
            .get(&v.0)
            .unwrap_or_else(|| panic!("node {v:?} not in active set"))
    }

    /// Whether a node's block is resident (cache-wide, not per-query).
    pub fn is_resident(&self, v: NodeId) -> bool {
        self.cache.blocks.contains_key(&v.0)
    }

    /// One wire round: fetch `cache.fetch_ids` from the owning GPs and make
    /// the returned blocks resident. Returns how many blocks arrived.
    fn fetch_round(&mut self) -> Result<usize, AdjacencyError> {
        self.fetch_requests += 1;
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(TraceStage::FetchRound);
        }
        let (blocks, bytes) = self.cluster.fetch(&self.cache.fetch_ids, self.slot)?;
        self.bytes_transferred += bytes;
        let n = blocks.len();
        for b in blocks {
            self.cache.blocks.insert(b.node.0, b);
        }
        Ok(n)
    }

    /// Fetch requests (wire rounds, demand + prefetch) issued this query.
    pub fn fetch_requests(&self) -> usize {
        self.fetch_requests
    }

    /// Demanded blocks received over the wire this query.
    pub fn blocks_fetched(&self) -> usize {
        self.blocks_fetched
    }

    /// Speculatively prefetched blocks received over the wire this query.
    pub fn blocks_prefetched(&self) -> usize {
        self.blocks_prefetched
    }

    /// Demanded blocks served from the warm cache this query (no wire).
    pub fn blocks_from_cache(&self) -> usize {
        self.blocks_from_cache
    }

    /// Payload bytes received over the wire this query.
    pub fn bytes_transferred(&self) -> usize {
        self.bytes_transferred
    }

    /// Nodes this query touched (demanded), the paper's active-set size —
    /// always `blocks_fetched() + blocks_from_cache()`.
    pub fn touched_nodes(&self) -> usize {
        self.cache.touched.len()
    }

    /// Directed edges (both stored directions) of the touched nodes.
    pub fn touched_edges(&self) -> usize {
        self.cache
            .touched
            .iter()
            .map(|v| {
                let b = &self.cache.blocks[&v];
                b.out_edges.len() + b.in_edges.len()
            })
            .sum()
    }

    /// Wire-encoding bytes of the touched nodes' blocks (the paper's MB
    /// numbers for the active set).
    pub fn touched_bytes(&self) -> usize {
        self.cache
            .touched
            .iter()
            .map(|v| self.cache.blocks[&v].encoded_len())
            .sum()
    }
}

impl AdjacencyAccess for ActiveGraph<'_> {
    type Edges<'b>
        = std::iter::Copied<std::slice::Iter<'b, (NodeId, f64)>>
    where
        Self: 'b;

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn has_self_loops(&self) -> bool {
        self.cluster.has_self_loops()
    }

    fn out_degree(&self, v: NodeId) -> usize {
        self.resident_block(v).out_edges.len()
    }

    fn in_degree(&self, v: NodeId) -> usize {
        self.resident_block(v).in_edges.len()
    }

    fn node_footprint_bytes(&self, v: NodeId) -> usize {
        self.resident_block(v).footprint_bytes()
    }

    fn out_edges(&self, v: NodeId) -> Self::Edges<'_> {
        self.resident_block(v).out_edges.iter().copied()
    }

    fn in_edges(&self, v: NodeId) -> Self::Edges<'_> {
        self.resident_block(v).in_edges.iter().copied()
    }

    /// Make `ids` resident: demanded ids missing from the cache are fetched
    /// in one batched round; under a frontier hint, the requested nodes'
    /// missing neighbors (out- for [`FetchHint::OutFrontier`], in- for
    /// [`FetchHint::InFrontier`]) are then prefetched in a second round,
    /// capped at the cache's prefetch limit. Once a region is warm, both
    /// rounds vanish — every id is resident and no candidate is missing.
    fn ensure(&mut self, ids: &[u32], hint: FetchHint) -> Result<(), AdjacencyError> {
        // Demand phase: first touch of each id classifies it as a cache hit
        // or a wire fetch — exactly one of the two, which is what keeps the
        // active-set accounting exact under caching.
        self.cache.fetch_ids.clear();
        for &id in ids {
            if !self.cache.touched.insert(id) {
                continue; // already touched this query
            }
            if self.cache.blocks.contains_key(&id) {
                self.blocks_from_cache += 1;
                if let Some(m) = &self.cache.metrics {
                    m.hits.inc();
                }
            } else {
                self.cache.fetch_ids.push(NodeId(id));
            }
        }
        if !self.cache.fetch_ids.is_empty() {
            self.blocks_fetched += self.fetch_round()?;
        }
        // Prefetch phase: speculate on the next round's demand.
        if hint == FetchHint::Demand || self.cache.prefetch_limit == 0 {
            return Ok(());
        }
        self.cache.pending.clear();
        self.cache.fetch_ids.clear();
        'collect: for &id in ids {
            let Some(block) = self.cache.blocks.get(&id) else {
                continue; // demanded but absent from the stripe: nothing to walk
            };
            let neighbors = match hint {
                FetchHint::OutFrontier => &block.out_edges,
                FetchHint::InFrontier => &block.in_edges,
                FetchHint::Demand => unreachable!(),
            };
            for &(n, _) in neighbors {
                if self.cache.blocks.contains_key(&n.0) || !self.cache.pending.insert(n.0) {
                    continue;
                }
                self.cache.fetch_ids.push(n);
                if self.cache.fetch_ids.len() >= self.cache.prefetch_limit {
                    break 'collect;
                }
            }
        }
        if !self.cache.fetch_ids.is_empty() {
            // Deterministic wire order (neighbor discovery order is not).
            self.cache.fetch_ids.sort_unstable();
            self.blocks_prefetched += self.fetch_round()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    fn harness() -> (rtr_graph::Graph, rtr_graph::toy::Fig2Ids, GpCluster) {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        (g, ids, cluster)
    }

    #[test]
    fn demand_paging_fetches_once() {
        let (_, ids, cluster) = harness();
        let mut cache = BlockCache::new();
        let mut slot = ReplySlot::new();
        let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
        active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
        assert_eq!(active.fetch_requests(), 1);
        assert_eq!(active.blocks_fetched(), 1);
        // Second ensure is free: already touched.
        active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
        assert_eq!(active.fetch_requests(), 1);
        assert!(active.is_resident(ids.t1));
        assert_eq!(active.touched_nodes(), 1);
    }

    #[test]
    fn adjacency_matches_source_graph() {
        let (g, ids, cluster) = harness();
        let mut cache = BlockCache::new();
        let mut slot = ReplySlot::new();
        let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
        active.ensure(&[ids.v2.0], FetchHint::Demand).unwrap();
        let expected: Vec<(NodeId, f64)> = g.out_edges(ids.v2).collect();
        let got: Vec<(NodeId, f64)> = active.out_edges(ids.v2).collect();
        assert_eq!(got, expected);
        assert_eq!(active.out_degree(ids.v2), 2);
        assert_eq!(
            active.node_footprint_bytes(ids.v2),
            g.node_footprint_bytes(ids.v2)
        );
    }

    #[test]
    #[should_panic(expected = "not in active set")]
    fn touching_unfetched_node_panics() {
        let (_, ids, cluster) = harness();
        let mut cache = BlockCache::new();
        let mut slot = ReplySlot::new();
        let active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
        let _ = active.out_edges(ids.t1);
    }

    #[test]
    fn cache_survives_across_queries() {
        let (_, ids, cluster) = harness();
        let mut cache = BlockCache::new();
        let mut slot = ReplySlot::new();
        {
            let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
            active
                .ensure(&[ids.t1.0, ids.v1.0], FetchHint::Demand)
                .unwrap();
            assert_eq!(active.blocks_fetched(), 2);
            assert_eq!(active.blocks_from_cache(), 0);
        }
        // Same cache, next query: both blocks are warm.
        let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
        active
            .ensure(&[ids.t1.0, ids.v1.0], FetchHint::Demand)
            .unwrap();
        assert_eq!(active.blocks_fetched(), 0);
        assert_eq!(active.blocks_from_cache(), 2);
        assert_eq!(active.bytes_transferred(), 0);
        // Touched accounting still reports the full per-query active set.
        assert_eq!(active.touched_nodes(), 2);
    }

    #[test]
    fn epoch_change_invalidates_cache() {
        let (g, ids, cluster) = harness();
        let mut cache = BlockCache::new();
        let mut slot = ReplySlot::new();
        {
            let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
            active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
        }
        assert_eq!(cache.len(), 1);
        // A cluster over a re-stamped clone of the graph: different epoch,
        // so the warm block must NOT be served.
        let mut g2 = g.clone();
        g2.bump_epoch();
        let cluster2 = GpCluster::spawn(&g2, 2);
        let mut active = ActiveGraph::new(&cluster2, &mut cache, &mut slot);
        active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
        assert_eq!(active.blocks_from_cache(), 0);
        assert_eq!(active.blocks_fetched(), 1);
    }

    #[test]
    fn out_frontier_prefetches_neighbors() {
        let (g, ids, cluster) = harness();
        let mut cache = BlockCache::new();
        let mut slot = ReplySlot::new();
        let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
        active.ensure(&[ids.t1.0], FetchHint::OutFrontier).unwrap();
        assert_eq!(active.blocks_fetched(), 1);
        assert_eq!(active.blocks_prefetched(), g.out_degree(ids.t1));
        // Every out-neighbor is now resident without having been demanded.
        for (n, _) in g.out_edges(ids.t1) {
            assert!(active.is_resident(n));
        }
        // ... and the active set only counts the demanded node.
        assert_eq!(active.touched_nodes(), 1);
    }

    #[test]
    fn prefetch_disabled_at_zero_limit() {
        let (_, ids, cluster) = harness();
        let mut cache = BlockCache::with_limits(0, DEFAULT_MAX_BLOCKS);
        let mut slot = ReplySlot::new();
        let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
        active.ensure(&[ids.t1.0], FetchHint::OutFrontier).unwrap();
        assert_eq!(active.blocks_prefetched(), 0);
        assert_eq!(active.fetch_requests(), 1);
    }

    #[test]
    fn block_budget_clears_between_queries() {
        let (_, ids, cluster) = harness();
        let mut cache = BlockCache::with_limits(0, 1);
        let mut slot = ReplySlot::new();
        {
            let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
            active
                .ensure(&[ids.t1.0, ids.v1.0], FetchHint::Demand)
                .unwrap();
        }
        assert_eq!(cache.len(), 2); // over budget, but intact mid-query
        let active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
        assert_eq!(active.cache.blocks.len(), 0); // evicted on rebind
    }

    #[test]
    fn armed_metrics_count_hits_evictions_and_invalidations() {
        let (g, ids, cluster) = harness();
        let mut cache = BlockCache::with_limits(0, 1);
        let metrics = BlockCacheMetrics::default();
        cache.set_metrics(metrics.clone());
        let mut slot = ReplySlot::new();
        {
            let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
            active
                .ensure(&[ids.t1.0, ids.v1.0], FetchHint::Demand)
                .unwrap();
            // Second touch in the same query is deduped, not a hit.
            active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
        }
        assert_eq!(metrics.hits.get(), 0);
        {
            // Rebind: 2 resident blocks exceed the budget of 1 → evicted.
            let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
            assert_eq!(metrics.evictions.get(), 2);
            active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
            active
                .ensure(&[ids.t1.0, ids.v1.0], FetchHint::Demand)
                .unwrap();
        }
        // t1 was resident when re-demanded (within budget mid-query).
        assert_eq!(metrics.hits.get(), 0, "same-query re-touch is deduped");
        {
            let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
            // Budget of 1 evicted again; refetch t1 then warm-hit nothing new.
            assert_eq!(metrics.evictions.get(), 4);
            active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
        }
        // Epoch change: the resident block is invalidated, not evicted.
        let mut g2 = g.clone();
        g2.bump_epoch();
        let cluster2 = GpCluster::spawn(&g2, 2);
        let _ = ActiveGraph::new(&cluster2, &mut cache, &mut slot);
        assert_eq!(metrics.invalidations.get(), 1);
        assert_eq!(metrics.evictions.get(), 4);
    }

    #[test]
    fn warm_hit_increments_armed_hit_counter() {
        let (_, ids, cluster) = harness();
        let mut cache = BlockCache::new();
        let metrics = BlockCacheMetrics::default();
        cache.set_metrics(metrics.clone());
        let mut slot = ReplySlot::new();
        {
            let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
            active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
        }
        let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
        active.ensure(&[ids.t1.0], FetchHint::Demand).unwrap();
        assert_eq!(metrics.hits.get(), 1);
        assert_eq!(active.blocks_from_cache(), 1);
    }

    #[test]
    fn trace_stamps_one_fetch_round_event_per_wire_round() {
        use rtr_obs::QueryTrace;
        let (_, ids, cluster) = harness();
        let mut cache = BlockCache::new();
        let mut slot = ReplySlot::new();
        let mut trace = QueryTrace::begin();
        let mut active = ActiveGraph::with_trace(&cluster, &mut cache, &mut slot, Some(&mut trace));
        active.ensure(&[ids.t1.0], FetchHint::OutFrontier).unwrap();
        let rounds = active.fetch_requests();
        assert!(rounds >= 1);
        assert_eq!(trace.count(TraceStage::FetchRound), rounds);
    }

    #[test]
    fn accounting_invariant_holds_warm_and_cold() {
        let (g, _, cluster) = harness();
        let mut cache = BlockCache::new();
        let mut slot = ReplySlot::new();
        let all: Vec<u32> = g.nodes().map(|v| v.0).collect();
        for _ in 0..2 {
            let mut active = ActiveGraph::new(&cluster, &mut cache, &mut slot);
            active.ensure(&all[..4], FetchHint::OutFrontier).unwrap();
            active.ensure(&all, FetchHint::Demand).unwrap();
            assert_eq!(
                active.touched_nodes(),
                active.blocks_fetched() + active.blocks_from_cache()
            );
        }
    }
}
