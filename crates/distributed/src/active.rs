//! The AP-side active graph: the incrementally assembled active set.
//!
//! "AP queries the graph processors over a network, which are responsible
//! for identifying and sending back the new active nodes and edges.
//! Subsequently, AP incrementally assembles the active set from the
//! responses" (paper Sect. V-B2).
//!
//! [`ActiveGraph`] is the AP's only view of the graph: adjacency is
//! available *only* for nodes whose blocks have been fetched, and every
//! fetch is metered (requests, blocks, payload bytes) so the Fig. 12
//! active-set measurements fall directly out of the bookkeeping.

use crate::gp::GpCluster;
use rtr_graph::wire::NodeBlock;
use rtr_graph::NodeId;
use std::collections::HashMap;

/// The assembled active set plus fetch plumbing and meters.
pub struct ActiveGraph<'c> {
    cluster: &'c GpCluster,
    node_count: usize,
    blocks: HashMap<u32, NodeBlock>,
    fetch_requests: usize,
    blocks_fetched: usize,
    bytes_transferred: usize,
}

impl<'c> ActiveGraph<'c> {
    /// Start with an empty active set over `cluster`'s graph.
    pub fn new(cluster: &'c GpCluster) -> Self {
        Self::with_storage(cluster, HashMap::new())
    }

    /// Like [`ActiveGraph::new`] but reusing `blocks` as the resident-block
    /// storage (cleared first), so a long-lived worker pays the map's
    /// allocation once instead of per query. Recover the storage with
    /// [`ActiveGraph::into_storage`].
    pub fn with_storage(cluster: &'c GpCluster, mut blocks: HashMap<u32, NodeBlock>) -> Self {
        blocks.clear();
        ActiveGraph {
            node_count: cluster.node_count(),
            cluster,
            blocks,
            fetch_requests: 0,
            blocks_fetched: 0,
            bytes_transferred: 0,
        }
    }

    /// Dissolve into the block storage so its buckets serve the next query.
    pub fn into_storage(self) -> HashMap<u32, NodeBlock> {
        self.blocks
    }

    /// The resident block for `v`, if fetched.
    pub fn block(&self, v: NodeId) -> Option<&NodeBlock> {
        self.blocks.get(&v.0)
    }

    /// Total nodes in the underlying graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Ensure the blocks for `nodes` are resident, fetching missing ones
    /// from the GPs in one batched request.
    pub fn ensure(&mut self, nodes: &[NodeId]) {
        let missing: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|v| !self.blocks.contains_key(&v.0))
            .collect();
        if missing.is_empty() {
            return;
        }
        self.fetch_requests += 1;
        let (blocks, bytes) = self.cluster.fetch(&missing);
        self.blocks_fetched += blocks.len();
        self.bytes_transferred += bytes;
        for b in blocks {
            self.blocks.insert(b.node.0, b);
        }
    }

    /// Out-edges of a resident node (panics if not fetched — the algorithms
    /// must `ensure` before touching adjacency, exactly as the real AP must
    /// wait for the GP response).
    pub fn out_edges(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self
            .blocks
            .get(&v.0)
            .unwrap_or_else(|| panic!("node {v:?} not in active set"))
            .out_edges
    }

    /// In-edges of a resident node.
    pub fn in_edges(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self
            .blocks
            .get(&v.0)
            .unwrap_or_else(|| panic!("node {v:?} not in active set"))
            .in_edges
    }

    /// Out-degree of a resident node.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges(v).len()
    }

    /// Whether a node's block is resident.
    pub fn is_resident(&self, v: NodeId) -> bool {
        self.blocks.contains_key(&v.0)
    }

    /// Number of resident nodes (the active-set node count).
    pub fn resident_nodes(&self) -> usize {
        self.blocks.len()
    }

    /// Resident edges (both directions, as stored).
    pub fn resident_edges(&self) -> usize {
        self.blocks
            .values()
            .map(|b| b.out_edges.len() + b.in_edges.len())
            .sum()
    }

    /// Resident bytes (wire-encoding size — the paper's MB numbers).
    pub fn resident_bytes(&self) -> usize {
        self.blocks.values().map(|b| b.encoded_len()).sum()
    }

    /// Fetch requests issued so far.
    pub fn fetch_requests(&self) -> usize {
        self.fetch_requests
    }

    /// Blocks received so far.
    pub fn blocks_fetched(&self) -> usize {
        self.blocks_fetched
    }

    /// Payload bytes received so far.
    pub fn bytes_transferred(&self) -> usize {
        self.bytes_transferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn demand_paging_fetches_once() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let mut active = ActiveGraph::new(&cluster);
        active.ensure(&[ids.t1]);
        assert_eq!(active.fetch_requests(), 1);
        assert_eq!(active.blocks_fetched(), 1);
        // Second ensure is a cache hit.
        active.ensure(&[ids.t1]);
        assert_eq!(active.fetch_requests(), 1);
        assert!(active.is_resident(ids.t1));
    }

    #[test]
    fn adjacency_matches_source_graph() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 3);
        let mut active = ActiveGraph::new(&cluster);
        active.ensure(&[ids.v2]);
        let expected: Vec<(NodeId, f64)> = g.out_edges(ids.v2).collect();
        assert_eq!(active.out_edges(ids.v2), expected.as_slice());
        assert_eq!(active.out_degree(ids.v2), 2);
    }

    #[test]
    #[should_panic(expected = "not in active set")]
    fn touching_unfetched_node_panics() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let active = ActiveGraph::new(&cluster);
        let _ = active.out_edges(ids.t1);
    }

    #[test]
    fn meters_accumulate() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let mut active = ActiveGraph::new(&cluster);
        active.ensure(&[ids.t1, ids.v1]);
        let b1 = active.bytes_transferred();
        assert!(b1 > 0);
        active.ensure(&[ids.v2, ids.v3]);
        assert!(active.bytes_transferred() > b1);
        assert_eq!(active.resident_nodes(), 4);
        assert!(active.resident_bytes() > 0);
        assert!(active.resident_edges() > 0);
    }
}
