#![deny(missing_docs)]
//! # rtr-distributed — the AP/GP architecture for scaling 2SBound
//!
//! Implements the paper's distributed solution (Sect. V-B): one **active
//! processor** (AP) drives the query while the graph is segmented across
//! multiple **graph processors** (GPs) by round-robin **data striping**
//! ("we assign nodes (along with their edges) in the graph to GPs in a
//! round-robin fashion").
//!
//! "Upon an expansion request from AP during query processing, each GP
//! identifies the requested active nodes and edges stored in it, and sends
//! them back to AP. AP can then incrementally assemble the active set."
//!
//! The simulation is faithful at the protocol level: GPs run on their own
//! threads, own disjoint node stripes, and answer fetch requests over
//! channels with the length-prefixed wire encoding of `rtr_graph::wire`;
//! the AP never touches the full graph — every adjacency byte it uses
//! arrived in a GP response, and the transfer volume is metered.
//!
//! The AP-side processors ([`DistributedTwoSBound`] /
//! [`DistributedTwoSBoundPlus`]) do **not** fork the algorithm: they run
//! the single-machine engines (`rtr_topk::TwoSBound` / `TwoSBoundPlus`)
//! through the shared [`rtr_graph::AdjacencyAccess`] trait against an
//! [`ActiveGraph`] that pages node blocks from the cluster. Results are
//! therefore **bit-identical** to the local engines under the same
//! `TopKConfig` and [`rtr_topk::Scheme`] *by construction* — which is what
//! lets a serving layer route the same traffic to either execution backend
//! (and share one result cache between them) without changing a single
//! answer. The wire layer is where the distributed work happens: a
//! cross-query [`BlockCache`] keyed to the graph epoch, batched frontier
//! prefetch driven by the engines' `ensure` hints, and a reusable
//! [`ReplySlot`] per worker so steady-state serving performs no channel
//! setup. One [`GpCluster`] is `Send + Sync` and serves any number of
//! concurrent APs; per-worker [`DistributedWorkspace`]s make steady-state
//! serving allocation-free.
//!
//! ## Modules
//!
//! * [`stripe`] — round-robin striping and per-GP stores;
//! * [`gp`] — graph-processor threads and the fetch protocol;
//! * [`active`] — the AP-side incrementally-assembled active graph;
//! * [`dtopk`] — distributed 2SBound running against the active graph.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod active;
pub mod dtopk;
pub mod gp;
mod rtr_sync;
pub mod stripe;

pub use active::{
    ActiveGraph, BlockCache, BlockCacheMetrics, DEFAULT_MAX_BLOCKS, DEFAULT_PREFETCH_LIMIT,
};
pub use dtopk::{
    DistributedStats, DistributedTwoSBound, DistributedTwoSBoundPlus, DistributedWorkspace,
};
pub use gp::{GpCluster, ReplySlot};
pub use stripe::Striping;
