//! Round-robin data striping (paper Sect. V-B2).
//!
//! "When the graph does not fit into the main memory of a single machine, we
//! rely on data striping, a technique to segment data over multiple storage
//! units. In our case, the graph is segmented across multiple GPs... in a
//! round-robin fashion."

use rtr_graph::wire::NodeBlock;
use rtr_graph::{Graph, NodeId};
use std::collections::HashMap;

/// The striping function: node → GP index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Striping {
    /// Number of graph processors.
    pub gps: usize,
}

impl Striping {
    /// Create a striping over `gps` processors.
    pub fn new(gps: usize) -> Self {
        assert!(gps > 0, "need at least one graph processor");
        Striping { gps }
    }

    /// The GP owning a node (round-robin by id).
    #[inline]
    pub fn owner(&self, v: NodeId) -> usize {
        (v.0 as usize) % self.gps
    }

    /// Partition a graph into per-GP stores of node blocks.
    pub fn partition(&self, g: &Graph) -> Vec<GpStore> {
        let mut stores: Vec<GpStore> = (0..self.gps).map(GpStore::new).collect();
        for v in g.nodes() {
            let block = NodeBlock::extract(g, v);
            stores[self.owner(v)].insert(block);
        }
        stores
    }
}

/// One GP's in-memory stripe: the node blocks it owns.
#[derive(Clone, Debug)]
pub struct GpStore {
    /// This GP's index.
    pub index: usize,
    blocks: HashMap<u32, NodeBlock>,
    bytes: usize,
}

impl GpStore {
    fn new(index: usize) -> Self {
        GpStore {
            index,
            blocks: HashMap::new(),
            bytes: 0,
        }
    }

    fn insert(&mut self, block: NodeBlock) {
        self.bytes += block.encoded_len();
        self.blocks.insert(block.node.0, block);
    }

    /// Look up the blocks this GP owns among `wanted` (the GP-side half of
    /// a fetch request).
    pub fn lookup(&self, wanted: &[NodeId]) -> Vec<NodeBlock> {
        wanted
            .iter()
            .filter_map(|v| self.blocks.get(&v.0).cloned())
            .collect()
    }

    /// Number of nodes stored.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether this stripe is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Resident bytes of this stripe (wire encoding size).
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn round_robin_assignment() {
        let s = Striping::new(3);
        assert_eq!(s.owner(NodeId(0)), 0);
        assert_eq!(s.owner(NodeId(1)), 1);
        assert_eq!(s.owner(NodeId(2)), 2);
        assert_eq!(s.owner(NodeId(3)), 0);
    }

    #[test]
    fn partition_covers_all_nodes_disjointly() {
        let (g, _) = fig2_toy();
        let stores = Striping::new(4).partition(&g);
        let total: usize = stores.iter().map(|s| s.len()).sum();
        assert_eq!(total, g.node_count());
        // Balanced to within one node.
        let sizes: Vec<usize> = stores.iter().map(|s| s.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "unbalanced stripes {sizes:?}");
    }

    #[test]
    fn lookup_returns_only_owned() {
        let (g, ids) = fig2_toy();
        let striping = Striping::new(2);
        let stores = striping.partition(&g);
        let all: Vec<NodeId> = g.nodes().collect();
        for store in &stores {
            for block in store.lookup(&all) {
                assert_eq!(striping.owner(block.node), store.index);
            }
        }
        // A specific node is found in exactly one store.
        let found: usize = stores.iter().map(|s| s.lookup(&[ids.v1]).len()).sum();
        assert_eq!(found, 1);
    }

    #[test]
    fn single_gp_owns_everything() {
        let (g, _) = fig2_toy();
        let stores = Striping::new(1).partition(&g);
        assert_eq!(stores[0].len(), g.node_count());
        assert!(stores[0].bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_gps_rejected() {
        Striping::new(0);
    }
}
