//! Thread-primitive facade for the GP cluster: plain `std::thread` in
//! production builds, `loom_shim`'s model-aware spawn/join/yield under
//! the `rtr_check` feature so `rtr-check` can run real GP threads inside
//! a schedule exploration (the channel side is covered by the `crossbeam`
//! shim's own `rtr_check` feature). Code in this crate spawns threads
//! through here, never through `std::thread` directly.

/// `spawn` / `JoinHandle` / `yield_now`, switched by feature.
pub(crate) mod thread {
    #[cfg(feature = "rtr_check")]
    pub(crate) use loom_shim::thread::{spawn, yield_now, JoinHandle};
    #[cfg(not(feature = "rtr_check"))]
    pub(crate) use std::thread::{spawn, yield_now, JoinHandle};
}
