//! Graph-processor threads and the fetch protocol.
//!
//! Each GP runs on its own thread, owns one stripe, and serves fetch
//! requests: the AP sends the wanted node ids to the owning GPs, each GP
//! replies with the wire-encoded blocks it owns ("it aggregates the fast
//! storage (main memory) of GPs... it enables parallel access to different
//! parts of the graph", paper Sect. V-B2).
//!
//! The reply path is a **reusable slot** ([`ReplySlot`]): one channel per
//! AP-side workspace, re-used for every fetch of every query, instead of a
//! fresh channel allocation per request. Replies are stamped with a
//! generation counter so a slot that abandoned a fetch mid-flight (because
//! one GP failed) simply skips the stragglers of the old generation on its
//! next use.
//!
//! GP failure is a first-class outcome, not a panic: a dead GP thread is
//! reported as [`AdjacencyError::SourceUnavailable`] naming the processor,
//! and a GP whose lookup panics catches the unwind and replies with the
//! error, so the AP's blocking receive can never hang on a wedged fetch.

use crate::rtr_sync::thread::{self, JoinHandle};
use crate::stripe::{GpStore, Striping};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rtr_graph::wire::NodeBlock;
use rtr_graph::{AdjacencyError, Graph, NodeId};

enum Request {
    Fetch {
        wanted: Vec<NodeId>,
        generation: u64,
        reply: Sender<Reply>,
    },
    Shutdown,
    /// Test kill-switch: makes the GP thread exit *without* draining its
    /// queue, simulating a crashed processor (see [`GpCluster::kill_gp`]).
    Poison,
    /// Fault-injection switch: the GP answers its *next* fetch with an
    /// error reply, as if its lookup had failed, while staying alive (see
    /// [`GpCluster::fail_next_fetch`]).
    FailNext,
}

struct Reply {
    generation: u64,
    gp: usize,
    payload: Result<Bytes, String>,
}

/// A reusable reply channel for [`GpCluster::fetch`].
///
/// One slot lives in each AP-side workspace and serves every fetch that
/// workspace ever issues; creating it allocates the only channel the reply
/// path will ever need. Not shareable between concurrent fetches — each
/// worker owns its slot, which is exactly the per-workspace ownership the
/// serving layer already has.
#[derive(Debug)]
pub struct ReplySlot {
    tx: Sender<Reply>,
    rx: Receiver<Reply>,
    generation: u64,
}

impl ReplySlot {
    /// A fresh slot (one channel allocation, amortized over all fetches).
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        ReplySlot {
            tx,
            rx,
            generation: 0,
        }
    }
}

impl Default for ReplySlot {
    fn default() -> Self {
        Self::new()
    }
}

/// A running cluster of GP threads.
///
/// The cluster is the AP side's *only* handle on the graph: it carries just
/// the global metadata an active processor legitimately holds (node count,
/// self-loop flag, the source graph's epoch) plus the fetch channels. It is
/// `Send + Sync`, so one cluster can be shared (`Arc<GpCluster>`) by a
/// whole pool of serving workers — fetches from concurrent queries
/// interleave safely because each fetch replies into its caller's private
/// [`ReplySlot`] and every GP serves its queue sequentially.
pub struct GpCluster {
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
    striping: Striping,
    node_count: usize,
    has_self_loops: bool,
    epoch: u64,
}

impl GpCluster {
    /// Stripe `g` across `gps` processors and start their threads.
    pub fn spawn(g: &Graph, gps: usize) -> Self {
        let striping = Striping::new(gps);
        let stores = striping.partition(g);
        let mut senders = Vec::with_capacity(gps);
        let mut handles = Vec::with_capacity(gps);
        for store in stores {
            let (tx, rx) = unbounded::<Request>();
            senders.push(tx);
            handles.push(thread::spawn(move || gp_main(store, rx)));
        }
        GpCluster {
            senders,
            handles,
            striping,
            node_count: g.node_count(),
            has_self_loops: g.has_self_loops(),
            epoch: g.epoch(),
        }
    }

    /// Total nodes in the striped graph — the global metadata the AP needs
    /// for query validation and `k` clamping.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Whether the striped graph contains self-loops — global metadata the
    /// AP needs to choose a sound unseen F-Rank bound (see
    /// `rtr_core::bca::Bca::unseen_upper_bound`).
    pub fn has_self_loops(&self) -> bool {
        self.has_self_loops
    }

    /// The epoch of the graph this cluster was striped from. An AP-side
    /// block cache keyed by this value survives across queries and across
    /// cluster respawns over the *same* graph, and self-invalidates the
    /// moment it meets a cluster striped from a different (or mutated,
    /// `bump_epoch`ed) graph.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of graph processors.
    pub fn gps(&self) -> usize {
        self.senders.len()
    }

    /// Fetch the blocks for `wanted` nodes: one request per owning GP, all
    /// outstanding in parallel, replies collected through the caller's
    /// reusable `slot`. Returns the decoded blocks and the number of
    /// payload bytes that crossed the (simulated) network.
    ///
    /// A dead GP thread surfaces as
    /// [`AdjacencyError::SourceUnavailable`] naming the processor index —
    /// detected at send time if the thread is already gone, or from its
    /// error reply if its lookup panicked mid-request.
    pub fn fetch(
        &self,
        wanted: &[NodeId],
        slot: &mut ReplySlot,
    ) -> Result<(Vec<NodeBlock>, usize), AdjacencyError> {
        if wanted.is_empty() {
            return Ok((Vec::new(), 0));
        }
        // Abandoned fetches may have left stale replies behind; a new
        // generation distinguishes this fetch's replies from theirs.
        slot.generation += 1;
        while slot.rx.try_recv().is_ok() {}
        // Partition the request by owner so each GP only sees its share.
        let mut per_gp: Vec<Vec<NodeId>> = vec![Vec::new(); self.gps()];
        for &v in wanted {
            per_gp[self.striping.owner(v)].push(v);
        }
        let mut outstanding = 0usize;
        for (gp, share) in per_gp.into_iter().enumerate() {
            if share.is_empty() {
                continue;
            }
            let sent = self.senders[gp].send(Request::Fetch {
                wanted: share,
                generation: slot.generation,
                reply: slot.tx.clone(),
            });
            if sent.is_err() {
                return Err(AdjacencyError::SourceUnavailable {
                    detail: format!("graph processor {gp} is not running"),
                });
            }
            outstanding += 1;
        }
        let mut blocks = Vec::new();
        let mut bytes = 0usize;
        while outstanding > 0 {
            // Every live GP replies exactly once per request (its lookup is
            // wrapped in catch_unwind), so this blocks only while a GP is
            // actually working. The slot holding its own sender keeps the
            // channel open; a recv error is therefore impossible, but is
            // mapped rather than unwrapped to keep the AP panic-free.
            let reply = match slot.rx.recv() {
                Ok(r) => r,
                Err(_) => {
                    return Err(AdjacencyError::SourceUnavailable {
                        detail: "graph processor reply channel closed".to_string(),
                    })
                }
            };
            if reply.generation != slot.generation {
                continue; // straggler from an abandoned fetch
            }
            outstanding -= 1;
            match reply.payload {
                Ok(payload) => {
                    bytes += payload.len();
                    blocks.extend(NodeBlock::decode_batch(payload));
                }
                Err(msg) => {
                    return Err(AdjacencyError::SourceUnavailable {
                        detail: format!("graph processor {} failed: {msg}", reply.gp),
                    });
                }
            }
        }
        Ok((blocks, bytes))
    }

    /// Kill one GP thread in place, simulating a processor crash (for
    /// fault-injection tests). Blocks until the thread has exited, so a
    /// subsequent fetch deterministically observes the death.
    pub fn kill_gp(&self, gp: usize) {
        let _ = self.senders[gp].send(Request::Poison);
        while !self.handles[gp].is_finished() {
            thread::yield_now();
        }
    }

    /// Make GP `gp` answer its next fetch with an error reply while
    /// staying alive — fault injection for straggler tests. Unlike
    /// [`GpCluster::kill_gp`] the processor keeps serving afterwards, so
    /// a multi-GP fetch that hits the injected failure returns an error
    /// *while the other GPs' replies are still in flight*: exactly the
    /// stale-straggler scenario the [`ReplySlot`] generation stamp
    /// exists to absorb (model-checked in `rtr-check`).
    pub fn fail_next_fetch(&self, gp: usize) {
        let _ = self.senders[gp].send(Request::FailNext);
    }
}

impl Drop for GpCluster {
    fn drop(&mut self) {
        // Best-effort shutdown: a GP that already died has dropped its
        // receiver, which makes the send fail — ignored, and its join
        // returns the panic payload — also ignored. Drop never hangs on a
        // partially dead cluster.
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn gp_main(store: GpStore, rx: Receiver<Request>) {
    let gp = store.index;
    let mut fail_next = false;
    while let Ok(req) = rx.recv() {
        match req {
            Request::Fetch {
                wanted,
                generation,
                reply,
            } => {
                // The lookup runs under catch_unwind so that *any* GP-side
                // failure still produces a reply: the AP's blocking receive
                // must never hang because a processor wedged mid-request.
                let payload = if std::mem::take(&mut fail_next) {
                    Err("injected fault (fail_next_fetch)".to_string())
                } else {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let blocks = store.lookup(&wanted);
                        NodeBlock::encode_batch(&blocks)
                    }))
                    .map_err(|p| panic_message(&p))
                };
                let _ = reply.send(Reply {
                    generation,
                    gp,
                    payload,
                });
            }
            Request::Shutdown => break,
            Request::Poison => return, // simulate a crash: die without draining
            Request::FailNext => fail_next = true,
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "GP lookup panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    fn fetch_all(cluster: &GpCluster, wanted: &[NodeId]) -> (Vec<NodeBlock>, usize) {
        cluster
            .fetch(wanted, &mut ReplySlot::new())
            .expect("cluster healthy")
    }

    #[test]
    fn fetch_returns_requested_blocks() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 3);
        let (blocks, bytes) = fetch_all(&cluster, &[ids.t1, ids.v1, ids.v2]);
        assert_eq!(blocks.len(), 3);
        assert!(bytes > 0);
        let got: Vec<NodeId> = blocks.iter().map(|b| b.node).collect();
        assert!(got.contains(&ids.t1));
        assert!(got.contains(&ids.v1));
        assert!(got.contains(&ids.v2));
    }

    #[test]
    fn fetched_adjacency_matches_graph() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (blocks, _) = fetch_all(&cluster, &[ids.v1]);
        let block = &blocks[0];
        let expected: Vec<(NodeId, f64)> = g.out_edges(ids.v1).collect();
        assert_eq!(block.out_edges, expected);
        let expected_in: Vec<(NodeId, f64)> = g.in_edges(ids.v1).collect();
        assert_eq!(block.in_edges, expected_in);
    }

    #[test]
    fn empty_fetch_is_free() {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (blocks, bytes) = fetch_all(&cluster, &[]);
        assert!(blocks.is_empty());
        assert_eq!(bytes, 0);
    }

    #[test]
    fn duplicate_requests_are_idempotent() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let mut slot = ReplySlot::new();
        let (a, _) = cluster.fetch(&[ids.t1], &mut slot).unwrap();
        let (b, _) = cluster.fetch(&[ids.t1], &mut slot).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn slot_reuse_spans_many_fetches() {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 3);
        let mut slot = ReplySlot::new();
        for v in g.nodes() {
            let (blocks, _) = cluster.fetch(&[v], &mut slot).unwrap();
            assert_eq!(blocks.len(), 1);
            assert_eq!(blocks[0].node, v);
        }
    }

    #[test]
    fn cluster_reports_metadata() {
        let (g, _) = fig2_toy();
        let n = g.node_count();
        let cluster = GpCluster::spawn(&g, 5);
        assert_eq!(cluster.gps(), 5);
        assert_eq!(cluster.node_count(), n);
        assert_eq!(cluster.epoch(), g.epoch());
    }

    #[test]
    fn dead_gp_surfaces_as_error_naming_it() {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 3);
        cluster.kill_gp(1);
        let mut slot = ReplySlot::new();
        // Node 1 is owned by GP 1 (round-robin by id).
        let err = cluster.fetch(&[NodeId(1)], &mut slot).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("graph processor 1"), "got: {msg}");
        // The other GPs still serve, through the same slot.
        let (blocks, _) = cluster.fetch(&[NodeId(0), NodeId(2)], &mut slot).unwrap();
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn dropping_a_cluster_with_dead_gps_does_not_hang() {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        cluster.kill_gp(0);
        cluster.kill_gp(1);
        drop(cluster); // must return, not deadlock
    }

    #[test]
    fn concurrent_fetches_do_not_cross_wires() {
        // Two AP threads fetching different nodes through one shared cluster
        // must each get exactly their own blocks (the per-worker reply slot
        // is what isolates them).
        use std::sync::Arc;
        let (g, ids) = fig2_toy();
        let cluster = Arc::new(GpCluster::spawn(&g, 3));
        let mut handles = Vec::new();
        for want in [ids.t1, ids.v1, ids.v2, ids.t2] {
            let cluster = Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                let mut slot = ReplySlot::new();
                for _ in 0..50 {
                    let (blocks, _) = cluster.fetch(&[want], &mut slot).unwrap();
                    assert_eq!(blocks.len(), 1);
                    assert_eq!(blocks[0].node, want);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
