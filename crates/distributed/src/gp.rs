//! Graph-processor threads and the fetch protocol.
//!
//! Each GP runs on its own thread, owns one stripe, and serves fetch
//! requests: the AP broadcasts the wanted node ids, each GP replies with the
//! wire-encoded blocks it owns ("it aggregates the fast storage (main
//! memory) of GPs... it enables parallel access to different parts of the
//! graph", paper Sect. V-B2).

use crate::stripe::{GpStore, Striping};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rtr_graph::wire::NodeBlock;
use rtr_graph::{Graph, NodeId};
use std::thread::JoinHandle;

enum Request {
    Fetch {
        wanted: Vec<NodeId>,
        reply: Sender<Bytes>,
    },
    Shutdown,
}

/// A running cluster of GP threads.
///
/// The cluster is the AP side's *only* handle on the graph: it carries just
/// the global metadata an active processor legitimately holds (node count,
/// self-loop flag) plus the fetch channels. It is `Send + Sync`, so one
/// cluster can be shared (`Arc<GpCluster>`) by a whole pool of serving
/// workers — fetches from concurrent queries interleave safely because each
/// fetch owns its private reply channel and every GP serves its queue
/// sequentially.
pub struct GpCluster {
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
    striping: Striping,
    node_count: usize,
    has_self_loops: bool,
}

impl GpCluster {
    /// Stripe `g` across `gps` processors and start their threads.
    pub fn spawn(g: &Graph, gps: usize) -> Self {
        let striping = Striping::new(gps);
        let stores = striping.partition(g);
        let mut senders = Vec::with_capacity(gps);
        let mut handles = Vec::with_capacity(gps);
        for store in stores {
            let (tx, rx) = unbounded::<Request>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || gp_main(store, rx)));
        }
        GpCluster {
            senders,
            handles,
            striping,
            node_count: g.node_count(),
            has_self_loops: g.has_self_loops(),
        }
    }

    /// Total nodes in the striped graph — the global metadata the AP needs
    /// for query validation and `k` clamping.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Whether the striped graph contains self-loops — global metadata the
    /// AP needs to choose a sound unseen F-Rank bound (see
    /// `rtr_core::bca::Bca::unseen_upper_bound`).
    pub fn has_self_loops(&self) -> bool {
        self.has_self_loops
    }

    /// Number of graph processors.
    pub fn gps(&self) -> usize {
        self.senders.len()
    }

    /// Fetch the blocks for `wanted` nodes: one request per owning GP, all
    /// outstanding in parallel. Returns the decoded blocks and the number of
    /// payload bytes that crossed the (simulated) network.
    pub fn fetch(&self, wanted: &[NodeId]) -> (Vec<NodeBlock>, usize) {
        if wanted.is_empty() {
            return (Vec::new(), 0);
        }
        // Partition the request by owner so each GP only sees its share.
        let mut per_gp: Vec<Vec<NodeId>> = vec![Vec::new(); self.gps()];
        for &v in wanted {
            per_gp[self.striping.owner(v)].push(v);
        }
        let mut pending = Vec::new();
        for (gp, share) in per_gp.into_iter().enumerate() {
            if share.is_empty() {
                continue;
            }
            let (reply_tx, reply_rx) = unbounded::<Bytes>();
            self.senders[gp]
                .send(Request::Fetch {
                    wanted: share,
                    reply: reply_tx,
                })
                .expect("GP thread alive");
            pending.push(reply_rx);
        }
        let mut blocks = Vec::new();
        let mut bytes = 0usize;
        for rx in pending {
            let payload = rx.recv().expect("GP reply");
            bytes += payload.len();
            blocks.extend(NodeBlock::decode_batch(payload));
        }
        (blocks, bytes)
    }
}

impl Drop for GpCluster {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn gp_main(store: GpStore, rx: Receiver<Request>) {
    while let Ok(req) = rx.recv() {
        match req {
            Request::Fetch { wanted, reply } => {
                let blocks = store.lookup(&wanted);
                let _ = reply.send(NodeBlock::encode_batch(&blocks));
            }
            Request::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn fetch_returns_requested_blocks() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 3);
        let (blocks, bytes) = cluster.fetch(&[ids.t1, ids.v1, ids.v2]);
        assert_eq!(blocks.len(), 3);
        assert!(bytes > 0);
        let got: Vec<NodeId> = blocks.iter().map(|b| b.node).collect();
        assert!(got.contains(&ids.t1));
        assert!(got.contains(&ids.v1));
        assert!(got.contains(&ids.v2));
    }

    #[test]
    fn fetched_adjacency_matches_graph() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (blocks, _) = cluster.fetch(&[ids.v1]);
        let block = &blocks[0];
        let expected: Vec<(NodeId, f64)> = g.out_edges(ids.v1).collect();
        assert_eq!(block.out_edges, expected);
        let expected_in: Vec<(NodeId, f64)> = g.in_edges(ids.v1).collect();
        assert_eq!(block.in_edges, expected_in);
    }

    #[test]
    fn empty_fetch_is_free() {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (blocks, bytes) = cluster.fetch(&[]);
        assert!(blocks.is_empty());
        assert_eq!(bytes, 0);
    }

    #[test]
    fn duplicate_requests_are_idempotent() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (a, _) = cluster.fetch(&[ids.t1]);
        let (b, _) = cluster.fetch(&[ids.t1]);
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_size_reported() {
        let (g, _) = fig2_toy();
        let n = g.node_count();
        let cluster = GpCluster::spawn(&g, 5);
        assert_eq!(cluster.gps(), 5);
        assert_eq!(cluster.node_count(), n);
    }

    #[test]
    fn concurrent_fetches_do_not_cross_wires() {
        // Two AP threads fetching different nodes through one shared cluster
        // must each get exactly their own blocks (the per-fetch reply
        // channel is what isolates them).
        use std::sync::Arc;
        let (g, ids) = fig2_toy();
        let cluster = Arc::new(GpCluster::spawn(&g, 3));
        let mut handles = Vec::new();
        for want in [ids.t1, ids.v1, ids.v2, ids.t2] {
            let cluster = Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let (blocks, _) = cluster.fetch(&[want]);
                    assert_eq!(blocks.len(), 1);
                    assert_eq!(blocks[0].node, want);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
