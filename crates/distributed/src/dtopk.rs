//! Distributed 2SBound: the paper's Algorithm 1 running on the AP, with
//! every adjacency access served from the incrementally assembled active
//! set (paper Sect. V-B2).
//!
//! There is **no distributed fork of the algorithm**. The AP runs the
//! single-machine engines' `run_on` entry points — the *same* code path as
//! [`TwoSBound::run`](rtr_topk::TwoSBound::run) /
//! [`TwoSBoundPlus::run`](rtr_topk::TwoSBoundPlus::run) — against an
//! [`ActiveGraph`], which implements the shared
//! [`AdjacencyAccess`](rtr_graph::AdjacencyAccess) trait by paging node
//! blocks from the [`GpCluster`]. Local/distributed bit-identity (ranking,
//! bounds, expansions, active-set statistics) is therefore true by
//! construction: there is only one implementation to be identical to. That
//! is what lets a serving cache share entries between local and distributed
//! backends — the answers are interchangeable, only the wire cost differs.
//!
//! The distributed-only machinery lives below the trait: the cross-query
//! [`BlockCache`], the frontier prefetch batched into the `ensure` calls
//! the engines already make, and the reusable GP reply channel
//! ([`ReplySlot`]). [`DistributedStats`] meters all of it per query —
//! demand fetches, prefetches, and cache hits are reported separately, and
//! `blocks_fetched + blocks_from_cache == active_nodes` always holds, so
//! the Fig. 12 active-set numbers stay exact however warm the cache is.
//!
//! Like the local engines, the distributed processors honor the full
//! [`TopKConfig`] and the Fig. 11a ablation [`Scheme`]s (`with_scheme`),
//! and expose workspace-reusing `run_with` entry points so a pooled worker
//! serves query after query without reallocating its AP-side state.

use crate::active::{ActiveGraph, BlockCache};
use crate::gp::{GpCluster, ReplySlot};
use rtr_core::{CoreError, RankParams};
use rtr_graph::NodeId;
use rtr_topk::config::TopKConfig;
use rtr_topk::schemes::Scheme;
use rtr_topk::two_sbound::{TopKResult, TwoSBound};
use rtr_topk::workspace::TopKWorkspace;
use rtr_topk::TwoSBoundPlus;

/// Network-level statistics of one distributed query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistributedStats {
    /// Batched fetch rounds the AP issued (demand + prefetch).
    pub fetch_requests: usize,
    /// Node blocks the query demanded and received over the wire.
    pub blocks_fetched: usize,
    /// Node blocks speculatively prefetched over the wire.
    pub blocks_prefetched: usize,
    /// Node blocks the query demanded that were already resident — warm
    /// from a previous query's [`BlockCache`] contents, or prefetched
    /// earlier in this one — and so cost no wire traffic.
    pub blocks_from_cache: usize,
    /// Payload bytes received.
    pub bytes_transferred: usize,
    /// Nodes this query made part of its working set (every block it
    /// demanded) — always `blocks_fetched + blocks_from_cache`. A superset
    /// of the result's `active` union: benefit selection reads the degree
    /// of the whole residual frontier, processed or not.
    pub active_nodes: usize,
    /// Directed edges (both stored directions) of the touched nodes.
    pub active_edges: usize,
    /// Wire-encoding bytes of the touched nodes' blocks (paper Fig. 12
    /// "Active set size").
    pub active_bytes: usize,
}

/// Reusable AP-side state for distributed serving: the engine workspace
/// (the same [`TopKWorkspace`] the local engines reuse), the cross-query
/// resident-block cache, and the GP reply channel. A long-lived worker
/// allocates nothing on the steady-state path — and keeps its warm blocks
/// between queries.
#[derive(Debug, Default)]
pub struct DistributedWorkspace {
    /// Engine buffers (BCA maps, bounds maps, scratch vectors).
    pub topk: TopKWorkspace,
    /// Cross-query resident blocks, keyed to the graph epoch.
    pub cache: BlockCache,
    /// Reusable reply channel for GP fetches.
    pub slot: ReplySlot,
    /// Per-query trace to stamp [`rtr_obs::TraceStage::FetchRound`]
    /// events into, when the caller is tracing this query. The serving
    /// layer parks the request's trace here around `run_with` and takes
    /// it back afterwards; `None` (the default) records nothing.
    pub trace: Option<Box<rtr_obs::QueryTrace>>,
}

impl DistributedWorkspace {
    /// A workspace (all buffers empty, cache cold) ready for any cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace whose block cache uses explicit knobs (see
    /// [`BlockCache::with_limits`]).
    pub fn with_cache(cache: BlockCache) -> Self {
        DistributedWorkspace {
            cache,
            ..Self::default()
        }
    }
}

fn run_on_cluster(
    engine: &TwoSBound,
    cluster: &GpCluster,
    q: NodeId,
    ws: &mut DistributedWorkspace,
) -> Result<(TopKResult, DistributedStats), CoreError> {
    let mut active = ActiveGraph::with_trace(
        cluster,
        &mut ws.cache,
        &mut ws.slot,
        ws.trace.as_deref_mut(),
    );
    let result = engine.run_on(&mut active, q, &mut ws.topk)?;
    let stats = DistributedStats {
        fetch_requests: active.fetch_requests(),
        blocks_fetched: active.blocks_fetched(),
        blocks_prefetched: active.blocks_prefetched(),
        blocks_from_cache: active.blocks_from_cache(),
        bytes_transferred: active.bytes_transferred(),
        active_nodes: active.touched_nodes(),
        active_edges: active.touched_edges(),
        active_bytes: active.touched_bytes(),
    };
    Ok((result, stats))
}

fn run_plus_on_cluster(
    engine: &TwoSBoundPlus,
    cluster: &GpCluster,
    q: NodeId,
    ws: &mut DistributedWorkspace,
) -> Result<(TopKResult, DistributedStats), CoreError> {
    let mut active = ActiveGraph::with_trace(
        cluster,
        &mut ws.cache,
        &mut ws.slot,
        ws.trace.as_deref_mut(),
    );
    let result = engine.run_on(&mut active, q, &mut ws.topk)?;
    let stats = DistributedStats {
        fetch_requests: active.fetch_requests(),
        blocks_fetched: active.blocks_fetched(),
        blocks_prefetched: active.blocks_prefetched(),
        blocks_from_cache: active.blocks_from_cache(),
        bytes_transferred: active.bytes_transferred(),
        active_nodes: active.touched_nodes(),
        active_edges: active.touched_edges(),
        active_bytes: active.touched_bytes(),
    };
    Ok((result, stats))
}

/// Distributed 2SBound: [`TwoSBound`] run against a [`GpCluster`]-paged
/// active graph.
#[derive(Clone, Copy, Debug)]
pub struct DistributedTwoSBound {
    engine: TwoSBound,
}

impl DistributedTwoSBound {
    /// Create with the paper's full scheme.
    pub fn new(params: RankParams, config: TopKConfig) -> Self {
        Self::with_scheme(params, config, Scheme::TwoSBound)
    }

    /// Create with an explicit computational scheme (the Fig. 11a
    /// ablations), honored exactly as `TwoSBound::run_with` honors it —
    /// they are the same code.
    pub fn with_scheme(params: RankParams, config: TopKConfig, scheme: Scheme) -> Self {
        DistributedTwoSBound {
            engine: TwoSBound::with_scheme(params, config, scheme),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TopKConfig {
        self.engine.config()
    }

    /// Run the query against a GP cluster, allocating fresh AP state (and
    /// a cold block cache). Serving paths use
    /// [`DistributedTwoSBound::run_with`] instead.
    pub fn run(
        &self,
        cluster: &GpCluster,
        q: NodeId,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        self.run_with(cluster, q, &mut DistributedWorkspace::default())
    }

    /// Run the query reusing `ws`'s buffers and warm block cache. The
    /// [`TopKResult`] is bit-identical to [`DistributedTwoSBound::run`] —
    /// and to the local `TwoSBound::run_with` under the same parameters;
    /// only the wire cost in [`DistributedStats`] depends on cache warmth.
    pub fn run_with(
        &self,
        cluster: &GpCluster,
        q: NodeId,
        ws: &mut DistributedWorkspace,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        run_on_cluster(&self.engine, cluster, q, ws)
    }
}

/// Distributed 2SBound for RoundTripRank+ with specificity bias β:
/// [`TwoSBoundPlus`] run against a [`GpCluster`]-paged active graph.
#[derive(Clone, Copy, Debug)]
pub struct DistributedTwoSBoundPlus {
    engine: TwoSBoundPlus,
}

impl DistributedTwoSBoundPlus {
    /// Create for a given β ∈ [0, 1] (the paper's full scheme).
    pub fn new(params: RankParams, config: TopKConfig, beta: f64) -> Result<Self, CoreError> {
        Self::with_scheme(params, config, Scheme::TwoSBound, beta)
    }

    /// Create with an explicit computational scheme.
    pub fn with_scheme(
        params: RankParams,
        config: TopKConfig,
        scheme: Scheme,
        beta: f64,
    ) -> Result<Self, CoreError> {
        Ok(DistributedTwoSBoundPlus {
            engine: TwoSBoundPlus::with_scheme(params, config, scheme, beta)?,
        })
    }

    /// The specificity bias in use.
    pub fn beta(&self) -> f64 {
        self.engine.beta()
    }

    /// The configuration in use.
    pub fn config(&self) -> &TopKConfig {
        self.engine.config()
    }

    /// Run the β-weighted query, allocating fresh AP state.
    pub fn run(
        &self,
        cluster: &GpCluster,
        q: NodeId,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        self.run_with(cluster, q, &mut DistributedWorkspace::default())
    }

    /// Run the β-weighted query reusing `ws`'s buffers and warm block
    /// cache; bit-identical to the local `TwoSBoundPlus::run_with`.
    pub fn run_with(
        &self,
        cluster: &GpCluster,
        q: NodeId,
        ws: &mut DistributedWorkspace,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        run_plus_on_cluster(&self.engine, cluster, q, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    fn toy_config() -> TopKConfig {
        TopKConfig {
            k: 4,
            epsilon: 0.0,
            m_f: 4,
            m_t: 2,
            max_expansions: 500,
            ..TopKConfig::default()
        }
    }

    /// The acceptance clause, at unit scale: the distributed run is
    /// bit-identical to the local engine — ranking, bounds, expansions,
    /// and active-set statistics.
    #[test]
    fn distributed_is_bit_identical_to_local() {
        let (g, _) = fig2_toy();
        let params = RankParams::default();
        let cluster = GpCluster::spawn(&g, 3);
        for q in g.nodes() {
            let local = TwoSBound::new(params, toy_config()).run(&g, q).unwrap();
            let (dist, stats) = DistributedTwoSBound::new(params, toy_config())
                .run(&cluster, q)
                .unwrap();
            assert_eq!(local.ranking, dist.ranking, "query {q:?}");
            assert_eq!(local.bounds, dist.bounds, "query {q:?}");
            assert_eq!(local.expansions, dist.expansions, "query {q:?}");
            assert_eq!(local.converged, dist.converged, "query {q:?}");
            assert_eq!(local.active, dist.active, "query {q:?}");
            assert!(stats.bytes_transferred > 0);
        }
    }

    #[test]
    fn every_scheme_is_bit_identical_to_local() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let cluster = GpCluster::spawn(&g, 2);
        for scheme in Scheme::all() {
            let local = TwoSBound::with_scheme(params, toy_config(), scheme)
                .run(&g, ids.t1)
                .unwrap();
            let (dist, _) = DistributedTwoSBound::with_scheme(params, toy_config(), scheme)
                .run(&cluster, ids.t1)
                .unwrap();
            assert_eq!(local.ranking, dist.ranking, "{scheme:?}");
            assert_eq!(local.bounds, dist.bounds, "{scheme:?}");
            assert_eq!(local.expansions, dist.expansions, "{scheme:?}");
            assert_eq!(local.active, dist.active, "{scheme:?}");
        }
    }

    #[test]
    fn plus_is_bit_identical_to_local_across_betas() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let cluster = GpCluster::spawn(&g, 3);
        for beta in [0.0, 0.3, 0.5, 0.7, 1.0] {
            let local = TwoSBoundPlus::new(params, toy_config(), beta)
                .unwrap()
                .run(&g, ids.t1)
                .unwrap();
            let (dist, _) = DistributedTwoSBoundPlus::new(params, toy_config(), beta)
                .unwrap()
                .run(&cluster, ids.t1)
                .unwrap();
            assert_eq!(local.ranking, dist.ranking, "β={beta}");
            assert_eq!(local.bounds, dist.bounds, "β={beta}");
            assert_eq!(local.expansions, dist.expansions, "β={beta}");
            assert_eq!(local.active, dist.active, "β={beta}");
        }
    }

    /// Workspace reuse keeps *results* bit-identical; the wire cost
    /// legitimately drops as the block cache warms, but the active-set
    /// accounting invariant holds at every temperature.
    #[test]
    fn run_with_reuses_workspace_bit_identically() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let cluster = GpCluster::spawn(&g, 2);
        let engine = DistributedTwoSBound::new(params, toy_config());
        let mut ws = DistributedWorkspace::new();
        for q in [ids.t1, ids.v1, ids.t2, ids.t1] {
            let (fresh, fresh_stats) = engine.run(&cluster, q).unwrap();
            let (reused, reused_stats) = engine.run_with(&cluster, q, &mut ws).unwrap();
            assert_eq!(fresh.ranking, reused.ranking, "{q:?}");
            assert_eq!(fresh.bounds, reused.bounds, "{q:?}");
            assert_eq!(fresh.expansions, reused.expansions, "{q:?}");
            assert_eq!(fresh.active, reused.active, "{q:?}");
            for stats in [&fresh_stats, &reused_stats] {
                assert_eq!(
                    stats.blocks_fetched + stats.blocks_from_cache,
                    stats.active_nodes,
                    "{q:?}"
                );
            }
            // Same touched set either way; the warm run pays at most the
            // cold run's wire cost.
            assert_eq!(fresh_stats.active_nodes, reused_stats.active_nodes, "{q:?}");
            assert!(
                reused_stats.bytes_transferred <= fresh_stats.bytes_transferred,
                "{q:?}"
            );
        }
    }

    /// A fully warm cache serves repeat queries with zero wire traffic.
    #[test]
    fn warm_cache_eliminates_wire_traffic() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let engine = DistributedTwoSBound::new(RankParams::default(), toy_config());
        let mut ws = DistributedWorkspace::new();
        let (_, cold) = engine.run_with(&cluster, ids.t1, &mut ws).unwrap();
        assert!(cold.bytes_transferred > 0);
        let (_, warm) = engine.run_with(&cluster, ids.t1, &mut ws).unwrap();
        assert_eq!(warm.fetch_requests, 0);
        assert_eq!(warm.bytes_transferred, 0);
        assert_eq!(warm.blocks_from_cache, warm.active_nodes);
    }

    #[test]
    fn rejected_query_keeps_workspace_usable() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let engine = DistributedTwoSBound::new(RankParams::default(), toy_config());
        let mut ws = DistributedWorkspace::new();
        let (clean, _) = engine.run_with(&cluster, ids.t1, &mut ws).unwrap();
        assert!(engine.run_with(&cluster, NodeId(9999), &mut ws).is_err());
        let (after, _) = engine.run_with(&cluster, ids.t1, &mut ws).unwrap();
        assert_eq!(clean.bounds, after.bounds);
    }

    #[test]
    fn gp_count_does_not_change_results() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let mut rankings = Vec::new();
        for gps in [1, 2, 5] {
            let cluster = GpCluster::spawn(&g, gps);
            let (res, _) = DistributedTwoSBound::new(params, toy_config())
                .run(&cluster, ids.t1)
                .unwrap();
            rankings.push(res.ranking);
        }
        assert_eq!(rankings[0], rankings[1]);
        assert_eq!(rankings[1], rankings[2]);
    }

    #[test]
    fn active_set_is_fraction_of_graph() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (_, stats) = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, ids.t1)
            .unwrap();
        assert!(stats.active_nodes <= g.node_count());
        assert!(stats.active_bytes > 0);
        assert!(stats.fetch_requests > 0);
        assert!(stats.blocks_fetched <= g.node_count());
        assert_eq!(
            stats.blocks_fetched + stats.blocks_from_cache,
            stats.active_nodes
        );
    }

    #[test]
    fn converges_on_toy() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (res, _) = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, ids.t1)
            .unwrap();
        assert!(res.converged);
        assert_eq!(res.ranking[0], ids.t1);
    }

    #[test]
    fn k_zero_is_trivially_empty() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let cfg = TopKConfig {
            k: 0,
            ..toy_config()
        };
        let (res, stats) = DistributedTwoSBound::new(RankParams::default(), cfg)
            .run(&cluster, ids.t1)
            .unwrap();
        assert!(res.ranking.is_empty());
        assert!(res.converged);
        assert_eq!(res.expansions, 0);
        assert_eq!(stats, DistributedStats::default());
    }

    #[test]
    fn out_of_range_query_rejected() {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let err = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, NodeId(999))
            .unwrap_err();
        assert!(matches!(err, CoreError::NodeOutOfRange { .. }));
    }

    #[test]
    fn plus_rejects_invalid_beta() {
        let p = RankParams::default();
        assert!(DistributedTwoSBoundPlus::new(p, toy_config(), -0.1).is_err());
        assert!(DistributedTwoSBoundPlus::new(p, toy_config(), 1.5).is_err());
        assert!(DistributedTwoSBoundPlus::new(p, toy_config(), f64::NAN).is_err());
    }
}
