//! Distributed 2SBound: the paper's Algorithm 1 running on the AP, with
//! every adjacency access served from the incrementally assembled active
//! set (paper Sect. V-B2).
//!
//! The algorithm is the same two-stage bounds machinery as `rtr_topk`
//! (BCA + Prop. 4 for F-Rank, border nodes + Eq. 22 for T-Rank, refinement
//! Eq. 17–18, stopping conditions Eq. 13–14); the difference is purely
//! operational — the AP `ensure`s node blocks before touching them, so the
//! measured fetch traffic and resident bytes are exactly the paper's
//! active-set quantities.

use crate::active::ActiveGraph;
use crate::gp::GpCluster;
use rtr_core::{CoreError, RankParams};
use rtr_graph::NodeId;
use rtr_topk::active_set::ActiveSetStats;
use rtr_topk::bounds::Bounds;
use rtr_topk::config::TopKConfig;
use rtr_topk::two_sbound::TopKResult;
use std::collections::HashMap;

const TIE_EPS: f64 = 1e-12;

/// Network-level statistics of one distributed query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistributedStats {
    /// Batched fetch requests the AP issued.
    pub fetch_requests: usize,
    /// Node blocks received.
    pub blocks_fetched: usize,
    /// Payload bytes received.
    pub bytes_transferred: usize,
    /// Resident active-set nodes at termination.
    pub active_nodes: usize,
    /// Resident active-set edges at termination.
    pub active_edges: usize,
    /// Resident active-set bytes at termination (paper Fig. 12 "Active set
    /// size").
    pub active_bytes: usize,
}

/// Distributed 2SBound processor.
#[derive(Clone, Copy, Debug)]
pub struct DistributedTwoSBound {
    params: RankParams,
    config: TopKConfig,
}

impl DistributedTwoSBound {
    /// Create with the given walk parameters and top-K configuration.
    pub fn new(params: RankParams, config: TopKConfig) -> Self {
        DistributedTwoSBound { params, config }
    }

    /// Run the query against a GP cluster. `node_count` is the graph's total
    /// node count (the only global metadata the AP holds).
    pub fn run(
        &self,
        cluster: &GpCluster,
        node_count: usize,
        q: NodeId,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        self.params.validate()?;
        if q.index() >= node_count {
            return Err(CoreError::NodeOutOfRange {
                node: q,
                node_count,
            });
        }
        let cfg = &self.config;
        let alpha = self.params.alpha;
        let mut active = ActiveGraph::new(cluster, node_count);

        // ---- F side: BCA state + bounds --------------------------------
        let mut rho: HashMap<u32, f64> = HashMap::new();
        let mut mu: HashMap<u32, f64> = HashMap::new();
        mu.insert(q.0, 1.0);
        let mut total_residual = 1.0f64;
        let mut f_bounds: HashMap<u32, Bounds> = HashMap::new();
        let mut f_unseen: f64; // set by Stage I before every use

        // ---- T side: membership + bounds --------------------------------
        let mut t_bounds: HashMap<u32, Bounds> = HashMap::new();
        active.ensure(&[q]);
        t_bounds.insert(
            q.0,
            Bounds {
                lower: alpha,
                upper: 1.0,
            },
        );
        let mut t_unseen = 1.0 - alpha;

        let k = cfg.k.min(node_count);
        // Match the single-machine adaptive refinement tolerance.
        let refine_tol = cfg.refine_tolerance.max(cfg.epsilon * 1e-2);
        let mut expansions = 0usize;
        loop {
            expansions += 1;

            // ---------------- F Stage I: BCA batch ----------------------
            f_unseen = {
                // Benefit needs |Out|: bring residual holders into the
                // active set (they are about to join it anyway).
                let mut holders: Vec<NodeId> = mu
                    .iter()
                    .filter(|(_, &r)| r > 0.0)
                    .map(|(&v, _)| NodeId(v))
                    .collect();
                holders.sort_unstable();
                active.ensure(&holders);
                let mut cands: Vec<(u32, f64)> = holders
                    .iter()
                    .map(|&v| {
                        let out = active.out_degree(v).max(1);
                        (v.0, mu[&v.0] / out as f64)
                    })
                    .collect();
                let take = cfg.m_f.min(cands.len());
                if take > 0 {
                    // Ties break by node id for reproducibility.
                    cands.select_nth_unstable_by(take - 1, |a, b| {
                        b.1.partial_cmp(&a.1)
                            .expect("NaN benefit")
                            .then(a.0.cmp(&b.0))
                    });
                    cands.truncate(take);
                    cands.sort_unstable_by_key(|&(v, _)| v); // deterministic order
                    for (vid, _) in cands {
                        let Some(residual) = mu.remove(&vid) else {
                            continue;
                        };
                        *rho.entry(vid).or_insert(0.0) += alpha * residual;
                        let spread = (1.0 - alpha) * residual;
                        let mut spread_out = 0.0;
                        // Copy the adjacency to end the borrow before mutating mu.
                        let edges: Vec<(NodeId, f64)> = active.out_edges(NodeId(vid)).to_vec();
                        for (dst, prob) in edges {
                            let amt = spread * prob;
                            *mu.entry(dst.0).or_insert(0.0) += amt;
                            spread_out += amt;
                        }
                        total_residual -= residual - spread_out;
                    }
                }
                // Prop. 4 unseen bound — sound only on self-loop-free
                // graphs; otherwise the safe first-arrival bound.
                let bound = if cluster.has_self_loops() {
                    total_residual.max(0.0)
                } else {
                    let max_mu = mu.values().copied().fold(0.0, f64::max);
                    alpha / (2.0 - alpha) * max_mu
                        + (1.0 - alpha) / (2.0 - alpha) * total_residual.max(0.0)
                };
                for (&vid, &r) in &rho {
                    let e = f_bounds.entry(vid).or_insert_with(|| Bounds::unseen(1.0));
                    e.tighten_lower(r);
                    e.tighten_upper(r + bound);
                }
                bound
            };

            // ---------------- F Stage II: refinement --------------------
            {
                let mut members: Vec<u32> = f_bounds.keys().copied().collect();
                members.sort_unstable(); // deterministic sweep order
                let as_nodes: Vec<NodeId> = members.iter().map(|&v| NodeId(v)).collect();
                active.ensure(&as_nodes);
                for _ in 0..cfg.refine_max_sweeps {
                    let mut max_change = 0.0f64;
                    for &vid in &members {
                        let v = NodeId(vid);
                        let indicator = if v == q { alpha } else { 0.0 };
                        let mut lo = 0.0;
                        let mut hi = 0.0;
                        for &(src, prob) in active.in_edges(v) {
                            match f_bounds.get(&src.0) {
                                Some(b) => {
                                    lo += prob * b.lower;
                                    hi += prob * b.upper;
                                }
                                None => hi += prob * f_unseen,
                            }
                        }
                        let b = f_bounds.get_mut(&vid).expect("member");
                        max_change =
                            max_change.max(b.tighten_lower(indicator + (1.0 - alpha) * lo));
                        max_change =
                            max_change.max(b.tighten_upper(indicator + (1.0 - alpha) * hi));
                    }
                    if max_change < refine_tol {
                        break;
                    }
                }
            }

            // ---------------- T Stage I: border expansion ---------------
            {
                let is_border =
                    |vid: u32, active: &ActiveGraph<'_>, t_bounds: &HashMap<u32, Bounds>| {
                        active
                            .in_edges(NodeId(vid))
                            .iter()
                            .any(|&(s, _)| !t_bounds.contains_key(&s.0))
                    };
                let mut border: Vec<(u32, f64)> = t_bounds
                    .iter()
                    .filter(|(&v, _)| is_border(v, &active, &t_bounds))
                    .map(|(&v, b)| (v, b.upper))
                    .collect();
                border.sort_unstable_by_key(|&(v, _)| v);
                if !border.is_empty() {
                    let take = cfg.m_t.min(border.len());
                    border.select_nth_unstable_by(take - 1, |a, b| {
                        b.1.partial_cmp(&a.1)
                            .expect("NaN upper")
                            .then(a.0.cmp(&b.0))
                    });
                    border.truncate(take);
                    let prev_unseen = t_unseen;
                    let mut newcomers = Vec::new();
                    for (u, _) in border {
                        for &(src, _) in active.in_edges(NodeId(u)) {
                            if let std::collections::hash_map::Entry::Vacant(e) =
                                t_bounds.entry(src.0)
                            {
                                e.insert(Bounds::unseen(prev_unseen));
                                newcomers.push(src);
                            }
                        }
                    }
                    active.ensure(&newcomers);
                }
                // Refresh unseen bound (Eq. 22), monotone.
                let max_border = t_bounds
                    .iter()
                    .filter(|(&v, _)| is_border(v, &active, &t_bounds))
                    .map(|(_, b)| b.upper)
                    .fold(f64::NEG_INFINITY, f64::max);
                let fresh = if max_border.is_finite() {
                    (1.0 - alpha) * max_border
                } else {
                    0.0
                };
                if fresh < t_unseen {
                    t_unseen = fresh;
                }
            }

            // ---------------- T Stage II: refinement --------------------
            {
                let mut members: Vec<u32> = t_bounds.keys().copied().collect();
                members.sort_unstable(); // deterministic sweep order
                for _ in 0..cfg.refine_max_sweeps {
                    let mut max_change = 0.0f64;
                    for &vid in &members {
                        let v = NodeId(vid);
                        let indicator = if v == q { alpha } else { 0.0 };
                        let mut lo = 0.0;
                        let mut hi = 0.0;
                        for &(dst, prob) in active.out_edges(v) {
                            match t_bounds.get(&dst.0) {
                                Some(b) => {
                                    lo += prob * b.lower;
                                    hi += prob * b.upper;
                                }
                                None => hi += prob * t_unseen,
                            }
                        }
                        let b = t_bounds.get_mut(&vid).expect("member");
                        max_change =
                            max_change.max(b.tighten_lower(indicator + (1.0 - alpha) * lo));
                        max_change =
                            max_change.max(b.tighten_upper(indicator + (1.0 - alpha) * hi));
                    }
                    if max_change < refine_tol {
                        break;
                    }
                }
            }

            // ---------------- decision ----------------------------------
            let mut members: Vec<(NodeId, Bounds)> = f_bounds
                .iter()
                .filter_map(|(&v, fb)| t_bounds.get(&v).map(|tb| (NodeId(v), fb.product(tb))))
                .collect();
            members.sort_by(|a, b| {
                b.1.lower
                    .partial_cmp(&a.1.lower)
                    .expect("NaN bound")
                    .then(a.0.cmp(&b.0))
            });
            let mut r_unseen = f_unseen * t_unseen;
            for (&v, fb) in &f_bounds {
                if !t_bounds.contains_key(&v) {
                    r_unseen = r_unseen.max(fb.upper * t_unseen);
                }
            }
            for (&v, tb) in &t_bounds {
                if !f_bounds.contains_key(&v) {
                    r_unseen = r_unseen.max(f_unseen * tb.upper);
                }
            }

            let done = members.len() >= k && conditions_hold(&members, k, cfg.epsilon, r_unseen);
            let exhausted = total_residual < 1e-15 && t_unseen == 0.0;
            if done || exhausted || expansions >= cfg.max_expansions {
                let stats = DistributedStats {
                    fetch_requests: active.fetch_requests(),
                    blocks_fetched: active.blocks_fetched(),
                    bytes_transferred: active.bytes_transferred(),
                    active_nodes: active.resident_nodes(),
                    active_edges: active.resident_edges(),
                    active_bytes: active.resident_bytes(),
                };
                members.truncate(k);
                let result = TopKResult {
                    ranking: members.iter().map(|&(v, _)| v).collect(),
                    bounds: members.iter().map(|&(_, b)| (b.lower, b.upper)).collect(),
                    expansions,
                    converged: done,
                    active: ActiveSetStats {
                        f_nodes: f_bounds.len(),
                        t_nodes: t_bounds.len(),
                        active_nodes: stats.active_nodes,
                        active_edges: stats.active_edges,
                        bytes: stats.active_bytes,
                    },
                };
                return Ok((result, stats));
            }
        }
    }
}

fn conditions_hold(members: &[(NodeId, Bounds)], k: usize, epsilon: f64, r_unseen: f64) -> bool {
    let mut max_other_upper = r_unseen;
    for &(_, b) in &members[k..] {
        max_other_upper = max_other_upper.max(b.upper);
    }
    if members[k - 1].1.lower <= max_other_upper - epsilon - TIE_EPS {
        return false;
    }
    for i in 0..k - 1 {
        if members[i].1.lower <= members[i + 1].1.upper - epsilon - TIE_EPS {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::prelude::*;
    use rtr_graph::toy::fig2_toy;
    use rtr_topk::prelude::*;

    fn toy_config() -> TopKConfig {
        TopKConfig {
            k: 4,
            epsilon: 0.0,
            m_f: 4,
            m_t: 2,
            max_expansions: 500,
            ..TopKConfig::default()
        }
    }

    #[test]
    fn distributed_matches_single_machine() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let local = TwoSBound::new(params, toy_config())
            .run(&g, ids.t1)
            .unwrap();
        let cluster = GpCluster::spawn(&g, 3);
        let (dist, _) = DistributedTwoSBound::new(params, toy_config())
            .run(&cluster, g.node_count(), ids.t1)
            .unwrap();
        let exact = RoundTripRank::new(params)
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        assert_eq!(local.ranking.len(), dist.ranking.len());
        for (l, d) in local.ranking.iter().zip(&dist.ranking) {
            assert!(
                (exact.score(*l) - exact.score(*d)).abs() < 1e-9,
                "rank scores differ: {l:?} vs {d:?}"
            );
        }
    }

    #[test]
    fn gp_count_does_not_change_results() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let mut rankings = Vec::new();
        for gps in [1, 2, 5] {
            let cluster = GpCluster::spawn(&g, gps);
            let (res, _) = DistributedTwoSBound::new(params, toy_config())
                .run(&cluster, g.node_count(), ids.t1)
                .unwrap();
            rankings.push(res.ranking);
        }
        assert_eq!(rankings[0], rankings[1]);
        assert_eq!(rankings[1], rankings[2]);
    }

    #[test]
    fn active_set_is_fraction_of_graph() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (_, stats) = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, g.node_count(), ids.t1)
            .unwrap();
        assert!(stats.active_nodes <= g.node_count());
        assert!(stats.active_bytes > 0);
        assert!(stats.fetch_requests > 0);
        assert!(stats.blocks_fetched <= g.node_count());
    }

    #[test]
    fn converges_on_toy() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (res, _) = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, g.node_count(), ids.t1)
            .unwrap();
        assert!(res.converged);
        assert_eq!(res.ranking[0], ids.t1);
    }

    #[test]
    fn out_of_range_query_rejected() {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let err = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, g.node_count(), NodeId(999))
            .unwrap_err();
        assert!(matches!(err, CoreError::NodeOutOfRange { .. }));
    }
}
