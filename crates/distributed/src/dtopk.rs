//! Distributed 2SBound: the paper's Algorithm 1 running on the AP, with
//! every adjacency access served from the incrementally assembled active
//! set (paper Sect. V-B2).
//!
//! The AP-side state machine is an **operation-for-operation mirror** of
//! the single-machine engines ([`TwoSBound`](rtr_topk::TwoSBound) /
//! [`TwoSBoundPlus`](rtr_topk::TwoSBoundPlus)): the same BCA batch
//! selection (benefit `µ/|Out|`, ties by id, processed in ascending id
//! order), the same Prop. 4 / first-arrival unseen bounds, the same border
//! expansion, the same Gauss-Seidel refinement sweeps in the same
//! deterministic order, the same stopping conditions (Eq. 13–14) — down to
//! the floating-point accumulation order. The difference is purely
//! operational: the AP `ensure`s node blocks before touching them, so the
//! measured fetch traffic and resident bytes are exactly the paper's
//! active-set quantities (Fig. 12), **and the returned
//! [`TopKResult`] is bit-identical to the local engine's** — ranking,
//! bounds, expansion count, and active-set statistics. That bit-identity
//! is what lets a serving cache share entries between local and
//! distributed backends: the answers are interchangeable, only the wire
//! cost differs.
//!
//! Like the local engines, the distributed processors honor the full
//! [`TopKConfig`] and the Fig. 11a ablation [`Scheme`]s (`with_scheme`),
//! and expose workspace-reusing `run_with` entry points so a pooled worker
//! serves query after query without reallocating its AP-side maps.

use crate::active::ActiveGraph;
use crate::gp::GpCluster;
use rtr_core::{CoreError, RankParams};
use rtr_graph::wire::NodeBlock;
use rtr_graph::NodeId;
use rtr_topk::active_set::ActiveSetStats;
use rtr_topk::bounds::Bounds;
use rtr_topk::config::TopKConfig;
use rtr_topk::fbound::FBoundMode;
use rtr_topk::schemes::Scheme;
use rtr_topk::tbound::TBoundMode;
use rtr_topk::two_sbound::TopKResult;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// Matches the local engines' tie tolerance so stopping decisions agree.
const TIE_EPS: f64 = 1e-12;

/// Network-level statistics of one distributed query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistributedStats {
    /// Batched fetch requests the AP issued.
    pub fetch_requests: usize,
    /// Node blocks received.
    pub blocks_fetched: usize,
    /// Payload bytes received.
    pub bytes_transferred: usize,
    /// Resident active-set nodes at termination.
    pub active_nodes: usize,
    /// Resident active-set edges at termination.
    pub active_edges: usize,
    /// Resident active-set bytes at termination (paper Fig. 12 "Active set
    /// size").
    pub active_bytes: usize,
}

/// Reusable AP-side state for one distributed query: the BCA `ρ`/`µ` maps,
/// both bounds maps, every scratch vector, and the resident-block storage.
/// Cleared in O(previous query's touched entries) at the start of each run,
/// so a long-lived serving worker allocates nothing on the steady-state
/// path — the distributed mirror of `rtr_topk::TopKWorkspace`.
#[derive(Debug, Default)]
pub struct DistributedWorkspace {
    rho: HashMap<u32, f64>,
    mu: HashMap<u32, f64>,
    f_bounds: HashMap<u32, Bounds>,
    t_bounds: HashMap<u32, Bounds>,
    order: Vec<u32>,
    border: Vec<(u32, f64)>,
    members: Vec<(NodeId, Bounds)>,
    nodes_scratch: Vec<NodeId>,
    cands: Vec<(u32, f64)>,
    edges_scratch: Vec<(NodeId, f64)>,
    union: HashSet<u32>,
    blocks: HashMap<u32, NodeBlock>,
}

impl DistributedWorkspace {
    /// A workspace (all buffers empty) ready for any cluster.
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.rho.clear();
        self.mu.clear();
        self.f_bounds.clear();
        self.t_bounds.clear();
        self.order.clear();
        self.border.clear();
        self.members.clear();
        self.nodes_scratch.clear();
        self.cands.clear();
        self.edges_scratch.clear();
        self.union.clear();
        // blocks are cleared by ActiveGraph::with_storage.
    }
}

/// How f- and t-bounds combine into RoundTripRank bounds: the plain product
/// of Eq. 15, or the β-exponent blend of RoundTripRank+ (mirroring
/// `TwoSBoundPlus` exactly, `powf` included, so β = 0.5 is bit-identical to
/// the plus engine rather than to the product one).
#[derive(Clone, Copy, Debug)]
enum Blend {
    Product,
    Beta { wf: f64, wt: f64 },
}

impl Blend {
    #[inline]
    fn bounds(&self, f: &Bounds, t: &Bounds) -> Bounds {
        match *self {
            Blend::Product => f.product(t),
            Blend::Beta { wf, wt } => Bounds {
                lower: f.lower.powf(wf) * t.lower.powf(wt),
                upper: f.upper.powf(wf) * t.upper.powf(wt),
            },
        }
    }

    #[inline]
    fn scalar(&self, f: f64, t: f64) -> f64 {
        match *self {
            Blend::Product => f * t,
            Blend::Beta { wf, wt } => f.powf(wf) * t.powf(wt),
        }
    }
}

/// Distributed 2SBound processor (RoundTripRank).
#[derive(Clone, Copy, Debug)]
pub struct DistributedTwoSBound {
    params: RankParams,
    config: TopKConfig,
    scheme: Scheme,
}

impl DistributedTwoSBound {
    /// Create with the paper's full scheme.
    pub fn new(params: RankParams, config: TopKConfig) -> Self {
        Self::with_scheme(params, config, Scheme::TwoSBound)
    }

    /// Create with an explicit computational scheme (the Fig. 11a
    /// ablations), honored exactly as `TwoSBound::run_with` honors it.
    pub fn with_scheme(params: RankParams, config: TopKConfig, scheme: Scheme) -> Self {
        DistributedTwoSBound {
            params,
            config,
            scheme,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TopKConfig {
        &self.config
    }

    /// Run the query against a GP cluster, allocating fresh AP state.
    /// Serving paths use [`DistributedTwoSBound::run_with`] instead.
    pub fn run(
        &self,
        cluster: &GpCluster,
        q: NodeId,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        self.run_with(cluster, q, &mut DistributedWorkspace::default())
    }

    /// Run the query reusing `ws`'s buffers. The [`TopKResult`] is
    /// bit-identical to [`DistributedTwoSBound::run`] — and to the local
    /// `TwoSBound::run_with` under the same parameters.
    pub fn run_with(
        &self,
        cluster: &GpCluster,
        q: NodeId,
        ws: &mut DistributedWorkspace,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        run_distributed(
            &self.params,
            &self.config,
            self.scheme,
            Blend::Product,
            cluster,
            q,
            ws,
        )
    }
}

/// Distributed 2SBound for RoundTripRank+ with specificity bias β —
/// mirrors `TwoSBoundPlus` exactly (β-exponent bound blending, Eq. 15/16
/// generalized).
#[derive(Clone, Copy, Debug)]
pub struct DistributedTwoSBoundPlus {
    params: RankParams,
    config: TopKConfig,
    scheme: Scheme,
    beta: f64,
}

impl DistributedTwoSBoundPlus {
    /// Create for a given β ∈ [0, 1] (the paper's full scheme).
    pub fn new(params: RankParams, config: TopKConfig, beta: f64) -> Result<Self, CoreError> {
        Self::with_scheme(params, config, Scheme::TwoSBound, beta)
    }

    /// Create with an explicit computational scheme.
    pub fn with_scheme(
        params: RankParams,
        config: TopKConfig,
        scheme: Scheme,
        beta: f64,
    ) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
            return Err(CoreError::InvalidBeta(beta));
        }
        Ok(DistributedTwoSBoundPlus {
            params,
            config,
            scheme,
            beta,
        })
    }

    /// The specificity bias in use.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The configuration in use.
    pub fn config(&self) -> &TopKConfig {
        &self.config
    }

    /// Run the β-weighted query, allocating fresh AP state.
    pub fn run(
        &self,
        cluster: &GpCluster,
        q: NodeId,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        self.run_with(cluster, q, &mut DistributedWorkspace::default())
    }

    /// Run the β-weighted query reusing `ws`'s buffers; bit-identical to
    /// the local `TwoSBoundPlus::run_with`.
    pub fn run_with(
        &self,
        cluster: &GpCluster,
        q: NodeId,
        ws: &mut DistributedWorkspace,
    ) -> Result<(TopKResult, DistributedStats), CoreError> {
        run_distributed(
            &self.params,
            &self.config,
            self.scheme,
            Blend::Beta {
                wf: 1.0 - self.beta,
                wt: self.beta,
            },
            cluster,
            q,
            ws,
        )
    }
}

/// Whether `vid` is a border node of `S_t`: a member with at least one
/// in-neighbor outside the membership.
fn is_border(active: &ActiveGraph<'_>, t_bounds: &HashMap<u32, Bounds>, vid: u32) -> bool {
    active
        .in_edges(NodeId(vid))
        .iter()
        .any(|&(s, _)| !t_bounds.contains_key(&s.0))
}

/// Refresh the t-side unseen bound (Eq. 22), monotonically.
fn refresh_t_unseen(
    active: &ActiveGraph<'_>,
    t_bounds: &HashMap<u32, Bounds>,
    alpha: f64,
    t_unseen: &mut f64,
) {
    let max_border = t_bounds
        .iter()
        .filter(|&(&v, _)| is_border(active, t_bounds, v))
        .map(|(_, b)| b.upper)
        .fold(f64::NEG_INFINITY, f64::max);
    let fresh = if max_border.is_finite() {
        (1.0 - alpha) * max_border
    } else {
        0.0 // no border: every remaining node is unreachable-to-q
    };
    if fresh < *t_unseen {
        *t_unseen = fresh;
    }
}

/// The shared AP driver behind both distributed processors. Each round
/// mirrors one iteration of the local engines' loop — F Stage I/II, T
/// Stage I/II, then the combined decision — with every adjacency access
/// routed through the active set.
fn run_distributed(
    params: &RankParams,
    cfg: &TopKConfig,
    scheme: Scheme,
    blend: Blend,
    cluster: &GpCluster,
    q: NodeId,
    ws: &mut DistributedWorkspace,
) -> Result<(TopKResult, DistributedStats), CoreError> {
    // Validate before borrowing any workspace buffer, exactly like the
    // local engines: a rejected query must not cost a worker its state.
    params.validate()?;
    let node_count = cluster.node_count();
    if q.index() >= node_count {
        return Err(CoreError::NodeOutOfRange {
            node: q,
            node_count,
        });
    }
    let alpha = params.alpha;
    let f_mode = scheme.f_mode();
    let t_mode = scheme.t_mode();
    ws.clear();
    let mut active = ActiveGraph::with_storage(cluster, std::mem::take(&mut ws.blocks));

    let k = cfg.k.min(node_count);
    if k == 0 {
        // K = 0 (or an empty graph) has a trivial answer; the stopping
        // conditions below index members[k-1] and must not see it. The
        // local engines return the same shape without touching the graph.
        let stats = DistributedStats::default();
        ws.blocks = active.into_storage();
        return Ok((
            TopKResult {
                ranking: Vec::new(),
                bounds: Vec::new(),
                expansions: 0,
                converged: true,
                active: ActiveSetStats::default(),
            },
            stats,
        ));
    }

    // ---- F side: BCA state + bounds (mirrors Bca + FNeighborhood) ------
    let rho = &mut ws.rho;
    let mu = &mut ws.mu;
    mu.insert(q.0, 1.0);
    let mut total_residual = 1.0f64;
    let f_bounds = &mut ws.f_bounds;
    let mut f_unseen: f64; // set by Stage I before every use

    // ---- T side: membership + bounds (mirrors TNeighborhood) -----------
    let t_bounds = &mut ws.t_bounds;
    active.ensure(&[q]);
    t_bounds.insert(
        q.0,
        Bounds {
            lower: alpha,
            upper: 1.0,
        },
    );
    let mut t_unseen = 1.0 - alpha;

    // Match the single-machine adaptive refinement tolerance.
    let refine_tol = cfg.refine_tolerance.max(cfg.epsilon * 1e-2);
    let mut expansions = 0usize;
    loop {
        expansions += 1;

        // ---------------- F Stage I: BCA batch ----------------------
        {
            ws.cands.clear();
            if cfg.m_f > 0 && !mu.is_empty() {
                // Benefit needs |Out|: bring residual holders into the
                // active set (the selected ones are about to join it
                // anyway). Sorted so the fetch batch is deterministic.
                ws.nodes_scratch.clear();
                ws.nodes_scratch.extend(
                    mu.iter()
                        .filter(|&(_, &r)| r > 0.0)
                        .map(|(&v, _)| NodeId(v)),
                );
                ws.nodes_scratch.sort_unstable();
                active.ensure(&ws.nodes_scratch);
                for &v in &ws.nodes_scratch {
                    let out = active.out_degree(v).max(1);
                    ws.cands.push((v.0, mu[&v.0] / out as f64));
                }
            }
            if !ws.cands.is_empty() {
                let take = cfg.m_f.min(ws.cands.len());
                // Top-m benefits; ties break by node id, exactly like the
                // local BCA's selection.
                ws.cands
                    .select_nth_unstable_by(take.saturating_sub(1), |a, b| {
                        b.1.partial_cmp(&a.1)
                            .expect("NaN benefit")
                            .then(a.0.cmp(&b.0))
                    });
                ws.cands.truncate(take);
                // Process in ascending id order so state evolution is
                // independent of map iteration order.
                ws.cands.sort_unstable_by_key(|&(v, _)| v);
                for i in 0..take {
                    let vid = ws.cands[i].0;
                    let Some(residual) = mu.remove(&vid) else {
                        continue;
                    };
                    if residual <= 0.0 {
                        continue;
                    }
                    *rho.entry(vid).or_insert(0.0) += alpha * residual;
                    let spread = (1.0 - alpha) * residual;
                    let mut spread_out = 0.0;
                    // Copy the adjacency into reusable scratch to end the
                    // active-set borrow before mutating µ.
                    ws.edges_scratch.clear();
                    ws.edges_scratch
                        .extend_from_slice(active.out_edges(NodeId(vid)));
                    for &(dst, prob) in &ws.edges_scratch {
                        let amt = spread * prob;
                        *mu.entry(dst.0).or_insert(0.0) += amt;
                        spread_out += amt;
                    }
                    total_residual -= residual - spread_out;
                }
            }
            // Unseen bound: Prop. 4 in TwoStage mode (first-arrival
            // fallback on self-loop graphs), first-arrival in Gupta mode —
            // the same arithmetic as `Bca::unseen_upper_bound` /
            // `Bca::gupta_upper_bound`.
            let clamped = total_residual.max(0.0);
            f_unseen = match f_mode {
                FBoundMode::Gupta => clamped,
                FBoundMode::TwoStage => {
                    if cluster.has_self_loops() {
                        clamped
                    } else {
                        let max_mu = mu.values().copied().fold(0.0, f64::max);
                        alpha / (2.0 - alpha) * max_mu + (1.0 - alpha) / (2.0 - alpha) * clamped
                    }
                }
            };
            // (Re)initialize: ρ is a valid lower bound, ρ + f̂(q) an upper
            // bound (Eq. 20–21); previous refinements are kept when tighter.
            for (&vid, &r) in rho.iter() {
                let e = f_bounds.entry(vid).or_insert_with(|| Bounds::unseen(1.0));
                e.tighten_lower(r);
                e.tighten_upper(r + f_unseen);
            }
        }

        // ---------------- F Stage II: refinement --------------------
        // (No-op in Gupta mode, exactly like `FNeighborhood::refine`.)
        if f_mode == FBoundMode::TwoStage {
            ws.order.clear();
            ws.order.extend(f_bounds.keys().copied());
            ws.order.sort_unstable(); // deterministic Gauss-Seidel sweep order
            ws.nodes_scratch.clear();
            ws.nodes_scratch.extend(ws.order.iter().map(|&v| NodeId(v)));
            active.ensure(&ws.nodes_scratch);
            for _sweep in 1..=cfg.refine_max_sweeps {
                let mut max_change = 0.0f64;
                for &vid in &ws.order {
                    let v = NodeId(vid);
                    let indicator = if v == q { alpha } else { 0.0 };
                    let mut lo = 0.0;
                    let mut hi = 0.0;
                    for &(src, prob) in active.in_edges(v) {
                        match f_bounds.get(&src.0) {
                            Some(b) => {
                                lo += prob * b.lower;
                                hi += prob * b.upper;
                            }
                            None => hi += prob * f_unseen,
                        }
                    }
                    let b = f_bounds.get_mut(&vid).expect("member");
                    max_change = max_change.max(b.tighten_lower(indicator + (1.0 - alpha) * lo));
                    max_change = max_change.max(b.tighten_upper(indicator + (1.0 - alpha) * hi));
                }
                if max_change < refine_tol {
                    break;
                }
            }
        }

        // ---------------- T Stage I: border expansion ---------------
        {
            ws.border.clear();
            for (&vid, b) in t_bounds.iter() {
                if is_border(&active, t_bounds, vid) {
                    ws.border.push((vid, b.upper));
                }
            }
            if !ws.border.is_empty() {
                let take = cfg.m_t.min(ws.border.len()).max(1);
                ws.border.select_nth_unstable_by(take - 1, |a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("NaN upper")
                        .then(a.0.cmp(&b.0))
                });
                ws.border.truncate(take);
                let prev_unseen = t_unseen;
                ws.nodes_scratch.clear(); // newcomers
                for i in 0..take {
                    let u = NodeId(ws.border[i].0);
                    for &(src, _) in active.in_edges(u) {
                        if let Entry::Vacant(e) = t_bounds.entry(src.0) {
                            e.insert(Bounds::unseen(prev_unseen));
                            ws.nodes_scratch.push(src);
                        }
                    }
                }
                active.ensure(&ws.nodes_scratch);
            }
            refresh_t_unseen(&active, t_bounds, alpha, &mut t_unseen);
        }

        // ---------------- T Stage II: refinement --------------------
        // (Single sweep in Sarkar mode; the unseen bound refreshes after
        // every sweep, exactly like `TNeighborhood::refine`.)
        {
            let sweeps_cap = match t_mode {
                TBoundMode::TwoStage => cfg.refine_max_sweeps,
                TBoundMode::Sarkar => 1,
            };
            ws.order.clear();
            ws.order.extend(t_bounds.keys().copied());
            ws.order.sort_unstable(); // deterministic Gauss-Seidel sweep order
            for _sweep in 1..=sweeps_cap {
                let mut max_change = 0.0f64;
                for &vid in &ws.order {
                    let v = NodeId(vid);
                    let indicator = if v == q { alpha } else { 0.0 };
                    let mut lo = 0.0;
                    let mut hi = 0.0;
                    for &(dst, prob) in active.out_edges(v) {
                        match t_bounds.get(&dst.0) {
                            Some(b) => {
                                lo += prob * b.lower;
                                hi += prob * b.upper;
                            }
                            None => hi += prob * t_unseen,
                        }
                    }
                    let b = t_bounds.get_mut(&vid).expect("member");
                    max_change = max_change.max(b.tighten_lower(indicator + (1.0 - alpha) * lo));
                    max_change = max_change.max(b.tighten_upper(indicator + (1.0 - alpha) * hi));
                }
                refresh_t_unseen(&active, t_bounds, alpha, &mut t_unseen);
                if max_change < refine_tol {
                    break;
                }
            }
        }

        // ---------------- decision ----------------------------------
        // r-neighborhood S = S_f ∩ S_t with blended bounds (Eq. 15) and
        // the unseen bound of Eq. 16, then the top-K conditions.
        ws.members.clear();
        ws.members.extend(
            f_bounds.iter().filter_map(|(&v, fb)| {
                t_bounds.get(&v).map(|tb| (NodeId(v), blend.bounds(fb, tb)))
            }),
        );
        ws.members.sort_by(|a, b| {
            b.1.lower
                .partial_cmp(&a.1.lower)
                .expect("NaN bound")
                .then(a.0.cmp(&b.0))
        });
        let mut r_unseen = blend.scalar(f_unseen, t_unseen);
        for (&v, fb) in f_bounds.iter() {
            if !t_bounds.contains_key(&v) {
                r_unseen = r_unseen.max(blend.scalar(fb.upper, t_unseen));
            }
        }
        for (&v, tb) in t_bounds.iter() {
            if !f_bounds.contains_key(&v) {
                r_unseen = r_unseen.max(blend.scalar(f_unseen, tb.upper));
            }
        }

        let done = ws.members.len() >= k && conditions_hold(&ws.members, k, cfg.epsilon, r_unseen);
        // Bounds can no longer improve once the residual is exhausted and
        // the border has emptied; return whatever we have.
        let exhausted = total_residual.max(0.0) < 1e-15 && t_unseen == 0.0;
        if done || exhausted || expansions >= cfg.max_expansions {
            // Active-set accounting identical to the local
            // `ActiveSetStats::measure`: every member of S_f ∪ S_t is
            // resident (its block was fetched before it was touched), so
            // the AP can reproduce the graph-side numbers from blocks
            // alone.
            ws.union.clear();
            let mut f_count = 0usize;
            for &v in f_bounds.keys() {
                f_count += 1;
                ws.union.insert(v);
            }
            let mut t_count = 0usize;
            for &v in t_bounds.keys() {
                t_count += 1;
                ws.union.insert(v);
            }
            let mut active_edges = 0usize;
            let mut active_bytes = 0usize;
            for &v in ws.union.iter() {
                let block = active.block(NodeId(v)).expect("member resident");
                active_edges += block.out_edges.len() + block.in_edges.len();
                active_bytes += block.footprint_bytes();
            }
            let active_stats = ActiveSetStats {
                f_nodes: f_count,
                t_nodes: t_count,
                active_nodes: ws.union.len(),
                active_edges,
                bytes: active_bytes,
            };
            let stats = DistributedStats {
                fetch_requests: active.fetch_requests(),
                blocks_fetched: active.blocks_fetched(),
                bytes_transferred: active.bytes_transferred(),
                active_nodes: active.resident_nodes(),
                active_edges: active.resident_edges(),
                active_bytes: active.resident_bytes(),
            };
            ws.members.truncate(k);
            let result = TopKResult {
                ranking: ws.members.iter().map(|&(v, _)| v).collect(),
                bounds: ws
                    .members
                    .iter()
                    .map(|&(_, b)| (b.lower, b.upper))
                    .collect(),
                expansions,
                converged: done,
                active: active_stats,
            };
            ws.blocks = active.into_storage();
            return Ok((result, stats));
        }
    }
}

fn conditions_hold(members: &[(NodeId, Bounds)], k: usize, epsilon: f64, r_unseen: f64) -> bool {
    // Eq. 13: the K-th lower bound beats every other upper bound.
    let mut max_other_upper = r_unseen;
    for &(_, b) in &members[k..] {
        max_other_upper = max_other_upper.max(b.upper);
    }
    if members[k - 1].1.lower <= max_other_upper - epsilon - TIE_EPS {
        return false;
    }
    // Eq. 14: consecutive order within the top K is certain.
    for i in 0..k - 1 {
        if members[i].1.lower <= members[i + 1].1.upper - epsilon - TIE_EPS {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;
    use rtr_topk::prelude::*;

    fn toy_config() -> TopKConfig {
        TopKConfig {
            k: 4,
            epsilon: 0.0,
            m_f: 4,
            m_t: 2,
            max_expansions: 500,
            ..TopKConfig::default()
        }
    }

    /// The acceptance clause, at unit scale: the distributed run is
    /// bit-identical to the local engine — ranking, bounds, expansions,
    /// and active-set statistics.
    #[test]
    fn distributed_is_bit_identical_to_local() {
        let (g, _) = fig2_toy();
        let params = RankParams::default();
        let cluster = GpCluster::spawn(&g, 3);
        for q in g.nodes() {
            let local = TwoSBound::new(params, toy_config()).run(&g, q).unwrap();
            let (dist, stats) = DistributedTwoSBound::new(params, toy_config())
                .run(&cluster, q)
                .unwrap();
            assert_eq!(local.ranking, dist.ranking, "query {q:?}");
            assert_eq!(local.bounds, dist.bounds, "query {q:?}");
            assert_eq!(local.expansions, dist.expansions, "query {q:?}");
            assert_eq!(local.converged, dist.converged, "query {q:?}");
            assert_eq!(local.active, dist.active, "query {q:?}");
            assert!(stats.bytes_transferred > 0);
        }
    }

    #[test]
    fn every_scheme_is_bit_identical_to_local() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let cluster = GpCluster::spawn(&g, 2);
        for scheme in Scheme::all() {
            let local = TwoSBound::with_scheme(params, toy_config(), scheme)
                .run(&g, ids.t1)
                .unwrap();
            let (dist, _) = DistributedTwoSBound::with_scheme(params, toy_config(), scheme)
                .run(&cluster, ids.t1)
                .unwrap();
            assert_eq!(local.ranking, dist.ranking, "{scheme:?}");
            assert_eq!(local.bounds, dist.bounds, "{scheme:?}");
            assert_eq!(local.expansions, dist.expansions, "{scheme:?}");
            assert_eq!(local.active, dist.active, "{scheme:?}");
        }
    }

    #[test]
    fn plus_is_bit_identical_to_local_across_betas() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let cluster = GpCluster::spawn(&g, 3);
        for beta in [0.0, 0.3, 0.5, 0.7, 1.0] {
            let local = TwoSBoundPlus::new(params, toy_config(), beta)
                .unwrap()
                .run(&g, ids.t1)
                .unwrap();
            let (dist, _) = DistributedTwoSBoundPlus::new(params, toy_config(), beta)
                .unwrap()
                .run(&cluster, ids.t1)
                .unwrap();
            assert_eq!(local.ranking, dist.ranking, "β={beta}");
            assert_eq!(local.bounds, dist.bounds, "β={beta}");
            assert_eq!(local.expansions, dist.expansions, "β={beta}");
            assert_eq!(local.active, dist.active, "β={beta}");
        }
    }

    #[test]
    fn run_with_reuses_workspace_bit_identically() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let cluster = GpCluster::spawn(&g, 2);
        let engine = DistributedTwoSBound::new(params, toy_config());
        let mut ws = DistributedWorkspace::new();
        for q in [ids.t1, ids.v1, ids.t2, ids.t1] {
            let (fresh, fresh_stats) = engine.run(&cluster, q).unwrap();
            let (reused, reused_stats) = engine.run_with(&cluster, q, &mut ws).unwrap();
            assert_eq!(fresh.ranking, reused.ranking, "{q:?}");
            assert_eq!(fresh.bounds, reused.bounds, "{q:?}");
            assert_eq!(fresh.expansions, reused.expansions, "{q:?}");
            assert_eq!(fresh.active, reused.active, "{q:?}");
            assert_eq!(fresh_stats, reused_stats, "{q:?}");
        }
    }

    #[test]
    fn rejected_query_keeps_workspace_usable() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let engine = DistributedTwoSBound::new(RankParams::default(), toy_config());
        let mut ws = DistributedWorkspace::new();
        let (clean, _) = engine.run_with(&cluster, ids.t1, &mut ws).unwrap();
        assert!(engine.run_with(&cluster, NodeId(9999), &mut ws).is_err());
        let (after, _) = engine.run_with(&cluster, ids.t1, &mut ws).unwrap();
        assert_eq!(clean.bounds, after.bounds);
    }

    #[test]
    fn gp_count_does_not_change_results() {
        let (g, ids) = fig2_toy();
        let params = RankParams::default();
        let mut rankings = Vec::new();
        for gps in [1, 2, 5] {
            let cluster = GpCluster::spawn(&g, gps);
            let (res, _) = DistributedTwoSBound::new(params, toy_config())
                .run(&cluster, ids.t1)
                .unwrap();
            rankings.push(res.ranking);
        }
        assert_eq!(rankings[0], rankings[1]);
        assert_eq!(rankings[1], rankings[2]);
    }

    #[test]
    fn active_set_is_fraction_of_graph() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (_, stats) = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, ids.t1)
            .unwrap();
        assert!(stats.active_nodes <= g.node_count());
        assert!(stats.active_bytes > 0);
        assert!(stats.fetch_requests > 0);
        assert!(stats.blocks_fetched <= g.node_count());
    }

    #[test]
    fn converges_on_toy() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let (res, _) = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, ids.t1)
            .unwrap();
        assert!(res.converged);
        assert_eq!(res.ranking[0], ids.t1);
    }

    #[test]
    fn k_zero_is_trivially_empty() {
        let (g, ids) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let cfg = TopKConfig {
            k: 0,
            ..toy_config()
        };
        let (res, stats) = DistributedTwoSBound::new(RankParams::default(), cfg)
            .run(&cluster, ids.t1)
            .unwrap();
        assert!(res.ranking.is_empty());
        assert!(res.converged);
        assert_eq!(res.expansions, 0);
        assert_eq!(stats, DistributedStats::default());
    }

    #[test]
    fn out_of_range_query_rejected() {
        let (g, _) = fig2_toy();
        let cluster = GpCluster::spawn(&g, 2);
        let err = DistributedTwoSBound::new(RankParams::default(), toy_config())
            .run(&cluster, NodeId(999))
            .unwrap_err();
        assert!(matches!(err, CoreError::NodeOutOfRange { .. }));
    }

    #[test]
    fn plus_rejects_invalid_beta() {
        let p = RankParams::default();
        assert!(DistributedTwoSBoundPlus::new(p, toy_config(), -0.1).is_err());
        assert!(DistributedTwoSBoundPlus::new(p, toy_config(), 1.5).is_err());
        assert!(DistributedTwoSBoundPlus::new(p, toy_config(), f64::NAN).is_err());
    }
}
