//! Synchronization-primitive facade: plain `std::sync` in production
//! builds, `loom_shim`'s instrumented types under the `rtr_check`
//! feature so the `rtr-check` model suites can exhaustively explore the
//! histogram shard-record/merge and counter/gauge protocols. Code in
//! this crate imports sync primitives from here, never from `std::sync`
//! directly (the one exception: `static` initializers, which need the
//! `const fn new` of the `std` atomics and are documented in place).

#[cfg(feature = "rtr_check")]
pub(crate) use loom_shim::sync::Mutex;
#[cfg(not(feature = "rtr_check"))]
pub(crate) use std::sync::Mutex;

/// Atomic types routed through the facade; `Ordering` is always the real
/// `std` enum (loom-shim re-exports it unchanged).
pub(crate) mod atomic {
    #[cfg(feature = "rtr_check")]
    pub(crate) use loom_shim::sync::atomic::{AtomicI64, AtomicU64};
    #[cfg(not(feature = "rtr_check"))]
    pub(crate) use std::sync::atomic::{AtomicI64, AtomicU64};

    pub(crate) use std::sync::atomic::Ordering;
}
