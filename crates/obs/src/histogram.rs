//! Fixed-bucket log-linear histograms with bounded relative error.
//!
//! The bucket layout is the HdrHistogram/DDSketch family's classic
//! compromise: within each power-of-two octave the range is cut into
//! [`SUB`] equal linear buckets, so every bucket's width is at most
//! `1/SUB` of its lower bound. Reporting any point of a bucket is
//! therefore within a **relative error of `1/SUB` (3.125%)** of every
//! sample that landed in it — tight enough for latency quantiles, wide
//! enough that the whole `u64` range (595 years at nanosecond resolution)
//! fits in [`BUCKETS`] = 1920 fixed slots with no allocation after
//! construction.
//!
//! Recording is **shard-per-worker**: each recording thread hashes to one
//! of N shards and does two relaxed `fetch_add`s — no locks, no CAS
//! loops, no false sharing between workers on different shards. Shards
//! (and whole histograms, e.g. per-run bench passes) merge by bucket-wise
//! addition; `merge(a, b)` is exactly the histogram of the union of the
//! recorded samples, which the proptest suite pins.

use crate::rtr_sync::atomic::{AtomicU64, Ordering};
use crate::snapshot::fmt_f64;
use std::sync::atomic::AtomicUsize;
use std::time::Duration;

/// Log-linear subdivision: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets.
pub const SUB_BITS: u32 = 5;

/// Buckets per octave (32): the quantile relative-error bound is `1/SUB`.
pub const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`: values below [`SUB`] get one
/// exact bucket each, then one octave of [`SUB`] buckets per leading-bit
/// position from `SUB_BITS` to 63.
pub const BUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize) * SUB as usize;

/// The bucket index holding `v`. Values below [`SUB`] map exactly; above,
/// the top `SUB_BITS + 1` significant bits select (octave, linear offset).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = msb - SUB_BITS;
    let offset = (v >> group) - SUB;
    SUB as usize + (group as usize) * SUB as usize + offset as usize
}

/// The inclusive `(lo, hi)` value range of bucket `i` — the inverse of
/// [`bucket_index`]: every `v` with `bucket_index(v) == i` satisfies
/// `lo <= v <= hi`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB as usize {
        return (i as u64, i as u64);
    }
    let group = ((i - SUB as usize) / SUB as usize) as u32;
    let offset = ((i - SUB as usize) % SUB as usize) as u64;
    let lo = (SUB + offset) << group;
    (lo, lo + ((1u64 << group) - 1))
}

/// Round-robin shard assignment: each thread gets a stable slot on first
/// use, so a fixed worker pool spreads across shards with no hashing on
/// the record path.
fn shard_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        // ordering: Relaxed — slots only need to be distinct per thread.
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

struct Shard {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

/// A concurrent fixed-bucket log-linear histogram of `u64` samples
/// (typically latencies in nanoseconds or sizes in bytes).
///
/// ```
/// use rtr_obs::Histogram;
/// let h = Histogram::new(2);
/// for v in [10, 20, 30, 40] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 4);
/// assert_eq!(snap.quantile(50.0), 20); // exact below 32
/// ```
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Histogram {
    /// A histogram with `shards` independent recording shards (clamped to
    /// at least 1). Size it to the expected number of concurrently
    /// recording threads; more shards trade snapshot cost for less
    /// record-path contention.
    pub fn new(shards: usize) -> Histogram {
        Histogram {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
        }
    }

    /// Record one sample. Two relaxed atomic adds; wait-free.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_slot() % self.shards.len()];
        // ordering: Relaxed (×2) — each counter is individually untorn
        // but a racing snapshot is not a consistent cut across them; the
        // rtr-check histogram suite pins exactly that contract.
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds (saturating at `u64::MAX`,
    /// i.e. after ~595 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy merging every shard. Concurrent recording
    /// remains safe; a snapshot taken mid-record may miss in-flight
    /// samples but never tears a bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in self.shards.iter() {
            for (b, a) in buckets.iter_mut().zip(shard.buckets.iter()) {
                // ordering: Relaxed — see record(): per-counter untorn,
                // no cross-counter cut promised mid-flight.
                *b += a.load(Ordering::Relaxed);
            }
            // ordering: Relaxed — same contract as the bucket loads.
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }
}

/// An immutable, mergeable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity element of [`merge`](Self::merge)).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (wrapping on `u64` overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-wise accumulate `other` into `self`: afterwards `self` is
    /// exactly the histogram of the union of both sample multisets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The `q`-th percentile (`0 <= q <= 100`, clamped) by the
    /// nearest-rank rule, reported as the containing bucket's **upper
    /// bound** — within a relative error of `1/SUB` (3.125%) of the true
    /// sample, and an exact match below [`SUB`]. Empty snapshots report 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| bucket_bounds(i).1)
    }

    /// The non-empty buckets as `(lo, hi, count)`, in value order — the
    /// raw material for cumulative (`le`) rendering.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Prometheus text-exposition lines for this snapshot: cumulative
    /// `_bucket{le=...}` series over the non-empty buckets plus `+Inf`,
    /// then `_sum` and `_count`. `scale` divides raw sample units into the
    /// exposition unit (e.g. `1e9` for nanoseconds → seconds);
    /// `label_prefix` is the rendered label set without the closing brace
    /// (empty for an unlabeled series).
    pub(crate) fn render_prometheus(&self, out: &mut String, name: &str, labels: &str, scale: f64) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cum = 0u64;
        for (_, hi, c) in self.nonempty_buckets() {
            cum += c;
            out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}\n",
                fmt_f64(hi as f64 / scale)
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n",
            self.count
        ));
        let wrap = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push_str(&format!(
            "{name}_sum{wrap} {}\n",
            fmt_f64(self.sum as f64 / scale)
        ));
        out.push_str(&format!("{name}_count{wrap} {}\n", self.count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_consistent() {
        assert_eq!(BUCKETS, 32 + 59 * 32);
        // Every boundary value round-trips through index -> bounds.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            assert!(lo <= hi);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new(1);
        for v in 0..SUB {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), SUB);
        for v in 0..SUB {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!((lo, hi), (v, v));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [33u64, 100, 1_000, 12_345, 1_000_000, u64::MAX / 3, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            let err = (hi - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB as f64, "v = {v}: err {err}");
        }
    }

    #[test]
    fn quantiles_match_nearest_rank_on_exact_values() {
        let h = Histogram::new(4);
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(50.0), 3);
        assert_eq!(s.quantile(99.0), 5);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(100.0), 5);
        assert_eq!(s.quantile(-5.0), 1);
        assert_eq!(s.quantile(250.0), 5);
        assert_eq!(HistogramSnapshot::empty().quantile(50.0), 0);
    }

    #[test]
    fn merge_is_bucketwise_union() {
        let a = Histogram::new(1);
        let b = Histogram::new(3);
        let both = Histogram::new(2);
        for v in [10u64, 500, 70_000] {
            a.record(v);
            both.record(v);
        }
        for v in [11u64, 501, 90_000, 90_001] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn sum_and_mean_are_exact() {
        let h = Histogram::new(2);
        h.record(10);
        h.record(20);
        h.record(60);
        let s = h.snapshot();
        assert_eq!(s.sum(), 90);
        assert!((s.mean() - 30.0).abs() < 1e-12);
        assert_eq!(s.max(), 60);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new(4));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 1_000 + (i % 97));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn duration_recording_uses_nanoseconds() {
        let h = Histogram::new(1);
        h.record_duration(Duration::from_micros(5));
        let s = h.snapshot();
        let q = s.quantile(50.0);
        assert!((4_900..=5_200).contains(&q), "got {q}");
    }
}
