//! The metric registry: named, labeled families of counters, gauges, and
//! histograms.
//!
//! Registration (`counter`/`gauge`/`histogram_with`) takes a mutex and is
//! meant for **startup**: callers register once, keep the returned
//! `Arc` handle, and record through it lock-free forever after. The same
//! `(name, labels)` pair always resolves to the same instrument, so
//! re-registering is cheap and idempotent — but re-registering a name as
//! a *different kind* panics, because that is a programming error no
//! snapshot could render coherently.

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::rtr_sync::Mutex;
use crate::snapshot::{MetricFamily, MetricKind, MetricsSnapshot, Sample, SampleValue, Unit};
use std::collections::BTreeMap;
use std::sync::Arc;

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    unit: Unit,
    kind: MetricKind,
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

#[derive(Default)]
struct Inner {
    families: BTreeMap<String, Family>,
}

/// A shared, cheaply-cloneable registry of metric families.
///
/// ```
/// use rtr_obs::Registry;
/// let registry = Registry::new();
/// let served = registry.counter("demo_requests_total", "Requests served.");
/// served.inc();
/// let snap = registry.snapshot();
/// assert_eq!(snap.counter_value("demo_requests_total", &[]), Some(1));
/// assert!(snap.to_prometheus().contains("demo_requests_total 1"));
/// ```
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the unlabeled counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Get or create the counter `name` with the given label pairs.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge or histogram.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, Unit::Count, MetricKind::Counter, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Get or create the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Get or create the gauge `name` with the given label pairs.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or histogram.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, Unit::Count, MetricKind::Gauge, || {
            Handle::Gauge(Arc::new(Gauge::new()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Get or create the histogram `name` with the given label pairs,
    /// unit, and recording-shard count (sized to the number of threads
    /// expected to record concurrently; see
    /// [`Histogram::new`](crate::Histogram::new)).
    ///
    /// # Panics
    /// If `name` is already registered as a counter or gauge.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        unit: Unit,
        shards: usize,
    ) -> Arc<Histogram> {
        match self.register(name, labels, help, unit, MetricKind::Histogram, || {
            Handle::Histogram(Arc::new(Histogram::new(shards)))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        unit: Unit,
        kind: MetricKind,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        key.sort();
        // invariant: only map/Arc bookkeeping runs under the registry
        // lock (here and in snapshot()), so it cannot be poisoned.
        let mut inner = self.inner.lock().expect("registry poisoned");
        let family = inner
            .families
            .entry(name.to_owned())
            .or_insert_with(|| Family {
                help: help.to_owned(),
                unit,
                kind,
                series: BTreeMap::new(),
            });
        assert_eq!(
            family.kind,
            kind,
            "metric `{name}` already registered as a {}",
            family.kind.name()
        );
        let handle = family.series.entry(key).or_insert_with(make);
        match handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
        }
    }

    /// Capture every family into a [`MetricsSnapshot`], sorted by family
    /// name and label set.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // invariant: see register() — no user code under the lock.
        let inner = self.inner.lock().expect("registry poisoned");
        let families = inner
            .families
            .iter()
            .map(|(name, family)| MetricFamily {
                name: name.clone(),
                help: family.help.clone(),
                kind: family.kind,
                unit: family.unit,
                samples: family
                    .series
                    .iter()
                    .map(|(labels, handle)| Sample {
                        labels: labels.clone(),
                        value: match handle {
                            Handle::Counter(c) => SampleValue::Counter(c.get()),
                            Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                            Handle::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect();
        MetricsSnapshot { families }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_resolve_to_one_instrument() {
        let r = Registry::new();
        let a = r.counter("reg_total", "c");
        let b = r.counter("reg_total", "c");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().counter_value("reg_total", &[]), Some(2));
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter_with("reg_l", &[("a", "1"), ("b", "2")], "c");
        let b = r.counter_with("reg_l", &[("b", "2"), ("a", "1")], "c");
        a.add(5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let r = Registry::new();
        r.counter_with("reg_s", &[("w", "0")], "c").add(1);
        r.counter_with("reg_s", &[("w", "1")], "c").add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("reg_s", &[("w", "0")]), Some(1));
        assert_eq!(snap.counter_value("reg_s", &[("w", "1")]), Some(2));
        assert_eq!(snap.counter_total("reg_s"), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("reg_kind", "c");
        let _ = r.gauge("reg_kind", "g");
    }

    #[test]
    fn clones_share_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("reg_shared", "c").inc();
        assert_eq!(r2.snapshot().counter_value("reg_shared", &[]), Some(1));
    }
}
