//! The two scalar instruments: monotonic [`Counter`]s and up/down
//! [`Gauge`]s.
//!
//! Both are a single atomic word. The hot path (`inc`/`add`/`set`) is one
//! relaxed RMW — wait-free on every platform the engine targets — so
//! instrumenting the scheduler's per-job path costs nanoseconds, not
//! locks. Aggregation across threads is the atomic itself; there is
//! nothing to merge at read time.

use crate::rtr_sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count (requests served, bytes moved).
///
/// Writers call [`Counter::inc`]/[`Counter::add`] from any thread; readers
/// call [`Counter::get`]. Relaxed ordering everywhere: metrics observe
/// *counts*, not cross-variable invariants.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        // ordering: Relaxed — counts, not cross-variable invariants
        // (module doc); fetch_add keeps the count itself exact.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — same contract as inc().
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — a telemetry read may lag concurrent
        // writers; exact reads happen after quiescence (join/drop).
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value.
    ///
    /// This exists for **mirroring an external monotonic source** into the
    /// registry (e.g. a cache that already keeps its own atomic hit/miss
    /// counters, republished at snapshot time). Callers own the
    /// monotonicity contract; ordinary instrumentation should use
    /// [`Counter::inc`]/[`Counter::add`].
    #[inline]
    pub fn store(&self, n: u64) {
        // ordering: Relaxed — mirroring is last-writer-wins telemetry.
        self.0.store(n, Ordering::Relaxed);
    }
}

/// An instantaneous level that can move both ways (queue depth, resident
/// cache entries).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        // ordering: Relaxed — a gauge is an instantaneous level; readers
        // never infer other memory state from it (config flags like
        // cache_enabled are published once, before readers exist).
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (positive or negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        // ordering: Relaxed — fetch_add keeps the level exact; no
        // cross-variable ordering is promised.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        // ordering: Relaxed — telemetry read, may lag writers.
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.store(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.add(5);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn counter_is_exact_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
