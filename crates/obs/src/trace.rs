//! Per-query tracing: a timestamped record of the stages one request
//! passed through on its way to a response.
//!
//! A [`QueryTrace`] is a small `Vec` of `(stage, offset)` events measured
//! against one origin [`Instant`] (the moment the request entered the
//! engine). It is **opt-in per engine**: when tracing is off, no trace is
//! allocated at all — the serving hot path carries an `Option<Box<_>>`
//! that stays `None`, so the disabled cost is one branch, zero bytes.
//!
//! Offsets are monotone by construction (each `record` stamps
//! `origin.elapsed()`), the first event is always
//! [`TraceStage::Submit`] at offset zero, and the last event of a
//! completed request is [`TraceStage::Respond`] — whose offset is the
//! request's end-to-end latency as the trace saw it. The
//! `obs_trace` integration suite pins all three invariants.

use std::time::{Duration, Instant};

/// A point in a request's life the engine stamps into its trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceStage {
    /// The request entered the engine (always the first event, offset 0).
    Submit,
    /// The submit-side fast path answered it inline (cache hit or trivial
    /// request); no queueing happened.
    FastPath,
    /// The request was pushed onto the scheduler's queues.
    Enqueue,
    /// A worker picked it off its own queue or the shared injector.
    Dequeue,
    /// A worker stole it from a sibling's queue.
    Steal,
    /// It attached to an identical in-flight computation instead of
    /// running (the owner answers it at [`TraceStage::Respond`]).
    Attach,
    /// An execution backend started computing it.
    ComputeStart,
    /// One distributed fetch round crossed the wire (AP/GP backend only;
    /// repeats once per round).
    FetchRound,
    /// The execution backend finished.
    ComputeEnd,
    /// Its result was inserted into the result cache.
    CacheInsert,
    /// The response was built and sent (always the last event).
    Respond,
}

impl TraceStage {
    /// Stable lowercase name (used in rendered traces and docs).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Submit => "submit",
            TraceStage::FastPath => "fast_path",
            TraceStage::Enqueue => "enqueue",
            TraceStage::Dequeue => "dequeue",
            TraceStage::Steal => "steal",
            TraceStage::Attach => "attach",
            TraceStage::ComputeStart => "compute_start",
            TraceStage::FetchRound => "fetch_round",
            TraceStage::ComputeEnd => "compute_end",
            TraceStage::CacheInsert => "cache_insert",
            TraceStage::Respond => "respond",
        }
    }
}

/// One stamped stage: what happened and when, as an offset from the
/// trace's origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The stage.
    pub stage: TraceStage,
    /// Time since the trace's origin (the submit instant).
    pub at: Duration,
}

/// The timestamped stage record of one request.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    origin: Instant,
    events: Vec<TraceEvent>,
}

impl QueryTrace {
    /// Start a trace now: the origin is captured and
    /// [`TraceStage::Submit`] is recorded at offset zero.
    pub fn begin() -> QueryTrace {
        let mut events = Vec::with_capacity(8);
        events.push(TraceEvent {
            stage: TraceStage::Submit,
            at: Duration::ZERO,
        });
        QueryTrace {
            origin: Instant::now(),
            events,
        }
    }

    /// Stamp `stage` at the current offset from the origin.
    #[inline]
    pub fn record(&mut self, stage: TraceStage) {
        self.events.push(TraceEvent {
            stage,
            at: self.origin.elapsed(),
        });
    }

    /// Remove the most recent event if it is `stage`; returns whether it
    /// was removed. This supports *speculative* stamps — e.g. recording
    /// [`TraceStage::Attach`] before a racy attach-or-claim call and
    /// retracting it when the claim (not the attach) won.
    pub fn retract(&mut self, stage: TraceStage) -> bool {
        if self.events.last().map(|e| e.stage) == Some(stage) {
            self.events.pop();
            true
        } else {
            false
        }
    }

    /// The moment the trace began (the submit instant).
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Every recorded event, in recording (= chronological) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Offset of the first occurrence of `stage`, if it was recorded.
    pub fn stage_at(&self, stage: TraceStage) -> Option<Duration> {
        self.events.iter().find(|e| e.stage == stage).map(|e| e.at)
    }

    /// How many times `stage` was recorded (e.g. fetch rounds).
    pub fn count(&self, stage: TraceStage) -> usize {
        self.events.iter().filter(|e| e.stage == stage).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begins_with_submit_at_zero() {
        let t = QueryTrace::begin();
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].stage, TraceStage::Submit);
        assert_eq!(t.events()[0].at, Duration::ZERO);
    }

    #[test]
    fn offsets_are_monotone() {
        let mut t = QueryTrace::begin();
        t.record(TraceStage::Enqueue);
        t.record(TraceStage::Dequeue);
        t.record(TraceStage::ComputeStart);
        t.record(TraceStage::ComputeEnd);
        t.record(TraceStage::Respond);
        for pair in t.events().windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert_eq!(t.stage_at(TraceStage::Submit), Some(Duration::ZERO));
        assert!(t.stage_at(TraceStage::Respond).is_some());
        assert_eq!(t.stage_at(TraceStage::FastPath), None);
    }

    #[test]
    fn retract_pops_only_a_matching_tail() {
        let mut t = QueryTrace::begin();
        t.record(TraceStage::Attach);
        assert!(t.retract(TraceStage::Attach));
        assert_eq!(t.events().len(), 1);
        assert!(!t.retract(TraceStage::Attach), "nothing left to retract");
    }

    #[test]
    fn counts_repeated_stages() {
        let mut t = QueryTrace::begin();
        t.record(TraceStage::FetchRound);
        t.record(TraceStage::FetchRound);
        t.record(TraceStage::FetchRound);
        assert_eq!(t.count(TraceStage::FetchRound), 3);
        assert_eq!(t.count(TraceStage::Steal), 0);
    }
}
