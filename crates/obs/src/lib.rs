//! # rtr-obs — lock-free metrics and per-query tracing
//!
//! The single observability surface of the RoundTripRank serving stack:
//! every layer (`rtr-serve`'s scheduler, `rtr-cache`'s result cache,
//! `rtr-distributed`'s wire protocol) records into one [`Registry`], and
//! one [`MetricsSnapshot`] renders the whole system's state as either
//! Prometheus text exposition format or JSON.
//!
//! Three instruments, all designed for a hot serving path:
//!
//! * [`Counter`] / [`Gauge`] — one relaxed atomic word each; recording is
//!   wait-free.
//! * [`Histogram`] — fixed-bucket log-linear ([`SUB`] = 32 linear buckets
//!   per power-of-two octave, [`BUCKETS`] = 1920 slots covering all of
//!   `u64`), **shard-per-worker** so concurrent recorders never contend,
//!   and mergeable bucket-wise — `merge(a, b)` is exactly the histogram
//!   of the union of the samples. Quantiles carry a bounded relative
//!   error of `1/SUB` (3.125%).
//!
//! Plus one request-scoped record: [`QueryTrace`], a timestamped list of
//! [`TraceStage`]s (submit → fast-path/enqueue → dequeue/steal → compute,
//! with per-fetch-round events on the distributed path → respond). It is
//! allocated only when tracing is enabled; a disabled trace is a `None`
//! and costs one branch.
//!
//! ```
//! use rtr_obs::{Registry, Unit};
//!
//! let registry = Registry::new();
//! let served = registry.counter("requests_total", "Requests served.");
//! let latency = registry.histogram_with(
//!     "latency_seconds", &[], "End-to-end latency.", Unit::Nanoseconds, 4,
//! );
//! served.inc();
//! latency.record(1_250_000); // 1.25 ms, recorded as ns
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter_value("requests_total", &[]), Some(1));
//! assert!(snap.to_prometheus().contains("# TYPE latency_seconds histogram"));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod histogram;
mod metrics;
mod registry;
mod rtr_sync;
mod snapshot;
mod trace;

pub use histogram::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS, SUB, SUB_BITS,
};
pub use metrics::{Counter, Gauge};
pub use registry::Registry;
pub use snapshot::{MetricFamily, MetricKind, MetricsSnapshot, Sample, SampleValue, Unit};
pub use trace::{QueryTrace, TraceEvent, TraceStage};
