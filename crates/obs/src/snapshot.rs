//! Point-in-time views of a [`Registry`](crate::Registry) and their two
//! renderings: Prometheus text exposition format and JSON.
//!
//! A [`MetricsSnapshot`] is plain data — cloneable, inspectable in tests,
//! embeddable in bench artifacts — decoupled from the live atomics it was
//! read from. The Prometheus rendering is what a future `/metrics`
//! endpoint serves verbatim; the JSON rendering is what the committed
//! `BENCH_*.json` artifacts embed (quantile summaries, not raw buckets,
//! so artifacts stay human-readable).

use crate::histogram::HistogramSnapshot;
use std::fmt::Write as _;

/// The unit of a metric's raw recorded values, driving exposition
/// scaling: nanosecond histograms render as seconds (the Prometheus base
/// unit); counts and bytes render unscaled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless events (requests, steals, evictions).
    Count,
    /// Durations recorded as whole nanoseconds; rendered as seconds.
    Nanoseconds,
    /// Sizes in bytes; rendered unscaled.
    Bytes,
}

impl Unit {
    /// Divisor from raw recorded units into rendered units.
    pub fn scale(self) -> f64 {
        match self {
            Unit::Nanoseconds => 1e9,
            Unit::Count | Unit::Bytes => 1.0,
        }
    }

    /// Stable lowercase name for the JSON rendering.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Nanoseconds => "nanoseconds",
            Unit::Bytes => "bytes",
        }
    }
}

/// What kind of instrument a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous level.
    Gauge,
    /// Log-linear distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample's captured value.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A full histogram state.
    Histogram(HistogramSnapshot),
}

/// One labeled series within a family, as captured at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Label pairs, sorted by label name (empty for unlabeled series).
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: SampleValue,
}

/// One metric family: a name plus every labeled series registered under
/// it, sharing a kind, a help string, and a unit.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricFamily {
    /// Metric name (already in final exposition form, e.g.
    /// `rtr_serve_latency_seconds`).
    pub name: String,
    /// One-line description for `# HELP` / the JSON `help` field.
    pub help: String,
    /// Instrument kind.
    pub kind: MetricKind,
    /// Raw-value unit (drives rendering scale).
    pub unit: Unit,
    /// The captured series, sorted by label set.
    pub samples: Vec<Sample>,
}

/// A point-in-time capture of every metric in a registry.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Families sorted by name.
    pub families: Vec<MetricFamily>,
}

/// Format a float for exposition: plain decimal, up to 9 significant
/// decimals, trailing zeros trimmed — `0.00125`, never `1.25e-3`.
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_owned();
    }
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_owned()
    } else {
        s.to_owned()
    }
}

/// Escape a label value or help string for both renderings: backslash,
/// double quote, and newline.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect::<Vec<_>>()
        .join(",")
}

impl MetricsSnapshot {
    /// Look up a counter's value by family name and exact label set
    /// (order-insensitive). `None` when absent or not a counter.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)? {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Look up a gauge's value. `None` when absent or not a gauge.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.find(name, labels)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Look up a histogram sample. `None` when absent or not a histogram.
    pub fn histogram_value(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        match self.find(name, labels)? {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum a counter family across all its label sets (0 when the family
    /// is absent or empty).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.families
            .iter()
            .filter(|f| f.name == name)
            .flat_map(|f| &f.samples)
            .map(|s| match &s.value {
                SampleValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Sum every histogram sample of a family into one merged snapshot.
    pub fn histogram_total(&self, name: &str) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::empty();
        for family in self.families.iter().filter(|f| f.name == name) {
            for sample in &family.samples {
                if let SampleValue::Histogram(h) = &sample.value {
                    total.merge(h);
                }
            }
        }
        total
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        want.sort();
        let family = self.families.iter().find(|f| f.name == name)?;
        family
            .samples
            .iter()
            .find(|s| s.labels == want)
            .map(|s| &s.value)
    }

    /// Render as [Prometheus text exposition format]: `# HELP` / `# TYPE`
    /// per family, one line per series, histograms as cumulative
    /// `_bucket{le=...}` series (non-empty buckets plus `+Inf`) with
    /// `_sum` and `_count`. Nanosecond histograms are scaled to seconds.
    ///
    /// [Prometheus text exposition format]:
    ///     https://prometheus.io/docs/instrumenting/exposition_formats/
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.name());
            for sample in &family.samples {
                let labels = render_labels(&sample.labels);
                match &sample.value {
                    SampleValue::Counter(v) => {
                        let wrap = if labels.is_empty() {
                            String::new()
                        } else {
                            format!("{{{labels}}}")
                        };
                        let _ = writeln!(out, "{}{wrap} {v}", family.name);
                    }
                    SampleValue::Gauge(v) => {
                        let wrap = if labels.is_empty() {
                            String::new()
                        } else {
                            format!("{{{labels}}}")
                        };
                        let _ = writeln!(out, "{}{wrap} {v}", family.name);
                    }
                    SampleValue::Histogram(h) => {
                        h.render_prometheus(&mut out, &family.name, &labels, family.unit.scale());
                    }
                }
            }
        }
        out
    }

    /// Render as a JSON object keyed by family name. Counter and gauge
    /// samples carry a `value`; histogram samples carry a quantile
    /// summary (`count`, `sum`, `mean`, `p50`, `p90`, `p99`, `max`) in
    /// the family's rendered unit — raw buckets are deliberately not
    /// emitted, keeping embedded artifacts small and diffable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let families: Vec<String> = self
            .families
            .iter()
            .map(|family| {
                let samples: Vec<String> = family
                    .samples
                    .iter()
                    .map(|sample| {
                        let labels = if sample.labels.is_empty() {
                            String::new()
                        } else {
                            let pairs: Vec<String> = sample
                                .labels
                                .iter()
                                .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
                                .collect();
                            format!("\"labels\": {{ {} }}, ", pairs.join(", "))
                        };
                        let body = match &sample.value {
                            SampleValue::Counter(v) => format!("\"value\": {v}"),
                            SampleValue::Gauge(v) => format!("\"value\": {v}"),
                            SampleValue::Histogram(h) => {
                                let scale = family.unit.scale();
                                format!(
                                    "\"count\": {}, \"sum\": {}, \"mean\": {}, \
                                     \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}",
                                    h.count(),
                                    fmt_f64(h.sum() as f64 / scale),
                                    fmt_f64(h.mean() / scale),
                                    fmt_f64(h.quantile(50.0) as f64 / scale),
                                    fmt_f64(h.quantile(90.0) as f64 / scale),
                                    fmt_f64(h.quantile(99.0) as f64 / scale),
                                    fmt_f64(h.max() as f64 / scale)
                                )
                            }
                        };
                        format!("      {{ {labels}{body} }}")
                    })
                    .collect();
                format!(
                    "    \"{}\": {{\n      \"type\": \"{}\", \"unit\": \"{}\", \
                     \"help\": \"{}\",\n      \"samples\": [\n{}\n      ]\n    }}",
                    escape(&family.name),
                    family.kind.name(),
                    family.unit.name(),
                    escape(&family.help),
                    samples.join(",\n")
                )
            })
            .collect();
        out.push_str("  \"families\": {\n");
        out.push_str(&families.join(",\n"));
        out.push_str("\n  }\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn formats_floats_plainly() {
        assert_eq!(fmt_f64(0.00125), "0.00125");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::NAN), "0");
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_series() {
        let r = Registry::new();
        r.counter("test_requests_total", "Requests served.").add(7);
        r.gauge("test_depth", "Queue depth.").set(-2);
        let h = r.histogram_with(
            "test_latency_seconds",
            &[("measure", "rtr")],
            "Latency.",
            Unit::Nanoseconds,
            1,
        );
        h.record(1_000_000); // 1 ms
        h.record(2_000_000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# HELP test_requests_total Requests served."));
        assert!(text.contains("# TYPE test_requests_total counter"));
        assert!(text.contains("test_requests_total 7"));
        assert!(text.contains("# TYPE test_depth gauge"));
        assert!(text.contains("test_depth -2"));
        assert!(text.contains("# TYPE test_latency_seconds histogram"));
        assert!(text.contains("test_latency_seconds_bucket{measure=\"rtr\",le=\"+Inf\"} 2"));
        assert!(text.contains("test_latency_seconds_count{measure=\"rtr\"} 2"));
        // The sum is 3 ms, scaled to seconds.
        assert!(text.contains("test_latency_seconds_sum{measure=\"rtr\"} 0.003"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_monotone() {
        let r = Registry::new();
        let h = r.histogram_with("t_hist", &[], "h", Unit::Count, 1);
        for v in [1u64, 1, 50, 5_000, 5_000, 5_000] {
            h.record(v);
        }
        let text = r.snapshot().to_prometheus();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("t_hist_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative counts must be monotone: {line}");
            last = v;
            bucket_lines += 1;
        }
        assert!(bucket_lines >= 4, "3 distinct buckets + +Inf");
        assert_eq!(last, 6, "+Inf bucket holds every sample");
    }

    #[test]
    fn json_rendering_summarizes_histograms() {
        let r = Registry::new();
        r.counter("j_total", "c").add(3);
        let h = r.histogram_with("j_hist", &[], "h", Unit::Count, 1);
        h.record(10);
        h.record(30);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"j_total\""));
        assert!(json.contains("\"value\": 3"));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"p50\": 10"));
        assert!(!json.contains("buckets"), "raw buckets stay out of JSON");
    }

    #[test]
    fn lookup_helpers_find_samples() {
        let r = Registry::new();
        r.counter_with("l_total", &[("worker", "0")], "c").add(4);
        r.counter_with("l_total", &[("worker", "1")], "c").add(5);
        r.gauge("l_depth", "g").set(11);
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("l_total", &[("worker", "1")]), Some(5));
        assert_eq!(snap.counter_total("l_total"), 9);
        assert_eq!(snap.gauge_value("l_depth", &[]), Some(11));
        assert_eq!(snap.counter_value("missing", &[]), None);
    }
}
