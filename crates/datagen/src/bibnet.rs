//! Synthetic bibliographic network ("BibNet").
//!
//! Simulates the paper's DBLP+Citeseer extraction (Sect. VI): papers,
//! authors, terms and venues with paper–term / paper–venue / paper–author
//! undirected edges and directed paper–paper citations.
//!
//! The generator plants the structure the paper's evaluation depends on:
//!
//! * **topics** — disjoint clusters of terms plus a shared general
//!   vocabulary;
//! * **flagship venues** — popular, accept papers from *every* topic
//!   (important but unspecific: easily reached from any term, but return
//!   walks leak into other topics);
//! * **niche venues** — accept only their own topic (specific: harder to
//!   reach, but reliably lead back);
//! * Zipfian venue popularity, topic popularity, author productivity and
//!   term frequency, giving realistic heavy-tailed degrees;
//! * topic-biased preferential-attachment citations.
//!
//! Every paper's venue and author set is recorded as machine-readable ground
//! truth for the evaluation tasks (Task 1 — Author, Task 2 — Venue).

use crate::zipf::Zipf;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_graph::{Graph, GraphBuilder, NodeId, NodeTypeId};

/// Size and shape knobs for the BibNet generator.
#[derive(Clone, Debug)]
pub struct BibNetConfig {
    /// Number of latent topics.
    pub topics: usize,
    /// Topic-specific terms per topic.
    pub terms_per_topic: usize,
    /// Shared (general) vocabulary size.
    pub shared_terms: usize,
    /// Number of venues.
    pub venues: usize,
    /// Fraction of venues that are broad flagships (accept all topics).
    pub flagship_fraction: f64,
    /// Number of authors.
    pub authors: usize,
    /// Number of papers (generated chronologically).
    pub papers: usize,
    /// Terms per paper, inclusive range.
    pub terms_per_paper: (usize, usize),
    /// Authors per paper, inclusive range.
    pub authors_per_paper: (usize, usize),
    /// Maximum citations per paper (to earlier papers).
    pub max_citations: usize,
    /// Zipf exponent of venue popularity.
    pub venue_popularity_s: f64,
    /// Zipf exponent of topic popularity.
    pub topic_popularity_s: f64,
    /// Probability a paper's term is drawn from its topic vocabulary
    /// (vs. the shared vocabulary).
    pub topical_term_prob: f64,
}

impl BibNetConfig {
    /// Minimal instance for fast unit tests (hundreds of nodes).
    pub fn tiny() -> Self {
        Self {
            topics: 3,
            terms_per_topic: 8,
            shared_terms: 10,
            venues: 9,
            flagship_fraction: 0.34,
            authors: 40,
            papers: 120,
            terms_per_paper: (2, 4),
            authors_per_paper: (1, 3),
            max_citations: 3,
            venue_popularity_s: 1.0,
            topic_popularity_s: 1.0,
            topical_term_prob: 0.8,
        }
    }

    /// Mid-size instance for CI-speed experiment runs (≈4k nodes): same
    /// structure as [`Self::subgraph_scale`], an order of magnitude smaller.
    pub fn small() -> Self {
        Self {
            topics: 5,
            terms_per_topic: 40,
            shared_terms: 120,
            venues: 15,
            flagship_fraction: 0.27,
            authors: 700,
            papers: 2_500,
            terms_per_paper: (3, 6),
            authors_per_paper: (1, 3),
            max_citations: 5,
            venue_popularity_s: 1.0,
            topic_popularity_s: 0.8,
            topical_term_prob: 0.8,
        }
    }

    /// Effectiveness-subgraph scale: comparable to the paper's 28-venue
    /// BibNet subgraph (≈20k nodes, ≈250k edges).
    pub fn subgraph_scale() -> Self {
        Self {
            topics: 8,
            terms_per_topic: 120,
            shared_terms: 400,
            venues: 28,
            flagship_fraction: 0.25,
            authors: 3_000,
            papers: 15_000,
            terms_per_paper: (3, 8),
            authors_per_paper: (1, 4),
            max_citations: 6,
            venue_popularity_s: 1.0,
            topic_popularity_s: 0.8,
            topical_term_prob: 0.8,
        }
    }

    /// Efficiency-study scale (hundreds of thousands of nodes); the paper's
    /// full graphs are 2M nodes, which this approaches while staying
    /// laptop-friendly.
    pub fn full_scale() -> Self {
        Self {
            topics: 24,
            terms_per_topic: 400,
            shared_terms: 3_000,
            venues: 300,
            flagship_fraction: 0.15,
            authors: 40_000,
            papers: 150_000,
            terms_per_paper: (3, 8),
            authors_per_paper: (1, 4),
            max_citations: 8,
            venue_popularity_s: 1.0,
            topic_popularity_s: 0.8,
            topical_term_prob: 0.8,
        }
    }

    fn validate(&self) {
        assert!(self.topics > 0 && self.venues >= self.topics);
        assert!(self.terms_per_paper.0 >= 1 && self.terms_per_paper.0 <= self.terms_per_paper.1);
        assert!(
            self.authors_per_paper.0 >= 1 && self.authors_per_paper.0 <= self.authors_per_paper.1
        );
        assert!((0.0..=1.0).contains(&self.flagship_fraction));
        assert!((0.0..=1.0).contains(&self.topical_term_prob));
        assert!(self.authors > 0 && self.papers > 0 && self.terms_per_topic > 0);
    }
}

/// A generated bibliographic network with ground truth.
#[derive(Clone, Debug)]
pub struct BibNet {
    /// The graph (terms, venues, authors first; papers chronologically last,
    /// so prefix snapshots model growth).
    pub graph: Graph,
    /// Term nodes (topic terms grouped by topic, then shared terms).
    pub terms: Vec<NodeId>,
    /// Venue nodes.
    pub venues: Vec<NodeId>,
    /// Author nodes.
    pub authors: Vec<NodeId>,
    /// Paper nodes, in chronological order.
    pub papers: Vec<NodeId>,
    /// Ground truth: venue of paper `i` (Task 2).
    pub paper_venue: Vec<NodeId>,
    /// Ground truth: authors of paper `i` (Task 1).
    pub paper_authors: Vec<Vec<NodeId>>,
    /// Latent topic of paper `i`.
    pub paper_topic: Vec<usize>,
    /// Primary topic of each venue.
    pub venue_topic: Vec<usize>,
    /// Whether each venue is a broad flagship.
    pub venue_is_flagship: Vec<bool>,
    /// Topic of each term (`None` = shared vocabulary).
    pub term_topic: Vec<Option<usize>>,
    /// Number of topics.
    pub topic_count: usize,
}

impl BibNet {
    /// Generate a network from `config` with a fixed `seed`.
    pub fn generate(config: &BibNetConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(
            config.topics * config.terms_per_topic
                + config.shared_terms
                + config.venues
                + config.authors
                + config.papers,
            config.papers * 12,
        );
        let term_ty = b.register_type("term");
        let venue_ty = b.register_type("venue");
        let author_ty = b.register_type("author");
        let paper_ty = b.register_type("paper");

        // --- terms -----------------------------------------------------
        let mut terms = Vec::new();
        let mut term_topic = Vec::new();
        for topic in 0..config.topics {
            for i in 0..config.terms_per_topic {
                terms.push(b.add_labeled_node(term_ty, &format!("term:t{topic}:{i}")));
                term_topic.push(Some(topic));
            }
        }
        for i in 0..config.shared_terms {
            terms.push(b.add_labeled_node(term_ty, &format!("term:shared:{i}")));
            term_topic.push(None);
        }

        // --- venues ----------------------------------------------------
        let n_flagship = ((config.venues as f64) * config.flagship_fraction).round() as usize;
        let mut venues = Vec::new();
        let mut venue_topic = Vec::new();
        let mut venue_is_flagship = Vec::new();
        for v in 0..config.venues {
            let topic = v % config.topics;
            let flagship = v < n_flagship;
            let label = if flagship {
                format!("venue:flagship:{v}")
            } else {
                format!("venue:niche:t{topic}:{v}")
            };
            venues.push(b.add_labeled_node(venue_ty, &label));
            venue_topic.push(topic);
            venue_is_flagship.push(flagship);
        }
        // Popularity: flagships take the head of the Zipf ranking.
        let venue_pop = Zipf::new(config.venues, config.venue_popularity_s);
        let venue_weight: Vec<f64> = (0..config.venues).map(|v| venue_pop.pmf(v)).collect();

        // --- authors ---------------------------------------------------
        let mut authors = Vec::new();
        let mut author_topics: Vec<Vec<usize>> = Vec::new();
        for a in 0..config.authors {
            authors.push(b.add_labeled_node(author_ty, &format!("author:{a}")));
            let k = rng.gen_range(1..=2.min(config.topics));
            let mut ts: Vec<usize> = (0..config.topics).collect();
            ts.shuffle(&mut rng);
            ts.truncate(k);
            author_topics.push(ts);
        }
        let author_prod = Zipf::new(config.authors, 1.0);
        // Per-topic author pools with productivity weights, for fast sampling.
        let mut topic_authors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); config.topics];
        for (a, ts) in author_topics.iter().enumerate() {
            for &t in ts {
                topic_authors[t].push((a, author_prod.pmf(a)));
            }
        }
        // Cumulative weights per topic for roulette sampling.
        let topic_author_cdf: Vec<Vec<f64>> = topic_authors
            .iter()
            .map(|pool| {
                let mut acc = 0.0;
                let mut cdf = Vec::with_capacity(pool.len());
                for &(_, w) in pool {
                    acc += w;
                    cdf.push(acc);
                }
                cdf
            })
            .collect();

        // Per-topic venue pools (flagships accept everything).
        let mut topic_venues: Vec<Vec<(usize, f64)>> = vec![Vec::new(); config.topics];
        for v in 0..config.venues {
            if venue_is_flagship[v] {
                for pool in topic_venues.iter_mut() {
                    pool.push((v, venue_weight[v]));
                }
            } else {
                topic_venues[venue_topic[v]].push((v, venue_weight[v]));
            }
        }
        let topic_venue_cdf: Vec<Vec<f64>> = topic_venues
            .iter()
            .map(|pool| {
                let mut acc = 0.0;
                pool.iter()
                    .map(|&(_, w)| {
                        acc += w;
                        acc
                    })
                    .collect()
            })
            .collect();

        let topic_pop = Zipf::new(config.topics, config.topic_popularity_s);
        let topic_term = Zipf::new(config.terms_per_topic, 1.0);
        let shared_term = if config.shared_terms > 0 {
            Some(Zipf::new(config.shared_terms, 1.0))
        } else {
            None
        };

        // --- papers (chronological) -------------------------------------
        let mut papers = Vec::new();
        let mut paper_venue = Vec::new();
        let mut paper_authors = Vec::new();
        let mut paper_topic = Vec::new();
        // Pending edges are added after all paper nodes exist.
        let mut edges: Vec<(usize, NodeId)> = Vec::new(); // (paper idx, other endpoint)
        let mut citations: Vec<(usize, usize)> = Vec::new(); // (citing, cited)

        for i in 0..config.papers {
            let topic = topic_pop.sample(&mut rng);
            paper_topic.push(topic);

            // Venue: roulette over the topic's accepting venues.
            let pool = &topic_venues[topic];
            let cdf = &topic_venue_cdf[topic];
            let vidx = roulette(cdf, &mut rng);
            let venue = venues[pool[vidx].0];
            paper_venue.push(venue);
            edges.push((i, venue));

            // Authors.
            let n_auth = rng.gen_range(config.authors_per_paper.0..=config.authors_per_paper.1);
            let mut chosen: Vec<NodeId> = Vec::with_capacity(n_auth);
            let apool = &topic_authors[topic];
            let acdf = &topic_author_cdf[topic];
            let mut guard = 0;
            while chosen.len() < n_auth && guard < n_auth * 20 {
                guard += 1;
                let author = if !apool.is_empty() && rng.gen_bool(0.9) {
                    authors[apool[roulette(acdf, &mut rng)].0]
                } else {
                    authors[author_prod.sample(&mut rng)]
                };
                if !chosen.contains(&author) {
                    chosen.push(author);
                }
            }
            if chosen.is_empty() {
                chosen.push(authors[rng.gen_range(0..config.authors)]);
            }
            for &a in &chosen {
                edges.push((i, a));
            }
            paper_authors.push(chosen);

            // Terms.
            let n_terms = rng.gen_range(config.terms_per_paper.0..=config.terms_per_paper.1);
            let mut picked_terms: Vec<NodeId> = Vec::with_capacity(n_terms);
            let mut guard = 0;
            while picked_terms.len() < n_terms && guard < n_terms * 20 {
                guard += 1;
                let term = match &shared_term {
                    Some(st) if !rng.gen_bool(config.topical_term_prob) => {
                        terms[config.topics * config.terms_per_topic + st.sample(&mut rng)]
                    }
                    _ => terms[topic * config.terms_per_topic + topic_term.sample(&mut rng)],
                };
                if !picked_terms.contains(&term) {
                    picked_terms.push(term);
                }
            }
            for &t in &picked_terms {
                edges.push((i, t));
            }

            // Citations: topic-biased preferential attachment to earlier papers.
            if i > 0 && config.max_citations > 0 {
                let n_cite = rng.gen_range(0..=config.max_citations.min(i));
                let mut cited: Vec<usize> = Vec::with_capacity(n_cite);
                let mut guard = 0;
                while cited.len() < n_cite && guard < n_cite * 30 {
                    guard += 1;
                    // Preferential by recency-free rank: sample j ∝ 1/(i-j)
                    // approximated by squaring a uniform toward recent papers.
                    let u: f64 = rng.gen();
                    let j = ((u * u) * i as f64) as usize; // biased toward 0 (old, well-cited)
                    let j = i - 1 - j.min(i - 1); // flip: mostly recent, some old
                    let accept = if paper_topic[j] == topic { 0.9 } else { 0.15 };
                    if rng.gen_bool(accept) && !cited.contains(&j) {
                        cited.push(j);
                    }
                }
                for j in cited {
                    citations.push((i, j));
                }
            }

            papers.push(NodeId(0)); // placeholder, filled below
            let _ = &papers;
        }

        // Materialize paper nodes (after entities, chronological order).
        for (i, paper_slot) in papers.iter_mut().enumerate() {
            *paper_slot = b.add_labeled_node(paper_ty, &format!("paper:{i}:t{}", paper_topic[i]));
        }
        for (i, other) in edges {
            b.add_undirected_edge(papers[i], other, 1.0);
        }
        for (citing, cited) in citations {
            b.add_edge(papers[citing], papers[cited], 1.0);
        }

        BibNet {
            graph: b.build(),
            terms,
            venues,
            authors,
            papers,
            paper_venue,
            paper_authors,
            paper_topic,
            venue_topic,
            venue_is_flagship,
            term_topic,
            topic_count: config.topics,
        }
    }

    /// The `term` node type id.
    pub fn term_type(&self) -> NodeTypeId {
        self.graph.types().get("term").expect("registered")
    }

    /// The `venue` node type id.
    pub fn venue_type(&self) -> NodeTypeId {
        self.graph.types().get("venue").expect("registered")
    }

    /// The `author` node type id.
    pub fn author_type(&self) -> NodeTypeId {
        self.graph.types().get("author").expect("registered")
    }

    /// The `paper` node type id.
    pub fn paper_type(&self) -> NodeTypeId {
        self.graph.types().get("paper").expect("registered")
    }

    /// Topic-specific term nodes of one topic.
    pub fn topic_terms(&self, topic: usize) -> Vec<NodeId> {
        self.terms
            .iter()
            .zip(&self.term_topic)
            .filter(|(_, t)| **t == Some(topic))
            .map(|(&n, _)| n)
            .collect()
    }

    /// Cumulative growth snapshots (paper Sect. VI-B2): every snapshot keeps
    /// the full entity sets (terms, venues, authors — these exist before any
    /// given paper) plus the chronologically first `fraction` of papers.
    /// Mirrors how a bibliography actually grows: new papers arrive, the
    /// term vocabulary and venue list are comparatively static.
    pub fn growth_snapshots(&self, fractions: &[f64]) -> Vec<rtr_graph::view::Subgraph> {
        assert!(
            fractions.windows(2).all(|w| w[0] < w[1]),
            "fractions must be strictly increasing"
        );
        fractions
            .iter()
            .map(|&f| {
                assert!(f > 0.0 && f <= 1.0, "fraction out of range");
                let k = ((self.papers.len() as f64) * f).round().max(1.0) as usize;
                let mut keep: Vec<NodeId> = Vec::new();
                keep.extend_from_slice(&self.terms);
                keep.extend_from_slice(&self.venues);
                keep.extend_from_slice(&self.authors);
                keep.extend_from_slice(&self.papers[..k.min(self.papers.len())]);
                rtr_graph::view::Subgraph::induce(&self.graph, &keep)
            })
            .collect()
    }

    /// Position of a paper node in chronological order, if it is a paper.
    pub fn paper_position(&self, v: NodeId) -> Option<usize> {
        if self.papers.is_empty() {
            return None;
        }
        let first = self.papers[0];
        if v >= first && v.index() < first.index() + self.papers.len() {
            Some(v.index() - first.index())
        } else {
            None
        }
    }
}

/// Roulette-wheel selection over a cumulative weight array; returns an index.
fn roulette<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let total = *cdf.last().expect("non-empty pool");
    let u: f64 = rng.gen::<f64>() * total;
    match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("NaN weight")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> BibNet {
        BibNet::generate(&BibNetConfig::tiny(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BibNet::generate(&BibNetConfig::tiny(), 7);
        let b = BibNet::generate(&BibNetConfig::tiny(), 7);
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.paper_venue, b.paper_venue);
    }

    #[test]
    fn different_seeds_differ() {
        let a = BibNet::generate(&BibNetConfig::tiny(), 1);
        let b = BibNet::generate(&BibNetConfig::tiny(), 2);
        assert_ne!(a.paper_venue, b.paper_venue);
    }

    #[test]
    fn node_counts_match_config() {
        let cfg = BibNetConfig::tiny();
        let n = net();
        assert_eq!(
            n.terms.len(),
            cfg.topics * cfg.terms_per_topic + cfg.shared_terms
        );
        assert_eq!(n.venues.len(), cfg.venues);
        assert_eq!(n.authors.len(), cfg.authors);
        assert_eq!(n.papers.len(), cfg.papers);
        assert_eq!(
            n.graph.node_count(),
            n.terms.len() + n.venues.len() + n.authors.len() + n.papers.len()
        );
    }

    #[test]
    fn ground_truth_edges_exist() {
        let n = net();
        for (i, &paper) in n.papers.iter().enumerate() {
            assert!(
                n.graph.has_edge(paper, n.paper_venue[i]),
                "paper {i} missing venue edge"
            );
            for &a in &n.paper_authors[i] {
                assert!(n.graph.has_edge(paper, a), "paper {i} missing author edge");
                assert!(n.graph.has_edge(a, paper), "author edge not bidirectional");
            }
        }
    }

    #[test]
    fn every_paper_has_terms() {
        let n = net();
        let term_ty = n.term_type();
        for &paper in &n.papers {
            let term_edges = n
                .graph
                .out_neighbors(paper)
                .iter()
                .filter(|&&v| n.graph.node_type(v) == term_ty)
                .count();
            assert!(term_edges >= 1, "paper {paper:?} has no terms");
        }
    }

    #[test]
    fn flagship_venues_attract_more_papers() {
        let n = BibNet::generate(&BibNetConfig::tiny(), 3);
        let flag_degree: f64 = {
            let (sum, count) = n
                .venues
                .iter()
                .zip(&n.venue_is_flagship)
                .filter(|(_, f)| **f)
                .fold((0usize, 0usize), |(s, c), (&v, _)| {
                    (s + n.graph.in_degree(v), c + 1)
                });
            sum as f64 / count.max(1) as f64
        };
        let niche_degree: f64 = {
            let (sum, count) = n
                .venues
                .iter()
                .zip(&n.venue_is_flagship)
                .filter(|(_, f)| !**f)
                .fold((0usize, 0usize), |(s, c), (&v, _)| {
                    (s + n.graph.in_degree(v), c + 1)
                });
            sum as f64 / count.max(1) as f64
        };
        assert!(
            flag_degree > niche_degree,
            "flagship avg degree {flag_degree} <= niche {niche_degree}"
        );
    }

    #[test]
    fn niche_venues_are_topically_pure() {
        // Papers in a niche venue must share the venue's topic.
        let n = net();
        for i in 0..n.papers.len() {
            let venue = n.paper_venue[i];
            let vpos = n.venues.iter().position(|&v| v == venue).expect("venue");
            if !n.venue_is_flagship[vpos] {
                assert_eq!(
                    n.paper_topic[i], n.venue_topic[vpos],
                    "off-topic paper in niche venue"
                );
            }
        }
    }

    #[test]
    fn citations_point_backward_in_time() {
        let n = net();
        let paper_ty = n.paper_type();
        for (i, &paper) in n.papers.iter().enumerate() {
            for &dst in n.graph.out_neighbors(paper) {
                if n.graph.node_type(dst) == paper_ty {
                    let j = n.paper_position(dst).expect("paper");
                    // Citation edges are directed to earlier papers, but the
                    // undirected entity edges were added both ways; only
                    // check pure-citation pairs (no reverse edge).
                    if !n.graph.has_edge(dst, paper) {
                        assert!(j < i, "paper {i} cites future paper {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn paper_position_roundtrip() {
        let n = net();
        for (i, &p) in n.papers.iter().enumerate() {
            assert_eq!(n.paper_position(p), Some(i));
        }
        assert_eq!(n.paper_position(n.terms[0]), None);
    }

    #[test]
    fn topic_terms_partition() {
        let n = net();
        let cfg = BibNetConfig::tiny();
        for t in 0..cfg.topics {
            assert_eq!(n.topic_terms(t).len(), cfg.terms_per_topic);
        }
    }

    #[test]
    fn subgraph_scale_has_realistic_size() {
        let n = BibNet::generate(&BibNetConfig::subgraph_scale(), 1);
        assert!(n.graph.node_count() > 15_000, "{}", n.graph.node_count());
        assert!(n.graph.edge_count() > 100_000, "{}", n.graph.edge_count());
    }
}
